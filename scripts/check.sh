#!/usr/bin/env bash
# Full local gate: release build, all tests, and docs.
# Doc warnings are promoted to errors so the public API stays documented.
# The build is offline by construction (crates.io is unreachable; all
# third-party deps are vendored shims under vendor/) — see README "Building".
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -p sl-engine --test chaos
# Crash-recovery gate: the durable codec/log/warehouse property suite plus
# the engine-level kill-and-reopen tests must hold on every commit.
cargo test -p sl-durable -q
cargo test -p sl-engine --test durable_recovery
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# The durable tests create scratch dirs under $TMPDIR; a leftover one means
# a TempDir leaked (Drop did not run or failed to clean up).
stray=$(find "${TMPDIR:-/tmp}" -maxdepth 1 -name 'sl-durable-*' -print -quit)
if [ -n "$stray" ]; then
    echo "check.sh: stray durable scratch dir left behind: $stray" >&2
    exit 1
fi

# Static analysis gate: every example DSN document must lint clean
# (infos allowed, warnings and errors are not).
cargo run --release -q --bin sl-lint -- --deny-warnings examples/dsn/*.dsn

echo "check.sh: all green"
