#!/usr/bin/env bash
# Local CI gate, tiered to match .github/workflows/ci.yml:
#
#   scripts/check.sh --fast   # the PR fast loop: build, tests, fmt,
#                             # clippy -D warnings, doc -D warnings
#   scripts/check.sh          # everything: fast tier + the chaos/durable/
#                             # parallel/overload/cq gates, the lint and
#                             # example gates, the bench smokes, and the
#                             # bench-compare regression diff
#
# The build is offline by construction (crates.io is unreachable; all
# third-party deps are vendored shims under vendor/) — see README "Building".
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
    esac
done

# ---------------------------------------------------------------- fast tier
cargo build --release
cargo test -q
# Doctest gate: the documented crates' crate-root examples must run.
cargo test --doc -q -p sl-stt -p sl-ops -p sl-engine -p sl-obs -p sl-durable
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

if [ "$FAST" = 1 ]; then
    echo "check.sh: fast tier green"
    exit 0
fi

# ---------------------------------------------------------------- full tier
cargo test -p sl-engine --test chaos
# Crash-recovery gate: the durable codec/log/warehouse property suite
# (including the compaction-equivalence and torn-tail suites) plus the
# engine-level kill-and-reopen tests must hold on every commit.
cargo test -p sl-durable -q
cargo test -p sl-engine --test durable_recovery
# Parallel-execution gate: sequential-vs-parallel output equivalence
# (fault-free, under chaos, every shard key, mid-run switch).
cargo test -p sl-engine --test parallel_equivalence

# The durable tests create scratch dirs under $TMPDIR; a leftover one means
# a TempDir leaked (Drop did not run or failed to clean up).
stray=$(find "${TMPDIR:-/tmp}" -maxdepth 1 -name 'sl-durable-*' -print -quit)
if [ -n "$stray" ]; then
    echo "check.sh: stray durable scratch dir left behind: $stray" >&2
    exit 1
fi

# Static analysis gate: every example DSN document must lint clean
# (infos allowed, warnings and errors are not) — first standalone, then
# as a full deployment (SL050-SL092) against the CI engine config and
# chaos schedule, and once through the machine-readable JSON output.
cargo run --release -q --bin sl-lint -- --deny-warnings examples/dsn/*.dsn
cargo run --release -q --bin sl-lint -- --deny-warnings --nict \
    --config examples/deploy/ci.conf --fault-plan examples/deploy/ci.plan \
    examples/dsn/*.dsn
cargo run --release -q --bin sl-lint -- --deny-warnings --format json \
    --config examples/deploy/ci.conf --fault-plan examples/deploy/ci.plan \
    examples/dsn/*.dsn >/dev/null

# Overload-control gate: bounded queues, shedding accounting, credit
# backpressure, breakers, and backlog-driven re-placement.
cargo test -p sl-engine --test overload

# Bench smokes. Each asserts its experiment's headline claim at reduced
# scale and, with BENCH_JSON_DIR set, writes its JSON rows to a scratch
# dir so bench-compare can diff them against the committed baselines.
BENCH_SMOKE_DIR="target/bench-smoke"
rm -rf "$BENCH_SMOKE_DIR"

# Parallel-scaling smoke (E9): asserts identical outputs across worker
# counts and that `with_parallelism(1)` is never slower than the
# sequential loop beyond noise.
BENCH_JSON_DIR="$BENCH_SMOKE_DIR" \
    cargo run --release -q -p sl-bench --bin exp_e9_parallel -- --test

# Overload saturation smoke (E10): every bounded policy holds its queue
# bound under a 3x burst; Block sheds nothing; shed shortfalls are
# DLQ-accounted to the tuple.
BENCH_JSON_DIR="$BENCH_SMOKE_DIR" \
    cargo run --release -q -p sl-bench --bin exp_e10_overload -- --test

# Continuous-query gate: the sl-cq unit suite, then the engine-level
# equivalence suite (views byte-identical to rescans under arbitrary
# interleavings, eviction, chaos, compaction, and durable restart; unused
# hub byte-invisible), the live-dashboard example, and the E11 smoke
# (incremental maintenance >=10x over rescans at 100 subscribers).
cargo test -p sl-cq -q
cargo test -p sl-engine --test cq_equivalence
cargo run --release -q --example continuous_dashboard >/dev/null
BENCH_JSON_DIR="$BENCH_SMOKE_DIR" \
    cargo run --release -q -p sl-bench --bin exp_e11_cq -- --test

# Storage-maintenance smoke (E12): cold queries over a compacted,
# zone-indexed log answer exactly like the fragmented log and are
# measurably faster at 100+ segments.
BENCH_JSON_DIR="$BENCH_SMOKE_DIR" \
    cargo run --release -q -p sl-bench --bin exp_e12_compaction -- --test

# Bench regression diff: fresh smoke ratios vs. the committed BENCH_*.json
# baselines. Only scale-invariant metrics are compared; tolerance is loose
# (0.5) and overridable via BENCH_COMPARE_TOLERANCE. To accept a genuine
# perf change, regenerate the baseline with the full experiment binary.
cargo run --release -q -p sl-bench --bin bench-compare -- . "$BENCH_SMOKE_DIR"

echo "check.sh: all green"
