#!/usr/bin/env bash
# Full local gate: release build, all tests, and docs.
# Doc warnings are promoted to errors so the public API stays documented.
# The build is offline by construction (crates.io is unreachable; all
# third-party deps are vendored shims under vendor/) — see README "Building".
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -p sl-engine --test chaos
# Crash-recovery gate: the durable codec/log/warehouse property suite plus
# the engine-level kill-and-reopen tests must hold on every commit.
cargo test -p sl-durable -q
cargo test -p sl-engine --test durable_recovery
# Parallel-execution gate: sequential-vs-parallel output equivalence
# (fault-free, under chaos, every shard key, mid-run switch).
cargo test -p sl-engine --test parallel_equivalence
# Doctest gate: the documented crates' crate-root examples must run.
cargo test --doc -q -p sl-stt -p sl-ops -p sl-engine -p sl-obs -p sl-durable
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# The durable tests create scratch dirs under $TMPDIR; a leftover one means
# a TempDir leaked (Drop did not run or failed to clean up).
stray=$(find "${TMPDIR:-/tmp}" -maxdepth 1 -name 'sl-durable-*' -print -quit)
if [ -n "$stray" ]; then
    echo "check.sh: stray durable scratch dir left behind: $stray" >&2
    exit 1
fi

# Static analysis gate: every example DSN document must lint clean
# (infos allowed, warnings and errors are not) — first standalone, then
# as a full deployment (SL050-SL083) against the CI engine config and
# chaos schedule, and once through the machine-readable JSON output.
cargo run --release -q --bin sl-lint -- --deny-warnings examples/dsn/*.dsn
cargo run --release -q --bin sl-lint -- --deny-warnings --nict \
    --config examples/deploy/ci.conf --fault-plan examples/deploy/ci.plan \
    examples/dsn/*.dsn
cargo run --release -q --bin sl-lint -- --deny-warnings --format json \
    --config examples/deploy/ci.conf --fault-plan examples/deploy/ci.plan \
    examples/dsn/*.dsn >/dev/null

# Overload-control gate: bounded queues, shedding accounting, credit
# backpressure, breakers, and backlog-driven re-placement.
cargo test -p sl-engine --test overload

# Parallel-scaling smoke (E9): asserts identical outputs across worker
# counts and that `with_parallelism(1)` is never slower than the
# sequential loop beyond noise.
cargo run --release -q -p sl-bench --bin exp_e9_parallel -- --test

# Overload saturation smoke (E10): every bounded policy holds its queue
# bound under a 3x burst; Block sheds nothing; shed shortfalls are
# DLQ-accounted to the tuple.
cargo run --release -q -p sl-bench --bin exp_e10_overload -- --test

# Continuous-query gate: the sl-cq unit suite, then the engine-level
# equivalence suite (views byte-identical to rescans under arbitrary
# interleavings, eviction, chaos, and durable restart; unused hub
# byte-invisible), the live-dashboard example, and the E11 smoke
# (incremental maintenance >=10x over rescans at 100 subscribers).
cargo test -p sl-cq -q
cargo test -p sl-engine --test cq_equivalence
cargo run --release -q --example continuous_dashboard >/dev/null
cargo run --release -q -p sl-bench --bin exp_e11_cq -- --test

echo "check.sh: all green"
