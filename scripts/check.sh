#!/usr/bin/env bash
# Full local gate: release build, all tests, and docs.
# Doc warnings are promoted to errors so the public API stays documented.
# The build is offline by construction (crates.io is unreachable; all
# third-party deps are vendored shims under vendor/) — see README "Building".
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -p sl-engine --test chaos
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Static analysis gate: every example DSN document must lint clean
# (infos allowed, warnings and errors are not).
cargo run --release -q --bin sl-lint -- --deny-warnings examples/dsn/*.dsn

echo "check.sh: all green"
