//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the benchmark suite uses
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `Throughput`,
//! `BatchSize`, `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! Instead of criterion's statistical machinery it runs each benchmark for a
//! small fixed number of timed iterations and prints the median per-iteration
//! wall time — enough to compare implementations in this offline
//! environment, not a substitute for real statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from std.
pub use std::hint::black_box;

/// Target timed iterations per benchmark (kept small: these run in CI).
const TARGET_ITERS: u64 = 30;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: TARGET_ITERS,
            throughput: None,
        }
    }

    /// Criterion's post-main report hook — a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(2);
        self
    }

    /// Declare the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measurement-time hint — accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F, I: Display>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f, self.throughput.clone());
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<F, I: ?Sized, D: Display>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            &mut |b: &mut Bencher| f(b, input),
            self.throughput.clone(),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; collects timed iterations.
pub struct Bencher {
    iters: u64,
    /// Median-ish per-iteration time, filled by `iter*`.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed() / self.iters as u32;
    }

    /// Time `f` with a fresh `setup()` input per iteration; setup time is
    /// excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(f(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            total += start.elapsed();
        }
        self.elapsed = total / self.iters as u32;
    }
}

/// How `iter_batched` amortises setup (irrelevant here; accepted for
/// compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier from a name and a parameter value.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F, throughput: Option<Throughput>) {
    let mut bencher = Bencher {
        iters: TARGET_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<60} {per_iter:>12.2?}/iter{rate}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5).throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::new("sum", 4), |b| {
            b.iter_batched(
                || vec![1u64; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
