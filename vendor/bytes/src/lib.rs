//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable (`Arc`-backed) byte
//! buffer covering the subset of the real API StreamLoader uses — `From`
//! conversions, `Deref` to `[u8]`, length and equality.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes {
            data: s.as_bytes().into(),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes { data: s.into() }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_deref() {
        let a = Bytes::from("hello".to_string());
        let b = Bytes::from(vec![104, 101, 108, 108, 111]);
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        let c = a.clone();
        assert_eq!(std::str::from_utf8(&c).unwrap(), "hello");
    }
}
