//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the small slice of the `rand` 0.8 API that StreamLoader
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads. It is **not**
//! cryptographically secure, exactly like the real `StdRng` contract does
//! not promise reproducibility across versions; within this repo every
//! seeded run is reproducible.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from the "standard" distribution
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges a uniform sample can be drawn from (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer draw (Lemire-style multiply-shift
/// with a widening multiply; tiny bias is irrelevant for simulation use).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::draw(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Uniform draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&x));
            let y: u64 = rng.gen_range(1..=20);
            assert!((1..=20).contains(&y));
            let f: f64 = rng.gen_range(10.0..35.0);
            assert!((10.0..35.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_values_cover_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..32).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(
            v, original,
            "32 elements virtually never shuffle to identity"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
