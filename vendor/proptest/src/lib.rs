//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the subset of the proptest 1.x API that StreamLoader's
//! property tests use: the [`Strategy`] trait with `prop_map`,
//! `prop_recursive` and `boxed`, range / tuple / `Just` / regex-lite string
//! strategies, `proptest::collection::vec`, `proptest::option::of`,
//! `any::<T>()`, the [`proptest!`] macro (including
//! `#![proptest_config(..)]`), and the `prop_assert*` / `prop_oneof!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated inputs'
//!   `Debug` rendering instead of a minimised counterexample;
//! * **deterministic seeding** — each test derives its RNG seed from the
//!   test function's name, so failures reproduce exactly across runs;
//! * string strategies accept only the character-class pattern shape
//!   actually used in this repo (`[class]` atoms with optional `{m}` /
//!   `{m,n}` repetition, plus literal characters).

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG (xoshiro256++, same core as the vendored `rand`)
// ---------------------------------------------------------------------------

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic generator derived from an arbitrary seed string
    /// (FNV-1a hash of the test name).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Generator from a numeric seed (SplitMix64 state expansion).
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }

    /// Generate recursive structures: up to `depth` levels of the composite
    /// built by `recurse` over the base strategy. (`desired_size` and
    /// `expected_branch_size` are accepted for API compatibility and
    /// ignored — depth limiting alone bounds the output.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let composite = recurse(current).boxed();
            current = OneOf {
                arms: vec![leaf, composite],
            }
            .boxed();
        }
        current
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----- numeric ranges ------------------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategy!(f32, f64);

// ----- tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ----- regex-lite string strategies ----------------------------------------

/// One parsed pattern atom: a set of candidate characters plus a repetition
/// count range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == ']')
                .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in `{pattern}`");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern repeat min"),
                    hi.trim().parse().expect("pattern repeat max"),
                ),
                None => {
                    let n = body.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty() && min <= max, "bad pattern `{pattern}`");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

/// `&'static str` patterns are strategies producing matching strings.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ----- any::<T>() ----------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, spread over a wide magnitude range; avoids NaN/inf which
        // the real proptest also generates only via edge cases.
        let mag = rng.unit_f64() * 600.0 - 300.0; // exponent in [-300, 300)
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * rng.unit_f64() * 10f64.powf(mag)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ----- collections ---------------------------------------------------------

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing vectors of `inner`-generated elements.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        inner: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let n = self.size.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.inner.sample(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `inner`.
    pub fn vec<S: Strategy>(inner: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            inner,
            size: size.into(),
        }
    }
}

/// `proptest::option` — `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some(inner)` three times out of four.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `Some` with probability 3/4, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among heterogeneous strategy expressions of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(#[$meta:meta])? $arm:expr),+ $(,)?) => {
        $crate::OneOf { arms: vec![$($crate::Strategy::boxed($arm)),+] }
    };
}

/// Assert inside a property: panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assumption: skip the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` runs
/// `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                $(let $arg = $crate::Strategy::boxed($strat);)*
                #[allow(clippy::never_loop, unused_labels)]
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// The glob import used by every test file.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::TestRng::deterministic("t1");
        let s = (0i64..10, 5.0f64..6.0, Just("x"));
        for _ in 0..100 {
            let (i, f, x) = s.sample(&mut rng);
            assert!((0..10).contains(&i));
            assert!((5.0..6.0).contains(&f));
            assert_eq!(x, "x");
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = crate::TestRng::deterministic("t2");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,10}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = "[a-z*?]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&t.len()));
        }
    }

    #[test]
    fn oneof_vec_option() {
        let mut rng = crate::TestRng::deterministic("t3");
        let s = crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5);
        let mut saw_one = false;
        let mut saw_two = false;
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            saw_one |= v.contains(&1);
            saw_two |= v.contains(&2);
        }
        assert!(saw_one && saw_two);
        let o = crate::option::of(0u32..5);
        let mut saw_none = false;
        for _ in 0..100 {
            saw_none |= o.sample(&mut rng).is_none();
        }
        assert!(saw_none);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let leaf = (0i64..100).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::TestRng::deterministic("t4");
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&tree.sample(&mut rng)));
        }
        assert!(max_depth > 1, "recursion never taken");
        assert!(max_depth <= 5, "depth bound violated: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0i64..100, flag in any::<bool>(), s in "[a-c]{1,3}") {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(flag, flag);
            prop_assert!(!s.is_empty());
        }
    }
}
