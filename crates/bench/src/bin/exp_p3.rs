//! E7 — Demo P3 reproduction: plug-and-play churn against a running
//! dataflow, with the system's reactions on a timeline.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_p3
//! ```

use sl_bench::{passthrough_dataflow, print_table};
use sl_engine::{Engine, EngineConfig};
use sl_netsim::Topology;
use sl_sensors::physical::TemperatureSensor;
use sl_stt::{Duration, GeoPoint, SensorId, Timestamp};

fn sensor(id: u64, node_idx: usize, topo: &Topology, period_ms: u64) -> Box<TemperatureSensor> {
    let edges = topo.edge_nodes();
    Box::new(TemperatureSensor::new(
        SensorId(id),
        &format!("churn-{id}"),
        GeoPoint::new_unchecked(34.7, 135.5),
        edges[node_idx % edges.len()],
        Duration::from_millis(period_ms),
        false,
        false,
        id,
    ))
}

fn main() {
    let topo = Topology::nict_testbed();
    let mut engine = Engine::new(
        topo.clone(),
        EngineConfig::default(),
        Timestamp::from_civil(2016, 7, 1, 8, 0, 0),
    );
    engine.deploy(passthrough_dataflow("p3", 3)).unwrap();

    // Churn schedule: every 10 s one sensor joins; every 25 s the oldest
    // leaves. Observe binding counts and delivered tuples.
    let mut live: Vec<SensorId> = Vec::new();
    let mut next_id = 0u64;
    let mut rows = Vec::new();
    for step in 0..24 {
        let t = step * 10;
        if t % 10 == 0 {
            let id = engine
                .add_sensor(sensor(next_id, next_id as usize, &topo, 1000))
                .unwrap();
            live.push(id);
            next_id += 1;
        }
        if t % 25 == 0 && live.len() > 1 {
            let id = live.remove(0);
            engine.remove_sensor(id).unwrap();
        }
        engine.run_for(Duration::from_secs(10));
        let bound = engine.bound_sensors("p3", "src").len();
        let c = engine.monitor().op("p3", "f0");
        rows.push(vec![
            format!("{}", t + 10),
            live.len().to_string(),
            bound.to_string(),
            c.map_or(0, |c| c.tuples_in()).to_string(),
        ]);
        assert_eq!(bound, live.len(), "binding must track membership");
    }
    print_table(
        "E7 / P3 — plug-and-play churn timeline",
        &[
            "t [s]",
            "live sensors",
            "bound to src",
            "tuples into f0 (cum.)",
        ],
        &rows,
    );

    println!("\nmembership log (first 10 entries):");
    for line in engine.monitor().membership.iter().take(10) {
        println!("  {line}");
    }
    println!(
        "\nnetwork after churn: {} messages, {} bytes",
        engine.net_stats().total_msgs(),
        engine.net_stats().total_bytes()
    );

    // --- network failure injection ("performances of the network") -------
    let before = engine.monitor().op("p3", "f0").map_or(0, |c| c.tuples_in());
    // Fail one of the core-ring links: traffic detours around the ring.
    engine.set_link_up(sl_netsim::LinkId(0), false).unwrap();
    engine.run_for(Duration::from_secs(60));
    let during = engine.monitor().op("p3", "f0").map_or(0, |c| c.tuples_in());
    engine.set_link_up(sl_netsim::LinkId(0), true).unwrap();
    engine.run_for(Duration::from_secs(60));
    let after = engine.monitor().op("p3", "f0").map_or(0, |c| c.tuples_in());
    println!("\nlink failure drill on the core ring (link#0):");
    println!(
        "  tuples before: {before}; +60s with the link down: {during}; +60s restored: {after}"
    );
    println!("  (the ring provides a detour, so the flow survives the failure)");
}
