//! E12 — cold-tier compaction: indexed cold queries vs. a fragmented log.
//!
//! The storage-maintenance question behind `sl_durable::compact`: after
//! weeks of retention-driven eviction the cold tier is hundreds of small
//! generation-0 segments, and every cold query opens and decodes all of
//! them. Compaction merges the fragments into one generation-1 segment
//! with a per-block zone index (time bounds + a bloom-style theme filter
//! persisted in the `.szi` sidecar), so the same queries prune whole
//! blocks, seek instead of scanning, and fit the decoded-block cache.
//!
//! Both configurations ingest the identical theme-clustered stream and
//! evict everything cold; one is then force-compacted. Every query's
//! answer must be *exactly* equal across the two logs — compaction
//! preserves record order, so this is byte-identical, not just
//! set-identical. Results land in `BENCH_e12_compaction.json`.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_e12_compaction           # full run
//! cargo run --release -p sl-bench --bin exp_e12_compaction -- --test # CI smoke
//! ```
//!
//! The full run asserts the headline claim: at 100+ segments, cold
//! queries over the compacted log are at least 2x faster. The smoke mode
//! runs one scale and asserts a conservative 1.3x.

use sl_durable::{CompactionPolicy, DurableConfig, DurableWarehouse, FsyncPolicy, TempDir};
use sl_stt::{
    Duration, Event, GeoPoint, SpatialGranularity, TemporalGranularity, Theme, TimeInterval,
    Timestamp, Value,
};
use sl_warehouse::EventQuery;
use std::fmt::Write as _;
use std::time::Instant;

const THEMES: [&str; 5] = [
    "weather/temperature",
    "weather/rain",
    "traffic/flow",
    "social/tweet",
    "air/pm25",
];

/// Events per theme-clustered run. Clustering is what gives the per-block
/// bloom filters their pruning power: a block holds ~64 frames, so a run
/// of 200 same-theme events yields blocks the other themes' queries skip.
const RUN_LEN: usize = 200;

/// Small segments force the fragmentation under test: ~2 KiB per segment
/// is a few dozen events, so thousands of events become 100+ segments.
const SEGMENT_BYTES: u64 = 2048;

fn base_time() -> Timestamp {
    Timestamp::from_civil(2016, 7, 1, 0, 0, 0)
}

/// Deterministic theme-clustered stream: runs of `RUN_LEN` events per
/// theme, timestamps advancing one minute per event.
fn gen_events(n: usize) -> Vec<Event> {
    (0..n)
        .map(|i| {
            let theme = Theme::new(THEMES[(i / RUN_LEN) % THEMES.len()]).expect("static theme");
            let t = base_time() + Duration::from_mins(i as u64);
            let lat = 34.60 + 0.01 * ((i % 17) as f64);
            let lon = 135.40 + 0.01 * ((i % 13) as f64);
            Event::new(
                Value::Float(20.0 + ((i * 7) % 100) as f64 / 10.0),
                TemporalGranularity::Minute,
                TemporalGranularity::Minute.granule_of(t),
                SpatialGranularity::grid(8).granule_of(&GeoPoint::new_unchecked(lat, lon)),
                theme,
            )
        })
        .collect()
}

/// The cold-query mix: one per theme subtree, one time window over the
/// middle tenth of the stream, and one theme+time combination.
fn queries(n: usize) -> Vec<EventQuery> {
    let mut qs: Vec<EventQuery> = THEMES
        .iter()
        .map(|t| EventQuery::all().with_theme(Theme::new(t).expect("static theme")))
        .collect();
    let mid = base_time() + Duration::from_mins((n / 2) as u64);
    let window = TimeInterval::new(mid, mid + Duration::from_mins((n / 10).max(1) as u64));
    qs.push(EventQuery::all().in_time(window));
    qs.push(
        EventQuery::all()
            .with_theme(Theme::new("traffic").expect("static theme"))
            .in_time(window),
    );
    qs
}

/// Ingest the stream run by run, evicting each run to the cold tier as
/// soon as it lands — the steady state of a retention-driven deployment.
fn build(dir: &std::path::Path, events: &[Event]) -> DurableWarehouse {
    let config = DurableConfig::at(dir)
        .with_fsync(FsyncPolicy::OnSeal)
        .with_segment_max_bytes(SEGMENT_BYTES)
        .with_compaction(CompactionPolicy::enabled());
    let mut w = DurableWarehouse::open(config).expect("open durable warehouse");
    for chunk in events.chunks(RUN_LEN) {
        for ev in chunk {
            w.insert(ev.clone()).expect("insert");
        }
        // Evict everything ingested so far: end of the newest event + 1.
        let newest = chunk
            .iter()
            .map(|e| e.time_interval().end)
            .max()
            .expect("non-empty chunk");
        w.evict_before(newest + Duration::from_mins(1))
            .expect("evict");
    }
    w.sync().expect("sync");
    w
}

/// Total wall-clock of `reps` passes over the query mix.
fn time_queries(w: &mut DurableWarehouse, qs: &[EventQuery], reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        for q in qs {
            let _ = w.query(q).expect("query");
        }
    }
    t0.elapsed().as_secs_f64()
}

struct Sample {
    segments: usize,
    uncompacted_s: f64,
    compacted_s: f64,
}

fn run_once(n_events: usize, reps: usize) -> Sample {
    let events = gen_events(n_events);
    let qs = queries(n_events);

    let dir_a = TempDir::new("e12-uncompacted").expect("tempdir");
    let dir_b = TempDir::new("e12-compacted").expect("tempdir");
    let mut plain = build(dir_a.path(), &events);
    let mut compacted = build(dir_b.path(), &events);
    let segments = plain.segment_count();

    let stats = compacted
        .compact_now(base_time() + Duration::from_hours(24 * 365))
        .expect("compact")
        .expect("something to merge");
    // No cold_retention on the policy: maintenance must drop no events.
    assert_eq!(stats.events_dropped, 0, "no retention, no event drops");

    // The contract the whole tentpole rests on: every query's answer over
    // the compacted log is exactly the uncompacted answer.
    for q in &qs {
        let a = plain.query(q).expect("query uncompacted");
        let b = compacted.query(q).expect("query compacted");
        assert_eq!(a, b, "compaction changed a query answer");
    }

    let uncompacted_s = time_queries(&mut plain, &qs, reps);
    let compacted_s = time_queries(&mut compacted, &qs, reps);
    Sample {
        segments,
        uncompacted_s,
        compacted_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // The full sweep includes the smoke scale, so `bench-compare` can pair
    // a fresh smoke row against the committed baseline by segment count.
    let (scales, reps): (&[usize], usize) = if smoke {
        (&[4_000], 5)
    } else {
        (&[1_000, 2_000, 4_000, 8_000], 25)
    };

    println!("E12 cold-tier compaction — scales {scales:?} events, {reps} query passes");

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut worst_at_scale = f64::INFINITY;
    for &n in scales {
        let s = run_once(n, reps);
        let speedup = s.uncompacted_s / s.compacted_s.max(1e-9);
        if s.segments >= 100 {
            worst_at_scale = worst_at_scale.min(speedup);
        }
        rows.push(vec![
            n.to_string(),
            s.segments.to_string(),
            format!("{:.4}", s.uncompacted_s),
            format!("{:.4}", s.compacted_s),
            format!("{speedup:.1}x"),
        ]);
        let mut j = String::new();
        let _ = write!(
            j,
            "    {{\"segments\": {}, \"uncompacted_s\": {:.6}, \
             \"compacted_s\": {:.6}, \"speedup\": {speedup:.2}}}",
            s.segments, s.uncompacted_s, s.compacted_s
        );
        json_rows.push(j);
    }

    sl_bench::print_table(
        "E12 — cold queries: fragmented gen-0 log vs. compacted + zone-indexed \
         (answers asserted exactly equal)",
        &[
            "events",
            "segments",
            "uncompacted [s]",
            "compacted [s]",
            "speedup",
        ],
        &rows,
    );

    let floor = if smoke { 1.3 } else { 2.0 };
    assert!(
        worst_at_scale >= floor,
        "compacted cold queries must be >={floor}x faster at 100+ segments \
         (got {worst_at_scale:.2}x)"
    );

    if smoke {
        println!("\nE12 smoke: answers identical, {worst_at_scale:.1}x speedup at 100+ segments");
    }

    let json = format!(
        "{{\n  \"experiment\": \"E12\",\n  \"run_len\": {RUN_LEN},\n  \
         \"segment_bytes\": {SEGMENT_BYTES},\n  \"query_passes\": {reps},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    sl_bench::write_bench_json("BENCH_e12_compaction.json", &json, smoke);
}
