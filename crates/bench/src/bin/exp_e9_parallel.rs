//! E9 — sharded parallel execution: scaling the engine event loop across
//! worker threads while preserving sequential semantics.
//!
//! Runs the same sensor-heavy, shardable-stage-heavy workload under the
//! classic sequential loop and under the work-stealing shard pool at
//! 2/4/8 workers, asserts every configuration produces byte-identical
//! outputs, and reports wall-clock throughput. Results land in
//! `BENCH_e9_parallel.json` (full mode only).
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_e9_parallel           # full run
//! cargo run --release -p sl-bench --bin exp_e9_parallel -- --test # CI smoke
//! ```
//!
//! The `--test` smoke mode (wired into `scripts/check.sh`) shrinks the
//! workload, takes the min of 3 runs per configuration, and asserts the
//! no-regression guard: `with_parallelism(1)` must not be slower than the
//! sequential baseline beyond a generous noise margin (`parallelism <= 1`
//! short-circuits to the identical sequential code path, so any real gap
//! is a bug, not a trade-off).

use sl_dataflow::DataflowBuilder;
use sl_dsn::SinkKind;
use sl_engine::{Engine, EngineConfig, ShardKey};
use sl_netsim::{NodeSpec, Topology};
use sl_pubsub::SubscriptionFilter;
use sl_sensors::physical::TemperatureSensor;
use sl_stt::{AttrType, Duration, Field, GeoPoint, Schema, SchemaRef, SensorId, Theme, Timestamp};
use std::fmt::Write as _;
use std::time::Instant;

/// Everything observable about a finished run; must be identical across
/// every worker count (the sl-par determinism contract).
#[derive(PartialEq)]
struct Digest {
    warehouse: Vec<sl_stt::Event>,
    edw: u64,
    out: u64,
    dlq: u64,
}

struct Sample {
    wall_s: f64,
    tuples: u64,
    batches: u64,
    steals: u64,
}

fn temp_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("temperature", AttrType::Float),
        Field::new("station", AttrType::Str),
    ])
    .unwrap()
    .into_ref()
}

/// A pipeline that is mostly shardable work (transform chain, virtual
/// property, filter) with one blocking aggregation at the tail — the shape
/// sl-par is built for.
fn flow() -> sl_dataflow::Dataflow {
    DataflowBuilder::new("e9")
        .source(
            "temp",
            SubscriptionFilter::any().with_theme(Theme::new("weather/temperature").unwrap()),
            temp_schema(),
        )
        .transform("to_f", "temp", &[("temperature", "temperature * 1.8 + 32")])
        .transform(
            "norm",
            "to_f",
            &[("temperature", "(temperature - 32) / 1.8 * 1.8 + 32")],
        )
        .virtual_property("flag", "norm", "hot", "temperature > 80")
        .filter("keep", "flag", "temperature > -100")
        .aggregate(
            "avg",
            "keep",
            Duration::from_secs(20),
            &[],
            sl_ops::AggFunc::Avg,
            Some("temperature"),
        )
        .sink("edw", SinkKind::Warehouse, &["avg"])
        .sink("out", SinkKind::Console, &["keep"])
        .build()
        .unwrap()
}

/// Many sensors sharing one emission period: their tuples collide in
/// virtual time, so the epoch-window drain forms real multi-tuple batches.
fn build(sensors: u64, workers: usize) -> Engine {
    let mut t = Topology::new();
    let edge = t.add_node(NodeSpec::edge("edge", 50.0));
    let hub = t.add_node(NodeSpec::edge("hub", 1_000_000.0));
    t.add_link(edge, hub, Duration::from_millis(1), 10_000_000)
        .unwrap();
    let cfg = EngineConfig {
        migration_enabled: false,
        seed: 11,
        parallelism: workers,
        shard_key: ShardKey::Space,
        ..Default::default()
    };
    let mut e = Engine::new(t, cfg, Timestamp::from_civil(2016, 7, 1, 12, 0, 0));
    for i in 0..sensors {
        e.add_sensor(Box::new(TemperatureSensor::new(
            SensorId(i),
            &format!("t{i}"),
            GeoPoint::new_unchecked(34.0 + i as f64 * 0.11, 135.0 + i as f64 * 0.07),
            edge,
            Duration::from_secs(1),
            false,
            false,
            11 + i,
        )))
        .unwrap();
    }
    e.deploy(flow()).unwrap();
    e
}

fn run_once(sensors: u64, workers: usize, virtual_secs: u64) -> (Digest, Sample) {
    let mut e = build(sensors, workers);
    let t0 = Instant::now();
    e.run_for(Duration::from_secs(virtual_secs));
    let wall_s = t0.elapsed().as_secs_f64();
    let snap = e.metrics_snapshot();
    let digest = Digest {
        warehouse: e.warehouse().iter().cloned().collect(),
        edw: e.monitor().sink_count("e9", "edw"),
        out: e.monitor().sink_count("e9", "out"),
        dlq: e.dlq().by_reason().map(|(_, n)| n).sum(),
    };
    let sample = Sample {
        wall_s,
        tuples: digest.out,
        batches: snap
            .counters
            .get("engine/shard/batches")
            .copied()
            .unwrap_or(0),
        steals: snap
            .counters
            .get("engine/shard/steals")
            .copied()
            .unwrap_or(0),
    };
    (digest, sample)
}

/// Min-of-`reps` wall time for one configuration; digests must agree
/// across repetitions (determinism within a config).
fn measure(sensors: u64, workers: usize, virtual_secs: u64, reps: usize) -> (Digest, Sample) {
    let mut best: Option<(Digest, Sample)> = None;
    for _ in 0..reps {
        let (d, s) = run_once(sensors, workers, virtual_secs);
        match &mut best {
            None => best = Some((d, s)),
            Some((d0, s0)) => {
                assert!(*d0 == d, "{workers} workers: run-to-run nondeterminism");
                if s.wall_s < s0.wall_s {
                    *s0 = s;
                }
            }
        }
    }
    best.unwrap()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (sensors, virtual_secs, reps) = if smoke {
        (8u64, 40u64, 3)
    } else {
        (16, 300, 3)
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "E9 parallel scaling — {sensors} sensors, {virtual_secs} virtual s, \
         min of {reps} runs, host has {cores} core(s)"
    );

    // `workers == 1` is measured twice under two labels: once as the
    // baseline and once as `with_parallelism(1)`. Both take the identical
    // sequential code path, so the pair doubles as the CI no-regression
    // guard (any gap beyond noise means the parallel plumbing leaked cost
    // into the sequential loop).
    let configs: [(&str, usize); 5] = [
        ("sequential", 1),
        ("parallelism(1)", 1),
        ("2 workers", 2),
        ("4 workers", 4),
        ("8 workers", 8),
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut baseline: Option<(Digest, f64)> = None;
    for (label, workers) in configs {
        let (digest, s) = measure(sensors, workers, virtual_secs, reps);
        let seq_wall = match &baseline {
            None => {
                let w = s.wall_s;
                baseline = Some((digest, w));
                w
            }
            Some((seq_digest, seq_wall)) => {
                // The whole point: worker count must never change outputs.
                assert!(
                    *seq_digest == digest,
                    "{label}: outputs differ from sequential"
                );
                *seq_wall
            }
        };
        let speedup = seq_wall / s.wall_s.max(1e-12);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", s.wall_s),
            format!("{:.0}", s.tuples as f64 / s.wall_s.max(1e-12)),
            format!("{speedup:.2}x"),
            s.batches.to_string(),
            s.steals.to_string(),
        ]);
        let mut j = String::new();
        let _ = write!(
            j,
            "    {{\"label\": \"{label}\", \"workers\": {workers}, \"wall_s\": {:.6}, \
             \"sink_tuples\": {}, \"tuples_per_s\": {:.1}, \"speedup_vs_seq\": {speedup:.4}, \
             \"shard_batches\": {}, \"steals\": {}}}",
            s.wall_s,
            s.tuples,
            s.tuples as f64 / s.wall_s.max(1e-12),
            s.batches,
            s.steals
        );
        json_rows.push(j);
        if smoke && label == "parallelism(1)" {
            assert!(
                s.wall_s <= seq_wall * 1.5 + 0.05,
                "parallelism(1) regressed vs sequential: {:.3}s vs {seq_wall:.3}s",
                s.wall_s
            );
        }
    }

    sl_bench::print_table(
        "E9 — parallel sharded execution (identical outputs asserted)",
        &[
            "config", "wall [s]", "tuples/s", "speedup", "batches", "steals",
        ],
        &rows,
    );

    if smoke {
        println!("\nE9 smoke: outputs identical across all worker counts; N=1 guard held");
    }

    let json = format!(
        "{{\n  \"experiment\": \"E9\",\n  \"host_cores\": {cores},\n  \
         \"sensors\": {sensors},\n  \"virtual_seconds\": {virtual_secs},\n  \
         \"reps\": {reps},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    sl_bench::write_bench_json("BENCH_e9_parallel.json", &json, smoke);
}
