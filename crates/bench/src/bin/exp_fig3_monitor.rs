//! E4 — Figure 3 reproduction: the live monitoring view. Produces the
//! per-operator tuples/sec series, node workload and placement-change
//! timeline under an induced hotspot, plus the monitoring-overhead
//! measurement.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_fig3_monitor
//! ```

use sl_bench::print_table;
use sl_dataflow::DataflowBuilder;
use sl_dsn::SinkKind;
use sl_engine::{Engine, EngineConfig, PlacementPolicy};
use sl_netsim::{NodeSpec, Topology};
use sl_pubsub::SubscriptionFilter;
use sl_sensors::physical::TemperatureSensor;
use sl_stt::{AttrType, Duration, Field, GeoPoint, Schema, SensorId, Theme, Timestamp};
use std::time::Instant;

fn start() -> Timestamp {
    Timestamp::from_civil(2016, 7, 1, 8, 0, 0)
}

/// Three nodes: a weak edge (hotspot), a mid node, a strong core.
fn hotspot_topology() -> Topology {
    let mut t = Topology::new();
    let weak = t.add_node(NodeSpec::edge("weak-edge", 120.0));
    let mid = t.add_node(NodeSpec::edge("mid-edge", 400.0));
    let core = t.add_node(NodeSpec::core("core", 1_000_000.0));
    t.add_link(weak, core, Duration::from_millis(2), 50_000_000)
        .unwrap();
    t.add_link(mid, core, Duration::from_millis(2), 50_000_000)
        .unwrap();
    t
}

fn sensor(id: u64, node: u32, period_ms: u64) -> Box<TemperatureSensor> {
    Box::new(TemperatureSensor::new(
        SensorId(id),
        &format!("t{id}"),
        GeoPoint::new_unchecked(34.7, 135.5),
        sl_netsim::NodeId(node),
        Duration::from_millis(period_ms),
        false,
        false,
        id,
    ))
}

fn main() {
    let config = EngineConfig {
        placement: PlacementPolicy::SourceLocal,
        ..Default::default()
    };
    let mut engine = Engine::new(hotspot_topology(), config, start());

    let schema = Schema::new(vec![
        Field::new("temperature", AttrType::Float),
        Field::new("station", AttrType::Str),
    ])
    .unwrap()
    .into_ref();
    let df = DataflowBuilder::new("fig3")
        .source(
            "temp",
            SubscriptionFilter::any().with_theme(Theme::new("weather/temperature").unwrap()),
            schema,
        )
        .filter("hot", "temp", "temperature > 22")
        .transform(
            "f2c",
            "hot",
            &[(
                "temperature",
                "convert_unit(temperature, 'celsius', 'fahrenheit')",
            )],
        )
        .sink("viz", SinkKind::Visualization, &["f2c"])
        .build()
        .unwrap();

    // Two slow seed sensors on the weak node.
    engine.add_sensor(sensor(0, 0, 2000)).unwrap();
    engine.add_sensor(sensor(1, 0, 2000)).unwrap();
    engine.deploy(df).unwrap();

    // Timeline: sample every 10 s of virtual time; at t=60 s induce a
    // hotspot by plugging 20 fast sensors into the weak node.
    let mut rows = Vec::new();
    for step in 0..18 {
        if step == 6 {
            for i in 0..20u64 {
                engine.add_sensor(sensor(100 + i, 0, 100)).unwrap();
            }
        }
        engine.run_for(Duration::from_secs(10));
        let m = engine.monitor();
        let rate = |op: &str| {
            m.op("fig3", op)
                .and_then(|c| c.rate_series.last())
                .map_or(0.0, |(_, r)| r)
        };
        let util = |n: u32| {
            engine
                .loads()
                .utilization(engine.topology(), sl_netsim::NodeId(n))
                .unwrap_or(0.0)
        };
        rows.push(vec![
            format!("{}", (step + 1) * 10),
            format!("{:.1}", rate("hot")),
            format!("{:.1}", rate("f2c")),
            format!("{:.2}", util(0)),
            format!("{:.2}", util(1)),
            engine
                .node_of("fig3", "hot")
                .map_or("-".into(), |n| n.to_string()),
            engine
                .node_of("fig3", "f2c")
                .map_or("-".into(), |n| n.to_string()),
        ]);
    }
    print_table(
        "E4 / Figure 3 — per-operator rate, node workload and assignments (hotspot at t=60s)",
        &[
            "t [s]",
            "hot [tuples/s]",
            "f2c [tuples/s]",
            "util node#0",
            "util node#1",
            "hot on",
            "f2c on",
        ],
        &rows,
    );

    println!("\nplacement changes:");
    for p in &engine.monitor().placements {
        let from = p.from.map_or("-".to_string(), |n| n.to_string());
        println!(
            "  [{}] {}/{}: {} -> {} ({})",
            p.at, p.deployment, p.operator, from, p.to, p.reason
        );
    }

    // --- observability dashboard ------------------------------------------
    // The sl-obs snapshot: per-operator processing-latency percentiles,
    // end-to-end latency, and the event-queue depth gauge.
    let snap = engine.metrics_snapshot();
    let rows: Vec<Vec<String>> = snap
        .hists
        .iter()
        .filter(|(name, _)| name.starts_with("op/") && name.ends_with("/proc_us"))
        .map(|(name, h)| {
            vec![
                name.trim_start_matches("op/")
                    .trim_end_matches("/proc_us")
                    .to_string(),
                h.count.to_string(),
                h.p50.to_string(),
                h.p95.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]
        })
        .collect();
    print_table(
        "E4 — per-operator processing latency (host wall-clock, sl-obs histograms)",
        &[
            "operator", "tuples", "p50 [us]", "p95 [us]", "p99 [us]", "max [us]",
        ],
        &rows,
    );
    println!(
        "\nevent queue depth (last monitor sample): {}",
        snap.gauges
            .get("engine/event_queue_depth")
            .copied()
            .unwrap_or(0)
    );
    println!(
        "spans completed: {} (per-tuple traces across {} operator keys)",
        snap.counters
            .get("engine/spans_completed")
            .copied()
            .unwrap_or(0),
        snap.hists
            .keys()
            .filter(|k| k.starts_with("engine/span/"))
            .count()
    );

    // --- monitoring overhead ----------------------------------------------
    let mut rows = Vec::new();
    for period_ms in [100u64, 1000, 10_000, 60_000] {
        let config = EngineConfig {
            monitor_period: Duration::from_millis(period_ms),
            migration_enabled: false,
            ..Default::default()
        };
        let mut engine = Engine::new(Topology::nict_testbed(), config, start());
        for i in 0..6u64 {
            engine.add_sensor(sensor(i, 3 + i as u32, 500)).unwrap();
        }
        engine
            .deploy(sl_bench::passthrough_dataflow("ovh", 5))
            .unwrap();
        let wall = Instant::now();
        engine.run_for(Duration::from_mins(10));
        let elapsed = wall.elapsed();
        rows.push(vec![
            format!("{period_ms}"),
            format!("{:.3}", elapsed.as_secs_f64()),
            engine.monitor().all_ops().count().to_string(),
        ]);
    }
    print_table(
        "E4 — monitoring overhead: wall time for 10 min virtual vs sampling period",
        &["monitor period [ms]", "wall time [s]", "tracked operators"],
        &rows,
    );
}
