//! `bench-compare` — diff fresh experiment runs against the committed
//! `BENCH_*.json` baselines.
//!
//! ```sh
//! bench-compare <baseline-dir> <fresh-dir>
//! ```
//!
//! For every known baseline file present in *both* directories, the
//! scale-invariant ratio metrics are paired by row key and a fresh value
//! below `baseline × (1 − tolerance)` fails the run (exit 1). Files
//! missing on either side are skipped with a note — smoke runs only write
//! the experiments `scripts/check.sh` exercises. The tolerance defaults
//! to 0.5 and can be overridden with `BENCH_COMPARE_TOLERANCE`; to accept
//! an intentional performance change, regenerate the baseline with the
//! full experiment binary and commit it (see `EXPERIMENTS.md`).

use sl_bench::compare::{compare, tolerance_from_env, BASELINE_FILES};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_dir, fresh_dir] = args.as_slice() else {
        eprintln!("usage: bench-compare <baseline-dir> <fresh-dir>");
        eprintln!("       (tolerance: BENCH_COMPARE_TOLERANCE, default 0.5)");
        return ExitCode::from(2);
    };
    let tolerance = tolerance_from_env();
    println!("bench-compare: tolerance {tolerance} (baseline {baseline_dir}, fresh {fresh_dir})");

    let mut compared = 0usize;
    let mut failed = false;
    for file in BASELINE_FILES {
        let base_path = Path::new(baseline_dir).join(file);
        let fresh_path = Path::new(fresh_dir).join(file);
        let (Ok(base), Ok(fresh)) = (
            std::fs::read_to_string(&base_path),
            std::fs::read_to_string(&fresh_path),
        ) else {
            println!("  {file}: skipped (not present on both sides)");
            continue;
        };
        match compare(file, &base, &fresh, tolerance) {
            Ok(c) => {
                compared += 1;
                for p in &c.pairs {
                    println!(
                        "  {file}: {}={}: {} {:.2} -> {:.2}",
                        key_field(file),
                        p.key,
                        c.metric,
                        p.baseline,
                        p.fresh
                    );
                }
                for r in &c.regressions {
                    eprintln!("REGRESSION {r}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("bench-compare: {e}");
                failed = true;
            }
        }
    }
    if compared == 0 {
        eprintln!("bench-compare: nothing to compare ({fresh_dir} holds no known files)");
        return ExitCode::from(2);
    }
    if failed {
        eprintln!(
            "bench-compare: FAILED — if the change is intentional, regenerate the \
             baseline with the full experiment binary and commit it"
        );
        return ExitCode::from(1);
    }
    println!("bench-compare: ok ({compared} file(s) within tolerance)");
    ExitCode::SUCCESS
}

fn key_field(file: &str) -> &'static str {
    match file {
        "BENCH_e11_cq.json" => "subscribers",
        "BENCH_e12_compaction.json" => "segments",
        _ => "label",
    }
}
