//! E1 — Table 1 reproduction: the full operation suite, with measured
//! per-operation throughput (the "number of tuples that each operation
//! handle per second" the monitor reports, paper §3).
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_table1
//! ```

use sl_bench::{bench_schema, make_tuples, print_table, tuples_per_sec};
use sl_ops::{AggFunc, OpContext, OpSpec, Operator};
use sl_stt::{BoundingBox, Duration, GeoPoint, TimeInterval, Timestamp};
use std::time::Instant;

/// Run `tuples` through an operator (with a flush tick for blocking ones)
/// and return (wall time, tuples out).
fn drive(
    mut op: Box<dyn Operator>,
    tuples: &[sl_stt::Tuple],
    two_port: bool,
) -> (std::time::Duration, usize) {
    let mut ctx = OpContext::new(Timestamp::from_secs(0));
    // Flush just after the newest tuple so sliding windows still hold data.
    let flush_at = tuples
        .last()
        .map(|t| t.meta.timestamp + sl_stt::Duration::from_secs(1))
        .unwrap_or(Timestamp::from_secs(0));
    let start = Instant::now();
    for (i, t) in tuples.iter().enumerate() {
        let port = if two_port { i % 2 } else { 0 };
        ctx.now = t.meta.timestamp;
        op.on_tuple(port, t.clone(), &mut ctx)
            .expect("bench tuples valid");
    }
    if op.is_blocking() {
        op.on_timer(flush_at, &mut ctx).expect("tick");
    }
    let wall = start.elapsed();
    (wall, ctx.emitted().len())
}

fn main() {
    let n = 200_000;
    let tuples = make_tuples(n, 42);
    let schema = bench_schema();
    let osaka = BoundingBox::from_corners(
        GeoPoint::new_unchecked(34.5, 135.3),
        GeoPoint::new_unchecked(34.9, 135.7),
    );
    let whole_run = TimeInterval::new(Timestamp::from_secs(0), Timestamp::from_secs(n as i64));
    let window = Duration::from_hours(100); // single window over the batch

    // (label, Table-1 symbol, spec, selectivity note)
    let specs: Vec<(&str, String, OpSpec)> = vec![
        (
            "Filter",
            "σ(s, cond)".into(),
            OpSpec::Filter {
                condition: "temperature > 22.5".into(),
            },
        ),
        (
            "Transform",
            "▷trans s".into(),
            OpSpec::Transform {
                assignments: vec![(
                    "temperature".into(),
                    "convert_unit(temperature, 'celsius', 'fahrenheit')".into(),
                )],
            },
        ),
        (
            "Virtual property",
            "⊎s⟨p, spec⟩".into(),
            OpSpec::VirtualProperty {
                property: "apparent".into(),
                spec: "apparent_temperature(temperature, humidity)".into(),
            },
        ),
        (
            "Cull Time",
            "γr(s, ⟨t1, t2⟩)".into(),
            OpSpec::CullTime {
                interval: whole_run,
                rate: 3,
            },
        ),
        (
            "Cull Space",
            "γr(s, ⟨c1, c2⟩)".into(),
            OpSpec::CullSpace {
                area: osaka,
                rate: 3,
            },
        ),
        (
            "Aggregation COUNT",
            "@t,{} count".into(),
            OpSpec::Aggregate {
                period: window,
                group_by: vec![],
                func: AggFunc::Count,
                attr: None,
                sliding: None,
            },
        ),
        (
            "Aggregation AVG",
            "@t,{station} avg".into(),
            OpSpec::Aggregate {
                period: window,
                group_by: vec!["station".into()],
                func: AggFunc::Avg,
                attr: Some("temperature".into()),
                sliding: None,
            },
        ),
        (
            "Aggregation MIN",
            "@t,{station} min".into(),
            OpSpec::Aggregate {
                period: window,
                group_by: vec!["station".into()],
                func: AggFunc::Min,
                attr: Some("temperature".into()),
                sliding: None,
            },
        ),
        (
            "Aggregation AVG (sliding)",
            "@t~1h,{station} avg".into(),
            OpSpec::Aggregate {
                period: window,
                group_by: vec!["station".into()],
                func: AggFunc::Avg,
                attr: Some("temperature".into()),
                sliding: Some(Duration::from_hours(1)),
            },
        ),
        (
            "Trigger On",
            "⊕ON,t(s, {s1..}, cond)".into(),
            OpSpec::TriggerOn {
                period: window,
                condition: "temperature > 30".into(),
                targets: vec!["rain".into()],
            },
        ),
        (
            "Trigger Off",
            "⊕OFF,t(s, {s1..}, cond)".into(),
            OpSpec::TriggerOff {
                period: window,
                condition: "temperature < 12".into(),
                targets: vec!["rain".into()],
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, symbol, spec) in &specs {
        let op = spec
            .instantiate(std::slice::from_ref(&schema))
            .expect("spec valid");
        let blocking = op.is_blocking();
        let (wall, out) = drive(op, &tuples, false);
        rows.push(vec![
            label.to_string(),
            symbol.clone(),
            if blocking {
                "blocking".into()
            } else {
                "non-blocking".into()
            },
            format!("{:.0}", tuples_per_sec(n, wall)),
            out.to_string(),
        ]);
    }

    // Join drives both ports with independent batches sharing station keys.
    let join = OpSpec::Join {
        period: window,
        predicate: "station = right_station and seq != right_seq".into(),
    };
    let mut op = join
        .instantiate(&[schema.clone(), schema.clone()])
        .expect("join valid");
    // A smaller batch: the windowed join is quadratic per key group.
    let join_n = 4_000;
    let left = make_tuples(join_n, 43);
    let right = make_tuples(join_n, 44);
    let mut ctx = OpContext::new(Timestamp::from_secs(0));
    let start = Instant::now();
    for t in &left {
        op.on_tuple(0, t.clone(), &mut ctx).expect("left tuple");
    }
    for t in &right {
        op.on_tuple(1, t.clone(), &mut ctx).expect("right tuple");
    }
    op.on_timer(Timestamp::from_secs(1_000_000), &mut ctx)
        .expect("tick");
    let wall = start.elapsed();
    // The join's dominant cost is producing result tuples (each window pair
    // of 4k×4k over 8 station keys yields ~2M results); report output rate.
    rows.push(vec![
        "Join (hash)".into(),
        "s1 ⋈t_pred s2".into(),
        "blocking".into(),
        format!("{:.0} (out)", tuples_per_sec(ctx.emitted().len(), wall)),
        ctx.emitted().len().to_string(),
    ]);

    print_table(
        "E1 / Table 1 — stream processing operations (200k-tuple batch; join 20k)",
        &["operation", "symbol", "class", "tuples/sec", "tuples out"],
        &rows,
    );
    println!("\nNote: blocking operations buffer and do their work on the `t` tick;");
    println!("throughput here is ingest+tick cost over the whole batch.");
}
