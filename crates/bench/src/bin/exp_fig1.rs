//! E2 — Figure 1 reproduction: the architecture pipeline. Measures the
//! full dataflow → DSN → SCN → network-configuration path (deployment
//! latency) across topology and dataflow sizes, plus reconfiguration cost
//! when sensors churn.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_fig1
//! ```

use sl_bench::{linear_dataflow, print_table};
use sl_engine::{Engine, EngineConfig};
use sl_netsim::Topology;
use sl_pubsub::SensorKind;
use sl_sensors::physical::TemperatureSensor;
use sl_stt::{Duration, GeoPoint, SensorId, Timestamp};
use std::time::Instant;

fn start() -> Timestamp {
    Timestamp::from_civil(2016, 7, 1, 8, 0, 0)
}

fn main() {
    // --- deployment latency vs topology size -----------------------------
    let mut rows = Vec::new();
    for nodes in [8usize, 16, 32, 64, 128] {
        let topo = Topology::random(nodes, nodes / 2, 7);
        for ops in [3usize, 10, 20] {
            let mut engine = Engine::new(topo.clone(), EngineConfig::default(), start());
            // A modest fleet so source binding has work to do.
            for i in 0..10u64 {
                let node = topo.edge_nodes()[i as usize % topo.edge_nodes().len()];
                engine
                    .add_sensor(Box::new(TemperatureSensor::new(
                        SensorId(i),
                        &format!("t{i}"),
                        GeoPoint::new_unchecked(34.7, 135.5),
                        node,
                        Duration::from_secs(10),
                        false,
                        false,
                        i,
                    )))
                    .unwrap();
            }
            let df = linear_dataflow("bench", ops);
            let t0 = Instant::now();
            engine.deploy(df).unwrap();
            let deploy = t0.elapsed();
            // Reconfiguration: one sensor joins, one leaves.
            let t1 = Instant::now();
            engine
                .add_sensor(Box::new(TemperatureSensor::new(
                    SensorId(999),
                    "late",
                    GeoPoint::new_unchecked(34.7, 135.5),
                    topo.edge_nodes()[0],
                    Duration::from_secs(10),
                    false,
                    false,
                    99,
                )))
                .unwrap();
            engine.remove_sensor(SensorId(0)).unwrap();
            let churn = t1.elapsed();
            rows.push(vec![
                nodes.to_string(),
                ops.to_string(),
                format!("{:.2}", deploy.as_secs_f64() * 1000.0),
                format!("{:.3}", churn.as_secs_f64() * 1000.0),
            ]);
        }
    }
    print_table(
        "E2 / Figure 1 — deployment & reconfiguration latency",
        &[
            "topology nodes",
            "operators",
            "deploy [ms]",
            "sensor churn [ms]",
        ],
        &rows,
    );

    // --- SCN command census vs dataflow size ------------------------------
    let mut rows = Vec::new();
    for ops in [1usize, 5, 10, 20, 40] {
        let df = linear_dataflow("bench", ops);
        let doc = sl_dataflow::to_dsn(&df);
        let program = sl_dsn::compile(&doc).unwrap();
        let (binds, spawns, flows, sinks) = program.census();
        rows.push(vec![
            ops.to_string(),
            binds.to_string(),
            spawns.to_string(),
            flows.to_string(),
            sinks.to_string(),
        ]);
    }
    print_table(
        "E2 / Figure 1 — SCN program size vs dataflow size",
        &["operators", "binds", "spawns", "flows", "sinks"],
        &rows,
    );

    // --- steady-state execution over the testbed --------------------------
    let topo = Topology::nict_testbed();
    let mut engine = Engine::new(topo.clone(), EngineConfig::default(), start());
    for i in 0..9u64 {
        let node = topo.edge_nodes()[i as usize % 9];
        engine
            .add_sensor(Box::new(TemperatureSensor::new(
                SensorId(i),
                &format!("t{i}"),
                GeoPoint::new_unchecked(34.7, 135.5),
                node,
                Duration::from_secs(1),
                false,
                false,
                i,
            )))
            .unwrap();
    }
    // The steady-state flow declares only the attributes the temperature
    // sensors actually advertise (bindings are schema-checked).
    let steady_schema = sl_stt::Schema::new(vec![
        sl_stt::Field::new("temperature", sl_stt::AttrType::Float),
        sl_stt::Field::new("station", sl_stt::AttrType::Str),
    ])
    .unwrap()
    .into_ref();
    let steady = sl_dataflow::DataflowBuilder::new("steady")
        .source(
            "src",
            sl_pubsub::SubscriptionFilter::any().with_theme(sl_stt::Theme::new("weather").unwrap()),
            steady_schema,
        )
        .filter("f0", "src", "temperature > 0")
        .transform("f1", "f0", &[("temperature", "temperature * 1.0")])
        .filter("f2", "f1", "temperature < 100")
        .sink("out", sl_dsn::SinkKind::Visualization, &["f2"])
        .build()
        .unwrap();
    engine.deploy(steady).unwrap();
    let wall = Instant::now();
    engine.run_for(Duration::from_mins(10));
    let elapsed = wall.elapsed();
    let stats = engine.net_stats();
    let (physical, social) = sl_pubsub::registry::census(engine.broker().registry());
    let _ = (physical, social, SensorKind::Physical);
    println!(
        "\nsteady state on the NICT-like testbed (10 min virtual in {:.2} s wall):",
        elapsed.as_secs_f64()
    );
    println!("  network messages: {}", stats.total_msgs());
    println!("  network bytes:    {}", stats.total_bytes());
    println!(
        "  mean hop delay:   {:?}",
        stats.mean_hop_delay().map(|d| d.to_string())
    );
    println!(
        "  virtual-to-wall speedup: {:.0}x",
        600.0 / elapsed.as_secs_f64().max(1e-9)
    );
}
