//! E11 — continuous queries: incremental view maintenance vs. rescan.
//!
//! The serving question behind `sl-cq`: N dashboard clients each hold a
//! standing `CubeQuery` and want a fresh roll-up after every ingest batch.
//! The pre-cq answer re-runs `rollup_scan` per client per refresh, paying
//! O(clients × stored events) every time. The cq answer maintains one
//! `MaterializedView` per client — O(clients) `absorb`s per ingested
//! event — and a refresh is just reading the already-current cells.
//!
//! Both strategies replay the same deterministic event stream and the same
//! per-client query mix; at the end their cells must be byte-identical.
//! Results land in `BENCH_e11_cq.json` (full mode only).
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_e11_cq           # full run
//! cargo run --release -p sl-bench --bin exp_e11_cq -- --test # CI smoke
//! ```
//!
//! The smoke mode asserts the headline claim cheaply: at 100 subscribers,
//! incremental maintenance is at least 10x faster than rescans.

use sl_cq::CqHub;
use sl_stt::{
    Duration, Event, GeoPoint, SpatialGranularity, TemporalGranularity, Theme, TimeInterval,
    Timestamp, Value,
};
use sl_warehouse::{CubeCell, CubeQuery, EventQuery, EventWarehouse};
use std::fmt::Write as _;
use std::time::Instant;

const THEMES: [&str; 5] = [
    "weather/temperature",
    "weather/rain",
    "traffic/flow",
    "social/tweet",
    "air/pm25",
];

/// Deterministic heterogeneous stream: five themes, a small city grid,
/// one event per second.
fn gen_events(n: usize) -> Vec<Event> {
    let base = Timestamp::from_civil(2016, 7, 1, 12, 0, 0);
    (0..n)
        .map(|i| {
            let theme = Theme::new(THEMES[i % THEMES.len()]).unwrap();
            let lat = 34.60 + 0.01 * ((i % 17) as f64);
            let lon = 135.40 + 0.01 * ((i % 13) as f64);
            let t = base + Duration::from_secs(i as u64);
            Event::new(
                Value::Float(20.0 + ((i * 7) % 100) as f64 / 10.0),
                TemporalGranularity::Minute,
                TemporalGranularity::Minute.granule_of(t),
                SpatialGranularity::grid(8).granule_of(&GeoPoint::new_unchecked(lat, lon)),
                theme,
            )
        })
        .collect()
}

/// The per-client query mix: alternating granularities, theme depths, and
/// selections, so the views are not all clones of one another.
fn query_for(i: usize) -> CubeQuery {
    let select = match i % 3 {
        0 => EventQuery::all(),
        1 => EventQuery::all().with_theme(Theme::new("weather").unwrap()),
        _ => EventQuery::all().in_time(TimeInterval::new(
            Timestamp::from_civil(2016, 7, 1, 12, 0, 0),
            Timestamp::from_civil(2016, 7, 1, 14, 0, 0),
        )),
    };
    CubeQuery {
        select,
        tgran: if i.is_multiple_of(2) {
            TemporalGranularity::Hour
        } else {
            TemporalGranularity::Minute
        },
        sgran: if i.is_multiple_of(4) {
            SpatialGranularity::World
        } else {
            SpatialGranularity::grid(2)
        },
        theme_depth: 1 + i % 2,
    }
}

struct Sample {
    incremental_s: f64,
    rescan_s: f64,
}

/// Incremental: one hub with a view per client; each batch is absorbed
/// once, then every client's refresh is a plain read of current cells.
fn run_incremental(
    subscribers: usize,
    events: &[Event],
    batch: usize,
) -> (f64, Vec<Vec<CubeCell>>) {
    let mut w = EventWarehouse::with_defaults();
    let mut hub = CqHub::new();
    let ids: Vec<_> = (0..subscribers)
        .map(|i| hub.register_view(&format!("dash{i}"), query_for(i), w.iter()))
        .collect();
    let t0 = Instant::now();
    let mut last = Vec::new();
    for chunk in events.chunks(batch) {
        hub.on_events(chunk);
        for ev in chunk {
            w.insert(ev.clone());
        }
        last = ids
            .iter()
            .map(|id| hub.view_cells(*id).expect("live view"))
            .collect();
    }
    (t0.elapsed().as_secs_f64(), last)
}

/// Rescan: no standing state; every refresh re-runs `rollup_scan` for
/// every client over everything stored so far.
fn run_rescan(subscribers: usize, events: &[Event], batch: usize) -> (f64, Vec<Vec<CubeCell>>) {
    let queries: Vec<_> = (0..subscribers).map(query_for).collect();
    let mut w = EventWarehouse::with_defaults();
    let t0 = Instant::now();
    let mut last = Vec::new();
    for chunk in events.chunks(batch) {
        for ev in chunk {
            w.insert(ev.clone());
        }
        last = queries.iter().map(|q| w.rollup_scan(q)).collect();
    }
    (t0.elapsed().as_secs_f64(), last)
}

fn run_once(subscribers: usize, events: &[Event], batch: usize) -> Sample {
    let (incremental_s, inc_cells) = run_incremental(subscribers, events, batch);
    let (rescan_s, scan_cells) = run_rescan(subscribers, events, batch);
    assert_eq!(
        inc_cells, scan_cells,
        "{subscribers} subscribers: incremental views diverged from rescans"
    );
    Sample {
        incremental_s,
        rescan_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // One refresh per 50-event batch in both modes: a live dashboard's
    // cadence. The full run only adds fleet sizes and stream length.
    let (n_events, batch, fleet): (usize, usize, &[usize]) = if smoke {
        (3_000, 50, &[100])
    } else {
        (3_000, 50, &[1, 10, 100, 1000])
    };
    let events = gen_events(n_events);
    println!(
        "E11 continuous queries — {n_events} events, refresh every {batch}, \
         fleet sizes {fleet:?}"
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut speedup_at_100 = 0.0f64;
    for &subscribers in fleet {
        let s = run_once(subscribers, &events, batch);
        let speedup = s.rescan_s / s.incremental_s.max(1e-9);
        if subscribers == 100 {
            speedup_at_100 = speedup;
        }
        rows.push(vec![
            subscribers.to_string(),
            format!("{:.4}", s.incremental_s),
            format!("{:.4}", s.rescan_s),
            format!("{speedup:.1}x"),
        ]);
        let mut j = String::new();
        let _ = write!(
            j,
            "    {{\"subscribers\": {subscribers}, \"incremental_s\": {:.6}, \
             \"rescan_s\": {:.6}, \"speedup\": {speedup:.2}}}",
            s.incremental_s, s.rescan_s
        );
        json_rows.push(j);
    }

    sl_bench::print_table(
        "E11 — N live dashboards: incremental views vs. per-refresh rescans \
         (final cells asserted identical)",
        &["subscribers", "incremental [s]", "rescan [s]", "speedup"],
        &rows,
    );

    assert!(
        speedup_at_100 >= 10.0,
        "incremental maintenance must beat rescans >=10x at 100 subscribers \
         (got {speedup_at_100:.1}x)"
    );

    if smoke {
        println!(
            "\nE11 smoke: views byte-identical to rescans, {speedup_at_100:.1}x \
             speedup at 100 subscribers"
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"E11\",\n  \"events\": {n_events},\n  \
         \"refresh_every\": {batch},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    sl_bench::write_bench_json("BENCH_e11_cq.json", &json, smoke);
}
