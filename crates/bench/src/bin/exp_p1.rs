//! E5 — Demo P1 reproduction: sensor discovery and dataflow design checks.
//! Measures discovery latency against fleet size, shows the directory
//! organisations, and demonstrates that every inconsistency class the GUI
//! prevents is caught by validation.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_p1
//! ```

use sl_bench::{make_ads, print_table};
use sl_dataflow::{validate, DataflowBuilder};
use sl_dsn::SinkKind;
use sl_pubsub::registry::GroupCriterion;
use sl_pubsub::{SensorKind, SensorRegistry, SubscriptionFilter};
use sl_stt::{BoundingBox, Duration, GeoPoint, SpatialGranularity, Theme};
use std::time::Instant;

fn main() {
    // --- discovery latency vs fleet size ----------------------------------
    let osaka = BoundingBox::from_corners(
        GeoPoint::new_unchecked(34.0, 135.0),
        GeoPoint::new_unchecked(35.0, 136.0),
    );
    let filters: Vec<(&str, SubscriptionFilter)> = vec![
        (
            "by theme",
            SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap()),
        ),
        ("by area", SubscriptionFilter::any().with_area(osaka)),
        (
            "by kind",
            SubscriptionFilter::any().with_kind(SensorKind::Social),
        ),
        (
            "composite",
            SubscriptionFilter::any()
                .with_theme(Theme::new("weather/rain").unwrap())
                .with_area(osaka)
                .with_max_period(Duration::from_secs(30)),
        ),
    ];
    let mut rows = Vec::new();
    for fleet in [10usize, 100, 1_000, 10_000] {
        let mut registry = SensorRegistry::new();
        for ad in make_ads(fleet, 5) {
            registry.publish(ad).unwrap();
        }
        for (label, filter) in &filters {
            let reps = 100;
            let t0 = Instant::now();
            let mut found = 0usize;
            for _ in 0..reps {
                found = registry.discover(filter).count();
            }
            let per_query_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
            rows.push(vec![
                fleet.to_string(),
                label.to_string(),
                found.to_string(),
                format!("{per_query_us:.1}"),
            ]);
        }
    }
    print_table(
        "E5 / P1 — discovery latency vs fleet size",
        &["fleet size", "query", "matches", "latency [µs]"],
        &rows,
    );

    // --- directory organisations ------------------------------------------
    let mut registry = SensorRegistry::new();
    for ad in make_ads(1000, 5) {
        registry.publish(ad).unwrap();
    }
    let mut rows = Vec::new();
    for (label, criterion) in [
        ("theme root", GroupCriterion::ThemeRoot),
        ("kind", GroupCriterion::Kind),
        ("hosting node", GroupCriterion::Node),
        (
            "spatial cell (grid2)",
            GroupCriterion::SpatialCell(SpatialGranularity::grid(2)),
        ),
        ("period band", GroupCriterion::PeriodBand),
    ] {
        let groups = registry.group_by(criterion);
        let largest = groups.values().map(Vec::len).max().unwrap_or(0);
        rows.push(vec![
            label.to_string(),
            groups.len().to_string(),
            largest.to_string(),
        ]);
    }
    print_table(
        "E5 / P1 — directory organisations (1000 sensors)",
        &["criterion", "groups", "largest group"],
        &rows,
    );

    // --- validation catches every inconsistency class ----------------------
    let schema = sl_bench::bench_schema();
    let any = SubscriptionFilter::any;
    let cases: Vec<(&str, sl_dataflow::Dataflow)> = vec![
        (
            "unknown attribute",
            DataflowBuilder::new("bad")
                .source("s", any(), schema.clone())
                .filter("f", "s", "wind > 1")
                .sink("o", SinkKind::Console, &["f"])
                .build()
                .unwrap(),
        ),
        (
            "type error",
            DataflowBuilder::new("bad")
                .source("s", any(), schema.clone())
                .filter("f", "s", "station > 3")
                .sink("o", SinkKind::Console, &["f"])
                .build()
                .unwrap(),
        ),
        (
            "non-boolean condition",
            DataflowBuilder::new("bad")
                .source("s", any(), schema.clone())
                .filter("f", "s", "temperature + humidity")
                .sink("o", SinkKind::Console, &["f"])
                .build()
                .unwrap(),
        ),
        (
            "attribute lost downstream",
            DataflowBuilder::new("bad")
                .source("s", any(), schema.clone())
                .aggregate(
                    "g",
                    "s",
                    Duration::from_mins(1),
                    &[],
                    sl_ops::AggFunc::Avg,
                    Some("temperature"),
                )
                .filter("f", "g", "humidity > 1")
                .sink("o", SinkKind::Console, &["f"])
                .build()
                .unwrap(),
        ),
        (
            "orphan gated source",
            DataflowBuilder::new("bad")
                .source("s", any(), schema.clone())
                .gated_source("g", any(), schema.clone())
                .sink("o", SinkKind::Console, &["s"])
                .build()
                .unwrap(),
        ),
        (
            "trigger target not a source",
            DataflowBuilder::new("bad")
                .source("s", any(), schema.clone())
                .filter("f", "s", "temperature > 1")
                .trigger_on("t", "s", Duration::from_mins(1), "temperature > 2", &["f"])
                .sink("o", SinkKind::Console, &["f"])
                .build()
                .unwrap(),
        ),
        (
            "sum of a string",
            DataflowBuilder::new("bad")
                .source("s", any(), schema.clone())
                .aggregate(
                    "g",
                    "s",
                    Duration::from_mins(1),
                    &[],
                    sl_ops::AggFunc::Sum,
                    Some("station"),
                )
                .sink("o", SinkKind::Console, &["g"])
                .build()
                .unwrap(),
        ),
    ];
    let mut rows = Vec::new();
    for (label, df) in cases {
        let verdict = match validate(&df) {
            Ok(_) => "MISSED".to_string(),
            Err(e) => {
                let text = e.to_string();
                format!("caught: {}", &text[..text.len().min(58)])
            }
        };
        rows.push(vec![label.to_string(), verdict]);
    }
    print_table(
        "E5 / P1 — validation catches the inconsistency classes",
        &["mistake", "verdict"],
        &rows,
    );
}
