//! E6 — Demo P2 reproduction: DSN translation round-trips and the Event
//! Data Warehouse's ingest/query performance.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_p2
//! ```

use sl_bench::{linear_dataflow, make_tuples, print_table, tuples_per_sec};
use sl_dsn::{compile, parse_document, print_document};
use sl_stt::{
    BoundingBox, GeoPoint, SpatialGranularity, TemporalGranularity, Theme, TimeInterval, Timestamp,
};
use sl_warehouse::{CubeQuery, EventQuery, EventWarehouse};
use std::time::Instant;

fn main() {
    // --- DSN translate / print / parse / compile --------------------------
    let mut rows = Vec::new();
    for ops in [3usize, 10, 20, 40] {
        let df = linear_dataflow("p2", ops);
        let reps = 200;
        let t0 = Instant::now();
        let mut text = String::new();
        for _ in 0..reps {
            text = print_document(&sl_dataflow::to_dsn(&df));
        }
        let print_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t0 = Instant::now();
        let mut doc = None;
        for _ in 0..reps {
            doc = Some(parse_document(&text).unwrap());
        }
        let parse_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let doc = doc.unwrap();
        let t0 = Instant::now();
        for _ in 0..reps {
            compile(&doc).unwrap();
        }
        let compile_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        // Round-trip identity.
        assert_eq!(print_document(&doc), text, "round trip broken");
        rows.push(vec![
            ops.to_string(),
            text.len().to_string(),
            format!("{print_us:.1}"),
            format!("{parse_us:.1}"),
            format!("{compile_us:.1}"),
        ]);
    }
    print_table(
        "E6 / P2 — DSN translation pipeline (per document)",
        &[
            "operators",
            "DSN bytes",
            "print [µs]",
            "parse [µs]",
            "compile [µs]",
        ],
        &rows,
    );

    // --- warehouse ingest ---------------------------------------------------
    let n = 100_000;
    let tuples = make_tuples(n, 11);
    let mut warehouse = EventWarehouse::with_defaults();
    let t0 = Instant::now();
    let mut events = 0usize;
    for t in &tuples {
        events +=
            warehouse.ingest_tuple(t, TemporalGranularity::Minute, SpatialGranularity::grid(8));
    }
    let ingest = t0.elapsed();
    println!(
        "\ningest: {n} tuples -> {events} events in {:.3} s ({:.0} tuples/s)",
        ingest.as_secs_f64(),
        tuples_per_sec(n, ingest)
    );

    // --- warehouse queries: index vs scan ----------------------------------
    let range = TimeInterval::new(Timestamp::from_secs(40_000), Timestamp::from_secs(41_000));
    let osaka = BoundingBox::from_corners(
        GeoPoint::new_unchecked(34.6, 135.4),
        GeoPoint::new_unchecked(34.8, 135.6),
    );
    let queries: Vec<(&str, EventQuery)> = vec![
        ("time slice (1000 s)", EventQuery::all().in_time(range)),
        (
            "theme subtree",
            EventQuery::all().with_theme(Theme::new("weather/temperature").unwrap()),
        ),
        ("area", EventQuery::all().in_area(osaka)),
        (
            "time + theme",
            EventQuery::all()
                .in_time(range)
                .with_theme(Theme::new("weather/temperature/temperature").unwrap()),
        ),
    ];
    let mut rows = Vec::new();
    for (label, q) in &queries {
        let reps = 20;
        let t0 = Instant::now();
        let mut hits = 0;
        for _ in 0..reps {
            hits = warehouse.query(q).len();
        }
        let fast_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
        let t0 = Instant::now();
        let mut scan_hits = 0;
        for _ in 0..reps {
            scan_hits = warehouse.query_scan(q).len();
        }
        let scan_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
        assert_eq!(hits, scan_hits, "index disagrees with scan on `{label}`");
        rows.push(vec![
            label.to_string(),
            hits.to_string(),
            format!("{fast_ms:.3}"),
            format!("{scan_ms:.3}"),
            format!("{:.1}x", scan_ms / fast_ms.max(1e-9)),
        ]);
    }
    print_table(
        "E6 / P2 — warehouse queries: index vs full scan (300k events)",
        &["query", "hits", "indexed [ms]", "scan [ms]", "speedup"],
        &rows,
    );

    // --- STT roll-up ---------------------------------------------------------
    let t0 = Instant::now();
    let cells = warehouse.rollup(&CubeQuery {
        select: EventQuery::all(),
        tgran: TemporalGranularity::Hour,
        sgran: SpatialGranularity::grid(3),
        theme_depth: 2,
    });
    println!(
        "\nroll-up to (hour, grid3, depth-2 themes): {} cells in {:.3} s",
        cells.len(),
        t0.elapsed().as_secs_f64()
    );
    let total: u64 = cells.iter().map(|c| c.count).sum();
    assert_eq!(
        total as usize,
        warehouse.len(),
        "roll-up must conserve counts"
    );
    println!("roll-up conserves counts: {total} events across cells");
}
