//! A2 — placement-policy ablation: SourceLocal vs LeastLoaded vs Random,
//! with migration on and off, under a hotspot workload. Reports end-to-end
//! delivery, network load, peak node utilisation and migration count.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_ablation_placement
//! ```

use sl_bench::{passthrough_dataflow, print_table};
use sl_engine::{Engine, EngineConfig, PlacementPolicy};
use sl_netsim::{NodeSpec, Topology};
use sl_sensors::physical::TemperatureSensor;
use sl_stt::{Duration, GeoPoint, SensorId, Timestamp};

/// A small asymmetric network: two weak edges, one mid, one strong core.
fn topology() -> Topology {
    let mut t = Topology::new();
    let e0 = t.add_node(NodeSpec::edge("edge0", 150.0));
    let e1 = t.add_node(NodeSpec::edge("edge1", 150.0));
    let mid = t.add_node(NodeSpec::edge("mid", 2_000.0));
    let core = t.add_node(NodeSpec::core("core", 50_000.0));
    t.add_link(e0, core, Duration::from_millis(2), 50_000_000)
        .unwrap();
    t.add_link(e1, core, Duration::from_millis(2), 50_000_000)
        .unwrap();
    t.add_link(mid, core, Duration::from_millis(1), 100_000_000)
        .unwrap();
    t
}

fn run(policy: PlacementPolicy, migration: bool) -> Vec<String> {
    let config = EngineConfig {
        placement: policy,
        migration_enabled: migration,
        ..Default::default()
    };
    let topo = topology();
    let mut engine = Engine::new(topo, config, Timestamp::from_civil(2016, 7, 1, 8, 0, 0));
    // All sensors crowd edge0: the adversarial case for SourceLocal.
    for i in 0..12u64 {
        engine
            .add_sensor(Box::new(TemperatureSensor::new(
                SensorId(i),
                &format!("t{i}"),
                GeoPoint::new_unchecked(34.7, 135.5),
                sl_netsim::NodeId(0),
                Duration::from_millis(250),
                false,
                false,
                i,
            )))
            .unwrap();
    }
    engine.deploy(passthrough_dataflow("abl", 4)).unwrap();
    engine.run_for(Duration::from_mins(5));

    let delivered = engine.monitor().sink_count("abl", "out");
    let migrations = engine
        .monitor()
        .placements
        .iter()
        .filter(|p| p.reason.contains("migration"))
        .count();
    let peak_util = engine
        .topology()
        .node_ids()
        .map(|n| {
            engine
                .loads()
                .utilization(engine.topology(), n)
                .unwrap_or(0.0)
        })
        .fold(0.0f64, f64::max);
    vec![
        format!("{policy:?}"),
        if migration { "on".into() } else { "off".into() },
        delivered.to_string(),
        engine.net_stats().total_msgs().to_string(),
        format!("{peak_util:.2}"),
        migrations.to_string(),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for policy in [
        PlacementPolicy::SourceLocal,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::Random,
    ] {
        for migration in [false, true] {
            rows.push(run(policy, migration));
        }
    }
    print_table(
        "A2 — placement policy ablation (hotspot fleet on edge0, 5 min virtual)",
        &[
            "policy",
            "migration",
            "delivered",
            "net msgs",
            "peak util",
            "migrations",
        ],
        &rows,
    );
    println!("\nExpected shape: SourceLocal without migration pins work on the weak edge");
    println!("(peak utilisation far above 1.0); enabling migration sheds the overload;");
    println!("LeastLoaded avoids the hotspot from the start at the cost of more network");
    println!("messages (tuples travel to the placed nodes).");
}
