//! E3 — Figure 2 reproduction: the Osaka scenario end to end, with a
//! trigger-threshold sweep showing the event-driven acquisition behaviour.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_fig2_scenario
//! ```

use sl_bench::print_table;
use sl_dataflow::DataflowBuilder;
use sl_dsn::SinkKind;
use sl_engine::{Engine, EngineConfig};
use sl_ops::AggFunc;
use sl_pubsub::SubscriptionFilter;
use sl_sensors::scenario::{osaka_area, osaka_fleet};
use sl_sensors::ScenarioConfig;
use sl_stt::{AttrType, Duration, Field, Schema, SchemaRef, Theme, Timestamp, Unit};

fn schema(fields: &[(&str, AttrType)]) -> SchemaRef {
    Schema::new(fields.iter().map(|(n, t)| Field::new(n, *t)).collect())
        .unwrap()
        .into_ref()
}

fn scenario_dataflow(threshold: f64) -> sl_dataflow::Dataflow {
    let theme = |t: &str| Theme::new(t).unwrap();
    DataflowBuilder::new("osaka-hot-weather")
        .source(
            "temperature",
            SubscriptionFilter::any()
                .with_theme(theme("weather/temperature"))
                .with_area(osaka_area())
                .require_unit("temperature", Unit::Celsius),
            schema(&[("temperature", AttrType::Float), ("station", AttrType::Str)]),
        )
        .gated_source(
            "rain",
            SubscriptionFilter::any().with_theme(theme("weather/rain")),
            schema(&[
                ("rain", AttrType::Float),
                ("torrential", AttrType::Bool),
                ("station", AttrType::Str),
            ]),
        )
        .gated_source(
            "tweets",
            SubscriptionFilter::any().with_theme(theme("social/tweet")),
            schema(&[("text", AttrType::Str), ("storm_related", AttrType::Bool)]),
        )
        .gated_source(
            "traffic",
            SubscriptionFilter::any().with_theme(theme("traffic")),
            schema(&[("congestion", AttrType::Float), ("road", AttrType::Str)]),
        )
        .aggregate(
            "hourly_avg",
            "temperature",
            Duration::from_hours(1),
            &[],
            AggFunc::Avg,
            Some("temperature"),
        )
        .trigger_on(
            "hot_hour",
            "hourly_avg",
            Duration::from_hours(1),
            &format!("avg_temperature > {threshold}"),
            &["rain", "tweets", "traffic"],
        )
        // Symmetric stand-down: cool hours deactivate acquisition again, so
        // the threshold genuinely modulates how much data is acquired.
        .trigger_off(
            "cool_hour",
            "hourly_avg",
            Duration::from_hours(1),
            &format!("avg_temperature <= {threshold}"),
            &["rain", "tweets", "traffic"],
        )
        .filter("torrential", "rain", "torrential = true")
        .filter("storm_tweets", "tweets", "storm_related = true")
        .filter("congested", "traffic", "congestion > 0.6")
        .sink(
            "edw",
            SinkKind::Warehouse,
            &["torrential", "storm_tweets", "congested"],
        )
        .build()
        .unwrap()
}

fn run(threshold: f64, hours: u64) -> (usize, usize, u64, usize) {
    let fleet = osaka_fleet(&ScenarioConfig::default());
    let mut engine = Engine::new(
        fleet.topology,
        EngineConfig::default(),
        Timestamp::from_civil(2016, 7, 1, 8, 0, 0),
    );
    for s in fleet.sensors {
        engine.add_sensor(s).unwrap();
    }
    engine.deploy(scenario_dataflow(threshold)).unwrap();
    let mut first_activation_hour = None;
    for h in 0..hours {
        engine.run_for(Duration::from_hours(1));
        if first_activation_hour.is_none()
            && engine.source_active("osaka-hot-weather", "rain") == Some(true)
        {
            first_activation_hour = Some(h + 1);
        }
    }
    let activations = engine
        .monitor()
        .controls
        .iter()
        .filter(|c| c.action.is_activate())
        .count();
    (
        activations,
        first_activation_hour.map(|h| h as usize).unwrap_or(0),
        engine.monitor().sink_count("osaka-hot-weather", "edw"),
        engine.warehouse().len(),
    )
}

fn main() {
    // Threshold sweep (each point is an independent 24 h simulation, so run
    // them in parallel with scoped threads).
    let thresholds = [20.0, 23.0, 25.0, 28.0, 31.0, 35.0];
    let mut results: Vec<Option<(usize, usize, u64, usize)>> = vec![None; thresholds.len()];
    std::thread::scope(|scope| {
        for (slot, threshold) in results.iter_mut().zip(thresholds) {
            scope.spawn(move || {
                *slot = Some(run(threshold, 24));
            });
        }
    });
    let mut rows = Vec::new();
    for (threshold, result) in thresholds.iter().zip(results) {
        let (activations, first_hour, sink_tuples, events) = result.expect("thread ran");
        rows.push(vec![
            format!("{threshold}"),
            activations.to_string(),
            if first_hour == 0 {
                "never".into()
            } else {
                format!("{first_hour}")
            },
            sink_tuples.to_string(),
            events.to_string(),
        ]);
    }
    print_table(
        "E3 / Figure 2 — Osaka scenario, 24 h, trigger threshold sweep",
        &[
            "threshold [°C]",
            "trigger fires",
            "first activation [h]",
            "tuples to EDW",
            "EDW events",
        ],
        &rows,
    );
    println!("\nExpected shape: lower thresholds fire earlier and more often, and load");
    println!("monotonically more data into the warehouse; extreme thresholds never fire");
    println!("and the warehouse stays empty — acquisition is genuinely event-driven.");
}
