//! E10 — overload control: bounded queues, shedding, and backpressure
//! under a saturating burst.
//!
//! Replays the same 12-sensor fleet and 3× burst schedule against the
//! unbounded engine (the baseline every loss figure is measured from) and
//! against each overflow policy on an 8-deep ingress queue, and reports
//! delivery, loss accounting, throttle activity, and the worst queue
//! depth ever observed. Results land in `BENCH_e10_overload.json`
//! (full mode only).
//!
//! ```sh
//! cargo run --release -p sl-bench --bin exp_e10_overload           # full run
//! cargo run --release -p sl-bench --bin exp_e10_overload -- --test # CI smoke
//! ```
//!
//! Both modes assert the §5g invariants benches can check cheaply:
//!
//! * every bounded run keeps its worst observed queue depth ≤ the bound;
//! * `Block` never drops a generated tuple (empty DLQ; its deficit vs. the
//!   baseline is volume the throttled sensors never produced);
//! * every shed run's warehouse shortfall vs. the baseline exactly equals
//!   its `DropReason::Shed` dead-letter count — loss is *accounted*, not
//!   silent.

use sl_dataflow::DataflowBuilder;
use sl_dsn::SinkKind;
use sl_engine::{Engine, EngineConfig, OverflowPolicy};
use sl_faults::FaultPlan;
use sl_netsim::{NodeId, NodeSpec, Topology};
use sl_pubsub::SubscriptionFilter;
use sl_sensors::physical::TemperatureSensor;
use sl_stt::{AttrType, Duration, Field, GeoPoint, Schema, SchemaRef, SensorId, Theme, Timestamp};
use std::fmt::Write as _;
use std::time::Instant;

const CAP: usize = 8;

struct Sample {
    wall_s: f64,
    delivered: u64,
    shed: u64,
    throttled: u64,
    max_depth: u64,
}

fn temp_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("temperature", AttrType::Float),
        Field::new("station", AttrType::Str),
    ])
    .unwrap()
    .into_ref()
}

/// Pass-all filter into a warehouse sink: one up path, so the only
/// possible loss is what the admission layer sheds.
fn flow() -> sl_dataflow::Dataflow {
    DataflowBuilder::new("e10")
        .source(
            "temp",
            SubscriptionFilter::any().with_theme(Theme::new("weather/temperature").unwrap()),
            temp_schema(),
        )
        .filter("all", "temp", "temperature > -100")
        .sink("edw", SinkKind::Warehouse, &["all"])
        .build()
        .unwrap()
}

/// A weak sensor host feeding two capable hubs; `sensors` aligned 1 Hz
/// sensors land their tuples simultaneously, so every tick floods the
/// filter's ingress queue.
fn build(sensors: u64, policy: Option<OverflowPolicy>) -> Engine {
    build_with_workers(sensors, policy, 1)
}

fn build_with_workers(sensors: u64, policy: Option<OverflowPolicy>, workers: usize) -> Engine {
    let mut t = Topology::new();
    let a = t.add_node(NodeSpec::edge("sensor-host", 10.0));
    let b = t.add_node(NodeSpec::edge("hub-b", 100_000.0));
    let c = t.add_node(NodeSpec::edge("hub-c", 90_000.0));
    t.add_link(a, b, Duration::from_millis(1), 10_000_000)
        .unwrap();
    t.add_link(a, c, Duration::from_millis(1), 10_000_000)
        .unwrap();
    t.add_link(b, c, Duration::from_millis(1), 10_000_000)
        .unwrap();
    let mut cfg = EngineConfig {
        migration_enabled: false,
        seed: 11,
        parallelism: workers,
        ..Default::default()
    };
    if let Some(policy) = policy {
        cfg.overload.queue_capacity = Some(CAP);
        cfg.overload.policy = policy;
    }
    let mut e = Engine::new(t, cfg, Timestamp::from_civil(2016, 7, 1, 12, 0, 0));
    for id in 1..=sensors {
        e.add_sensor(Box::new(TemperatureSensor::new(
            SensorId(id),
            &format!("t{id}"),
            GeoPoint::new_unchecked(34.7, 135.5),
            NodeId(0),
            Duration::from_secs(1),
            false,
            false,
            id,
        )))
        .unwrap();
    }
    e.deploy(flow()).unwrap();
    e
}

/// Triple every sensor's rate between t+10 s and t+40 s.
fn burst_plan(sensors: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for id in 1..=sensors {
        plan = plan.burst(id, Duration::from_secs(10), Duration::from_secs(30), 3);
    }
    plan
}

/// One run: walk the horizon in 500 ms absolute-deadline steps, tracking
/// the worst ingress depth any queue ever reached.
fn run_once(sensors: u64, policy: Option<OverflowPolicy>, virtual_secs: u64) -> Sample {
    let mut e = build(sensors, policy);
    e.install_fault_plan(&burst_plan(sensors));
    let t0v = e.now();
    let t0 = Instant::now();
    let mut max_depth = 0u64;
    for tick in 1..=(virtual_secs * 2) {
        e.run_until(t0v + Duration::from_millis(tick * 500));
        for (_, depth) in e.ingress().depths() {
            max_depth = max_depth.max(depth);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let snap = e.metrics_snapshot();
    Sample {
        wall_s,
        delivered: e.monitor().sink_count("e10", "edw"),
        shed: e.dlq().shed_total(),
        throttled: snap
            .counters
            .get("engine/backpressure/throttled")
            .copied()
            .unwrap_or(0),
        max_depth,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (sensors, virtual_secs) = if smoke { (12u64, 60u64) } else { (12, 300) };
    println!(
        "E10 overload control — {sensors} aligned 1 Hz sensors, 3x burst at \
         10..40 s, queue bound {CAP}, {virtual_secs} virtual s"
    );

    let configs: [(&str, Option<OverflowPolicy>); 5] = [
        ("unbounded", None),
        ("block", Some(OverflowPolicy::Block)),
        ("shed-oldest", Some(OverflowPolicy::ShedOldest)),
        ("shed-newest", Some(OverflowPolicy::ShedNewest)),
        ("sample(0.5)", Some(OverflowPolicy::Sample(0.5))),
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut baseline = 0u64;
    for (label, policy) in configs {
        let s = run_once(sensors, policy, virtual_secs);
        match policy {
            None => {
                baseline = s.delivered;
                assert!(baseline > 100, "baseline must be busy ({baseline})");
            }
            Some(OverflowPolicy::Block) => {
                assert!(s.max_depth <= CAP as u64, "block breached the bound");
                // Block never loses a *generated* tuple: the deficit vs. the
                // unbounded baseline is volume the throttled sensors never
                // produced, not data dropped in flight — the DLQ stays empty.
                assert_eq!(s.shed, 0, "block mode must not shed");
                assert!(s.throttled > 0, "saturation must visibly throttle");
            }
            Some(_) => {
                assert!(s.max_depth <= CAP as u64, "{label} breached the bound");
                assert_eq!(
                    baseline - s.delivered,
                    s.shed,
                    "{label}: shortfall must equal the shed dead letters"
                );
            }
        }
        // Deficit vs. the unbounded baseline: for shed policies this is
        // dropped data (and must equal `shed`); for Block it is volume the
        // throttled sensors never generated.
        let deficit_pct = if baseline > 0 {
            100.0 * (baseline.saturating_sub(s.delivered)) as f64 / baseline as f64
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            s.delivered.to_string(),
            s.shed.to_string(),
            format!("{deficit_pct:.1}%"),
            s.throttled.to_string(),
            s.max_depth.to_string(),
            format!("{:.3}", s.wall_s),
        ]);
        let mut j = String::new();
        let _ = write!(
            j,
            "    {{\"label\": \"{label}\", \"delivered\": {}, \"shed\": {}, \
             \"deficit_pct\": {deficit_pct:.2}, \"throttled\": {}, \"max_depth\": {}, \
             \"wall_s\": {:.6}}}",
            s.delivered, s.shed, s.throttled, s.max_depth, s.wall_s
        );
        json_rows.push(j);
    }

    // Sequential-vs-parallel digest equality under burst load: the
    // admission layer (chokepoint, shed RNG, credit protocol) must not
    // break the sl-par determinism contract. Every observable output of
    // a 4-worker run must be byte-identical to the sequential run.
    for policy in [OverflowPolicy::Block, OverflowPolicy::ShedOldest] {
        let digest = |workers: usize| {
            let mut e = build_with_workers(sensors, Some(policy), workers);
            e.install_fault_plan(&burst_plan(sensors));
            e.run_for(Duration::from_secs(60));
            (
                e.warehouse().iter().cloned().collect::<Vec<_>>(),
                e.monitor().sink_count("e10", "edw"),
                e.dlq()
                    .by_reason()
                    .map(|(r, n)| (r.to_string(), n))
                    .collect::<Vec<_>>(),
            )
        };
        assert!(
            digest(1) == digest(4),
            "{policy:?}: parallel digest diverged from sequential under burst"
        );
    }
    println!("\nseq-vs-parallel digests identical under burst (Block, ShedOldest)");

    sl_bench::print_table(
        "E10 — overload control under a 3x burst (bounds + accounting asserted)",
        &[
            "policy",
            "delivered",
            "shed",
            "deficit",
            "throttled",
            "max depth",
            "wall [s]",
        ],
        &rows,
    );

    if smoke {
        println!(
            "\nE10 smoke: bounds held, block lost nothing, every shed run's \
             shortfall matched its DLQ"
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"E10\",\n  \"sensors\": {sensors},\n  \
         \"queue_capacity\": {CAP},\n  \"virtual_seconds\": {virtual_secs},\n  \
         \"baseline_delivered\": {baseline},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    sl_bench::write_bench_json("BENCH_e10_overload.json", &json, smoke);
}
