//! # sl-bench — workloads and fixtures shared by the benchmark suite
//!
//! One bench target / experiment binary exists per paper artifact (see
//! `DESIGN.md` §5 and `EXPERIMENTS.md`):
//!
//! | Experiment | Artifact | Target |
//! |---|---|---|
//! | E1 | Table 1   | `benches/table1_operations.rs`, `bin/exp_table1.rs` |
//! | E2 | Figure 1  | `benches/fig1_deployment.rs`, `bin/exp_fig1.rs` |
//! | E3 | Figure 2  | `bin/exp_fig2_scenario.rs` |
//! | E4 | Figure 3  | `benches/fig3_monitoring.rs`, `bin/exp_fig3_monitor.rs` |
//! | E5 | Demo P1   | `benches/p1_discovery.rs`, `bin/exp_p1.rs` |
//! | E6 | Demo P2   | `benches/p2_translate_store.rs`, `bin/exp_p2.rs` |
//! | E7 | Demo P3   | `bin/exp_p3.rs` |
//! | A1 | ablation  | `benches/ablation_validation.rs` |
//! | A2 | ablation  | `bin/exp_ablation_placement.rs` |
//! | A3 | ablation  | `benches/ablation_windows.rs` |

pub mod compare;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sl_dataflow::{Dataflow, DataflowBuilder};
use sl_dsn::SinkKind;
use sl_netsim::NodeId;
use sl_pubsub::{SensorAdvertisement, SensorKind, SubscriptionFilter};
use sl_stt::{
    AttrType, Duration, Field, GeoPoint, Schema, SchemaRef, SensorId, SttMeta, Theme, Timestamp,
    Tuple, Value,
};

/// The standard weather-tuple schema used by operator microbenchmarks.
pub fn bench_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("temperature", AttrType::Float),
        Field::new("humidity", AttrType::Float),
        Field::new("station", AttrType::Str),
        Field::new("seq", AttrType::Int),
    ])
    .unwrap()
    .into_ref()
}

/// Deterministic workload: `n` tuples at 1 tuple/sec of virtual time,
/// temperatures uniform in [10, 35), a few station names.
pub fn make_tuples(n: usize, seed: u64) -> Vec<Tuple> {
    let schema = bench_schema();
    let theme = Theme::new("weather/temperature").unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let station = format!("st{}", i % 8);
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Float(rng.gen_range(10.0..35.0)),
                    Value::Float(rng.gen_range(20.0..95.0)),
                    Value::Str(station),
                    Value::Int(i as i64),
                ],
                SttMeta::new(
                    Timestamp::from_secs(i as i64),
                    GeoPoint::new_unchecked(
                        34.5 + rng.gen::<f64>() * 0.4,
                        135.3 + rng.gen::<f64>() * 0.4,
                    ),
                    theme.clone(),
                    SensorId(i as u64 % 16),
                ),
            )
            .unwrap()
        })
        .collect()
}

/// A synthetic advertisement population for discovery benchmarks: themes,
/// kinds and positions spread over Japan.
pub fn make_ads(n: usize, seed: u64) -> Vec<SensorAdvertisement> {
    let mut rng = StdRng::seed_from_u64(seed);
    let themes = [
        "weather/temperature",
        "weather/rain",
        "weather/wind",
        "social/tweet",
        "traffic/congestion",
        "water/level",
    ];
    (0..n)
        .map(|i| {
            let theme = themes[rng.gen_range(0..themes.len())];
            SensorAdvertisement {
                id: SensorId(i as u64),
                name: format!("sensor-{i}"),
                kind: if theme.starts_with("social") || theme.starts_with("traffic") {
                    SensorKind::Social
                } else {
                    SensorKind::Physical
                },
                schema: bench_schema(),
                theme: Theme::new(theme).unwrap(),
                period: Duration::from_millis(rng.gen_range(100..60_000)),
                location: Some(GeoPoint::new_unchecked(
                    rng.gen_range(31.0..43.0),
                    rng.gen_range(130.0..143.0),
                )),
                node: NodeId(rng.gen_range(0..12)),
            }
        })
        .collect()
}

/// A linear dataflow of `ops` alternating operators over the bench schema —
/// the deployment-cost workload (E2).
pub fn linear_dataflow(name: &str, ops: usize) -> Dataflow {
    let mut b = DataflowBuilder::new(name).source(
        "src",
        SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap()),
        bench_schema(),
    );
    let mut prev = "src".to_string();
    for i in 0..ops {
        let name = format!("f{i}");
        // Alternate operator kinds so the deployment exercises the mix.
        b = match i % 4 {
            0 => b.filter(&name, &prev, "temperature > 0"),
            1 => b.transform(&name, &prev, &[("humidity", "humidity * 1.0")]),
            2 => b.virtual_property(&name, &prev, &format!("v{i}"), "temperature + humidity"),
            _ => b.filter(&name, &prev, "seq >= 0"),
        };
        prev = name;
    }
    b.sink("out", SinkKind::Visualization, &[&prev])
        .build()
        .expect("bench dataflow valid")
}

/// A linear dataflow whose source schema matches the plain
/// temperature/station sensors (so deployed instances actually bind and
/// carry traffic — unlike [`linear_dataflow`], whose wider bench schema is
/// for deployment-cost measurement only).
pub fn passthrough_dataflow(name: &str, ops: usize) -> Dataflow {
    let schema: SchemaRef = Schema::new(vec![
        Field::new("temperature", AttrType::Float),
        Field::new("station", AttrType::Str),
    ])
    .unwrap()
    .into_ref();
    let mut b = DataflowBuilder::new(name).source(
        "src",
        SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap()),
        schema,
    );
    let mut prev = "src".to_string();
    for i in 0..ops {
        let name = format!("f{i}");
        b = match i % 3 {
            0 => b.filter(&name, &prev, "temperature > 0"),
            1 => b.transform(&name, &prev, &[("temperature", "temperature * 1.0")]),
            _ => b.filter(&name, &prev, "temperature < 1000"),
        };
        prev = name;
    }
    b.sink("out", SinkKind::Visualization, &[&prev])
        .build()
        .expect("bench dataflow valid")
}

/// Render an aligned text table (the experiment binaries' output format).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$} | ", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Throughput in tuples/sec given a wall-clock duration for `n` tuples.
pub fn tuples_per_sec(n: usize, wall: std::time::Duration) -> f64 {
    n as f64 / wall.as_secs_f64().max(1e-12)
}

/// Persist an experiment's JSON results.
///
/// Full runs write `file` into the working directory (the committed
/// `BENCH_*.json` baselines at the repo root). Smoke runs (`--test`) write
/// into `$BENCH_JSON_DIR` when it is set — `scripts/check.sh` points it at
/// a scratch directory so `bench-compare` can diff the fresh smoke numbers
/// against the committed baselines — and skip the write otherwise.
pub fn write_bench_json(file: &str, json: &str, smoke: bool) {
    let path = if smoke {
        match std::env::var_os("BENCH_JSON_DIR") {
            Some(dir) => {
                let dir = std::path::PathBuf::from(dir);
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("warning: cannot create {}: {e}", dir.display());
                    return;
                }
                dir.join(file)
            }
            None => return,
        }
    } else {
        std::path::PathBuf::from(file)
    };
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = make_tuples(100, 1);
        let b = make_tuples(100, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let ads = make_ads(50, 2);
        assert_eq!(ads.len(), 50);
        assert_eq!(ads[0].name, make_ads(50, 2)[0].name);
    }

    #[test]
    fn linear_dataflow_validates() {
        for ops in [1, 5, 20] {
            let df = linear_dataflow("bench", ops);
            assert!(sl_dataflow::validate(&df).is_ok(), "ops={ops}");
            assert_eq!(df.operators().count(), ops);
        }
    }

    #[test]
    fn throughput_math() {
        let t = tuples_per_sec(1000, std::time::Duration::from_millis(500));
        assert!((t - 2000.0).abs() < 1.0);
    }
}
