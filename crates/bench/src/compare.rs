//! Regression comparison for the committed `BENCH_*.json` baselines.
//!
//! CI cannot reproduce the absolute wall-clock numbers of the machine
//! that produced a committed baseline, so `bench-compare` diffs only the
//! *scale-invariant ratio* metrics each experiment publishes — speedups
//! and delivery ratios — which hold across host speeds and across the
//! smoke/full scale split (the smoke sweeps include at least one scale
//! from the full sweep, so rows pair up by key):
//!
//! | file | row key | metric |
//! |---|---|---|
//! | `BENCH_e9_parallel.json` | `label` | `speedup_vs_seq` |
//! | `BENCH_e10_overload.json` | `label` | `delivered / baseline_delivered` |
//! | `BENCH_e11_cq.json` | `subscribers` | `speedup` |
//! | `BENCH_e12_compaction.json` | `segments` | `speedup` |
//!
//! A pair regresses when the fresh value drops below
//! `baseline × (1 − tolerance)`; improvements never fail. The default
//! tolerance of 0.5 is deliberately loose — it catches a collapsed
//! speedup (a 30x becoming 3x), not jitter. Override it with the
//! `BENCH_COMPARE_TOLERANCE` environment variable; to *waive* a genuine
//! change, re-run the full experiment binary and commit the regenerated
//! baseline (see `EXPERIMENTS.md`).
//!
//! The extraction is a hand-rolled scan, not a JSON parser: every
//! experiment binary writes one result object per line, and this module
//! only ever reads files that those binaries wrote.

/// One baseline/fresh pair of a ratio metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Pair {
    /// Row key (a label or a numeric scale rendered as text).
    pub key: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
}

/// The outcome of comparing one experiment file.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The baseline file name, e.g. `BENCH_e12_compaction.json`.
    pub file: String,
    /// Human name of the compared metric.
    pub metric: String,
    /// Every row key present in both files.
    pub pairs: Vec<Pair>,
    /// Messages for pairs that fell below the tolerance band.
    pub regressions: Vec<String>,
}

/// The experiment files `bench-compare` knows how to diff.
pub const BASELINE_FILES: [&str; 4] = [
    "BENCH_e9_parallel.json",
    "BENCH_e10_overload.json",
    "BENCH_e11_cq.json",
    "BENCH_e12_compaction.json",
];

/// The comparison tolerance: `BENCH_COMPARE_TOLERANCE` when set and
/// parseable, else 0.5.
pub fn tolerance_from_env() -> f64 {
    std::env::var("BENCH_COMPARE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.5)
}

/// Compare one experiment's baseline and fresh JSON texts. `Err` means
/// the file is not one of [`BASELINE_FILES`] or the texts are not in the
/// shape its experiment binary writes.
/// Extracts one ratio metric from a result row (given the whole doc for
/// file-level fields like `baseline_delivered`).
type MetricFn = fn(&str, &str) -> Option<f64>;

pub fn compare(
    file: &str,
    baseline: &str,
    fresh: &str,
    tolerance: f64,
) -> Result<Comparison, String> {
    let (key_field, metric): (&str, MetricFn) = match file {
        "BENCH_e9_parallel.json" => ("label", |row, _| field_num(row, "speedup_vs_seq")),
        "BENCH_e10_overload.json" => ("label", |row, doc| {
            let delivered = field_num(row, "delivered")?;
            let base = field_num(doc, "baseline_delivered")?;
            (base > 0.0).then(|| delivered / base)
        }),
        "BENCH_e11_cq.json" => ("subscribers", |row, _| field_num(row, "speedup")),
        "BENCH_e12_compaction.json" => ("segments", |row, _| field_num(row, "speedup")),
        other => return Err(format!("{other}: no comparison spec for this file")),
    };
    let metric_name = match file {
        "BENCH_e10_overload.json" => "delivered/baseline_delivered",
        "BENCH_e9_parallel.json" => "speedup_vs_seq",
        _ => "speedup",
    };

    let base_rows =
        extract(baseline, key_field, metric).map_err(|e| format!("{file} (baseline): {e}"))?;
    let fresh_rows =
        extract(fresh, key_field, metric).map_err(|e| format!("{file} (fresh): {e}"))?;

    let mut pairs = Vec::new();
    let mut regressions = Vec::new();
    for (key, base_val) in &base_rows {
        let Some((_, fresh_val)) = fresh_rows.iter().find(|(k, _)| k == key) else {
            continue; // smoke runs cover a subset of the full sweep
        };
        pairs.push(Pair {
            key: key.clone(),
            baseline: *base_val,
            fresh: *fresh_val,
        });
        let floor = base_val * (1.0 - tolerance);
        if *fresh_val < floor {
            regressions.push(format!(
                "{file}: {key_field}={key}: {metric_name} regressed to {fresh_val:.2} \
                 (baseline {base_val:.2}, floor {floor:.2} at tolerance {tolerance})"
            ));
        }
    }
    if pairs.is_empty() {
        return Err(format!(
            "{file}: no common `{key_field}` rows between baseline and fresh run"
        ));
    }
    Ok(Comparison {
        file: file.to_string(),
        metric: metric_name.to_string(),
        pairs,
        regressions,
    })
}

/// `(key, metric)` per result row, keys kept in file order.
fn extract(
    doc: &str,
    key_field: &str,
    metric: fn(&str, &str) -> Option<f64>,
) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for row in result_rows(doc) {
        let key = field_text(row, key_field)
            .ok_or_else(|| format!("result row without `{key_field}`: {row}"))?;
        let value =
            metric(row, doc).ok_or_else(|| format!("result row without the metric: {row}"))?;
        out.push((key, value));
    }
    if out.is_empty() {
        return Err("no result rows found".to_string());
    }
    Ok(out)
}

/// The lines of the `"results": [...]` array that hold one object each.
fn result_rows(doc: &str) -> impl Iterator<Item = &str> {
    doc.lines()
        .skip_while(|l| !l.contains("\"results\""))
        .skip(1)
        .take_while(|l| !l.trim_start().starts_with(']'))
        .map(|l| l.trim().trim_end_matches(','))
        .filter(|l| l.starts_with('{'))
}

/// The raw text of `"name": <value>` in `obj` up to the next `,` or `}`.
fn field_raw<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// A numeric field of a one-line JSON object.
fn field_num(obj: &str, name: &str) -> Option<f64> {
    field_raw(obj, name)?.parse::<f64>().ok()
}

/// A field rendered as comparison-key text: strings lose their quotes,
/// numbers stay as written.
fn field_text(obj: &str, name: &str) -> Option<String> {
    Some(field_raw(obj, name)?.trim_matches('"').to_string())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely
    use super::*;

    fn e12_doc(speedup_at_107: f64) -> String {
        format!(
            "{{\n  \"experiment\": \"E12\",\n  \"results\": [\n    \
             {{\"segments\": 27, \"uncompacted_s\": 0.01, \"compacted_s\": 0.01, \"speedup\": 1.10}},\n    \
             {{\"segments\": 107, \"uncompacted_s\": 0.30, \"compacted_s\": 0.01, \"speedup\": {speedup_at_107:.2}}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn equal_runs_are_clean() {
        let doc = e12_doc(30.0);
        let c = compare("BENCH_e12_compaction.json", &doc, &doc, 0.5).unwrap();
        assert_eq!(c.pairs.len(), 2);
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
    }

    #[test]
    fn injected_regression_is_caught() {
        // Negative test: a collapsed speedup (30x -> 1x) must fail even at
        // the loose default tolerance.
        let base = e12_doc(30.0);
        let fresh = e12_doc(1.0);
        let c = compare("BENCH_e12_compaction.json", &base, &fresh, 0.5).unwrap();
        assert_eq!(c.regressions.len(), 1, "{:?}", c.regressions);
        assert!(
            c.regressions[0].contains("segments=107"),
            "{}",
            c.regressions[0]
        );
        // Improvements never fail.
        let c = compare("BENCH_e12_compaction.json", &fresh, &base, 0.5).unwrap();
        assert!(c.regressions.is_empty());
    }

    #[test]
    fn smoke_subset_pairs_by_key() {
        let base = e12_doc(30.0);
        // A smoke run that measured only the 107-segment scale.
        let fresh = "{\n  \"results\": [\n    {\"segments\": 107, \"speedup\": 28.00}\n  ]\n}\n";
        let c = compare("BENCH_e12_compaction.json", &base, fresh, 0.5).unwrap();
        assert_eq!(c.pairs.len(), 1);
        assert_eq!(c.pairs[0].key, "107");
        assert!(c.regressions.is_empty());
    }

    #[test]
    fn e10_uses_the_delivery_ratio() {
        let doc = |delivered: u64| {
            format!(
                "{{\n  \"experiment\": \"E10\",\n  \"baseline_delivered\": 4320,\n  \"results\": [\n    \
                 {{\"label\": \"block\", \"delivered\": {delivered}, \"shed\": 0}}\n  ]\n}}\n"
            )
        };
        let c = compare("BENCH_e10_overload.json", &doc(2880), &doc(2880), 0.5).unwrap();
        assert!((c.pairs[0].baseline - 2880.0 / 4320.0).abs() < 1e-9);
        assert!(c.regressions.is_empty());
        let c = compare("BENCH_e10_overload.json", &doc(2880), &doc(100), 0.5).unwrap();
        assert_eq!(c.regressions.len(), 1);
    }

    #[test]
    fn malformed_and_disjoint_inputs_error() {
        assert!(compare("BENCH_unknown.json", "{}", "{}", 0.5).is_err());
        assert!(compare("BENCH_e12_compaction.json", "not json", "also not", 0.5).is_err());
        let a = "{\n  \"results\": [\n    {\"segments\": 1, \"speedup\": 2.0}\n  ]\n}\n";
        let b = "{\n  \"results\": [\n    {\"segments\": 9, \"speedup\": 2.0}\n  ]\n}\n";
        assert!(compare("BENCH_e12_compaction.json", a, b, 0.5).is_err());
    }
}
