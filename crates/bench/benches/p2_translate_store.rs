//! E6 — DSN translation round-trip and Event Data Warehouse throughput,
//! including the durable backend under each fsync policy (E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sl_bench::{linear_dataflow, make_tuples};
use sl_dsn::{compile, parse_document, print_document};
use sl_durable::{DurableConfig, DurableWarehouse, FsyncPolicy, TempDir};
use sl_stt::{SpatialGranularity, TemporalGranularity, Theme, TimeInterval, Timestamp};
use sl_warehouse::{EventQuery, EventWarehouse};

fn bench_dsn(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2/dsn");
    for ops in [3usize, 20] {
        let df = linear_dataflow("p2", ops);
        let doc = sl_dataflow::to_dsn(&df);
        let text = print_document(&doc);
        group.bench_function(BenchmarkId::new("print", ops), |b| {
            b.iter(|| print_document(&doc))
        });
        group.bench_function(BenchmarkId::new("parse", ops), |b| {
            b.iter(|| parse_document(&text).unwrap())
        });
        group.bench_function(BenchmarkId::new("compile", ops), |b| {
            b.iter(|| compile(&doc).unwrap())
        });
    }
    group.finish();
}

fn bench_warehouse_ingest(c: &mut Criterion) {
    let tuples = make_tuples(5_000, 11);
    let mut group = c.benchmark_group("p2/warehouse_ingest");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("ingest_5k_tuples", |b| {
        b.iter_batched(
            EventWarehouse::with_defaults,
            |mut w| {
                for t in &tuples {
                    w.ingest_tuple(t, TemporalGranularity::Minute, SpatialGranularity::grid(8));
                }
                w.len()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The same ingest workload against the crash-safe warehouse, across the
/// fsync spectrum: `OnSeal` (crash window = the open segment), `EveryN(64)`
/// (bounded tail loss) and `Always` (no acked loss, every append pays a
/// sync). The in-memory `ingest_5k_tuples` above is the zero-durability
/// baseline.
fn bench_warehouse_ingest_durable(c: &mut Criterion) {
    let tuples = make_tuples(5_000, 11);
    let mut group = c.benchmark_group("p2/warehouse_ingest_durable");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    // `Always` fsyncs per append: 5k tuples is minutes of wall clock at
    // full size, so that policy runs a 1/10 slice (same throughput unit).
    for (label, policy, n) in [
        ("fsync_on_seal", FsyncPolicy::OnSeal, 5_000usize),
        ("fsync_every_64", FsyncPolicy::EveryN(64), 5_000),
        ("fsync_always", FsyncPolicy::Always, 500),
    ] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new(label, n), |b| {
            b.iter_batched(
                || TempDir::new("bench-ingest").unwrap(),
                |dir| {
                    let config = DurableConfig::at(dir.path()).with_fsync(policy);
                    let mut w = DurableWarehouse::open(config).unwrap();
                    for t in tuples.iter().take(n) {
                        w.ingest_tuple(t, TemporalGranularity::Minute, SpatialGranularity::grid(8))
                            .unwrap();
                    }
                    w.hot().len()
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_warehouse_query(c: &mut Criterion) {
    let tuples = make_tuples(50_000, 11);
    let mut w = EventWarehouse::with_defaults();
    for t in &tuples {
        w.ingest_tuple(t, TemporalGranularity::Minute, SpatialGranularity::grid(8));
    }
    let range = TimeInterval::new(Timestamp::from_secs(20_000), Timestamp::from_secs(21_000));
    let mut group = c.benchmark_group("p2/warehouse_query");
    group.bench_function("time_slice_indexed", |b| {
        b.iter(|| w.query(&EventQuery::all().in_time(range)).len())
    });
    group.bench_function("time_slice_scan", |b| {
        b.iter(|| w.query_scan(&EventQuery::all().in_time(range)).len())
    });
    let theme = Theme::new("weather/temperature/temperature").unwrap();
    group.bench_function("theme_and_time", |b| {
        b.iter(|| {
            w.query(&EventQuery::all().in_time(range).with_theme(theme.clone()))
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dsn,
    bench_warehouse_ingest,
    bench_warehouse_ingest_durable,
    bench_warehouse_query
);
criterion_main!(benches);
