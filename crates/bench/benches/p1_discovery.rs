//! E5 — pub/sub benchmarks: discovery against fleet size, broker matching,
//! and overlay routing with/without covering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sl_bench::make_ads;
use sl_pubsub::{Broker, BrokerId, BrokerOverlay, SensorRegistry, SubscriptionFilter};
use sl_stt::Theme;

fn bench_discover(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1/discover");
    let weather = SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap());
    for fleet in [100usize, 1_000, 10_000] {
        let mut registry = SensorRegistry::new();
        for ad in make_ads(fleet, 5) {
            registry.publish(ad).unwrap();
        }
        group.throughput(Throughput::Elements(fleet as u64));
        group.bench_function(BenchmarkId::new("theme_filter", fleet), |b| {
            b.iter(|| registry.discover(&weather).count())
        });
    }
    group.finish();
}

fn bench_broker_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1/broker_publish");
    for subs in [10usize, 100, 1_000] {
        group.bench_function(BenchmarkId::new("subscriptions", subs), |b| {
            b.iter_batched(
                || {
                    let mut broker = Broker::new();
                    let themes = ["weather", "weather/rain", "social", "traffic", "water"];
                    for i in 0..subs {
                        broker.subscribe(
                            SubscriptionFilter::any()
                                .with_theme(Theme::new(themes[i % themes.len()]).unwrap()),
                        );
                    }
                    (broker, make_ads(100, 9))
                },
                |(mut broker, ads)| {
                    let mut notified = 0usize;
                    for ad in ads {
                        notified += broker.publish(ad).unwrap().len();
                    }
                    notified
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_overlay_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1/overlay");
    for covering in [true, false] {
        let label = if covering {
            "with_covering"
        } else {
            "no_covering"
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    // A 16-broker line with many overlapping subscriptions at
                    // one end.
                    let mut o = BrokerOverlay::new(16);
                    o.set_covering(covering);
                    for i in 0..15u32 {
                        o.link(BrokerId(i), BrokerId(i + 1)).unwrap();
                    }
                    for _ in 0..8 {
                        o.subscribe(
                            BrokerId(15),
                            SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap()),
                        )
                        .unwrap();
                        o.subscribe(
                            BrokerId(15),
                            SubscriptionFilter::any()
                                .with_theme(Theme::new("weather/rain").unwrap()),
                        )
                        .unwrap();
                    }
                    (o, make_ads(64, 3))
                },
                |(o, ads)| {
                    let mut delivered = 0usize;
                    for ad in &ads {
                        delivered += o.publish(BrokerId(0), ad).unwrap().0.len();
                    }
                    delivered
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_discover,
    bench_broker_publish,
    bench_overlay_routing
);
criterion_main!(benches);
