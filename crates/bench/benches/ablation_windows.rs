//! A3 — blocking-operator cache ablation: ring-buffer vs rescan eviction in
//! sliding windows, across window spans and tuple rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sl_bench::make_tuples;
use sl_ops::window::{EvictionStrategy, SlidingWindow, TumblingCache};
use sl_stt::{Duration, Timestamp};

fn bench_sliding(c: &mut Criterion) {
    let n = 20_000;
    let tuples = make_tuples(n, 42); // stamped 1/sec
    let mut group = c.benchmark_group("a3/sliding_window");
    group.throughput(Throughput::Elements(n as u64));
    for span_s in [10u64, 120, 1_800] {
        for strategy in [EvictionStrategy::RingBuffer, EvictionStrategy::Rescan] {
            let label = match strategy {
                EvictionStrategy::RingBuffer => "ring",
                EvictionStrategy::Rescan => "rescan",
            };
            group.bench_function(BenchmarkId::new(&format!("span{span_s}s"), label), |b| {
                b.iter_batched(
                    || SlidingWindow::new(Duration::from_secs(span_s), strategy),
                    |mut w| {
                        for t in &tuples {
                            let now = t.meta.timestamp;
                            w.push(t.clone(), now);
                        }
                        w.len()
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_tumbling(c: &mut Criterion) {
    let n = 20_000;
    let tuples = make_tuples(n, 42);
    let mut group = c.benchmark_group("a3/tumbling_cache");
    group.throughput(Throughput::Elements(n as u64));
    for drain_every in [100usize, 1_000, 10_000] {
        group.bench_function(BenchmarkId::new("drain_every", drain_every), |b| {
            b.iter_batched(
                TumblingCache::new,
                |mut cache| {
                    let mut drained = 0usize;
                    for (i, t) in tuples.iter().enumerate() {
                        cache.push(t.clone());
                        if i % drain_every == drain_every - 1 {
                            drained += cache.drain().len();
                        }
                    }
                    drained + cache.len()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_eviction_only(c: &mut Criterion) {
    // Pure eviction pressure: a full window asked to evict everything.
    let n = 10_000;
    let tuples = make_tuples(n, 7);
    let mut group = c.benchmark_group("a3/bulk_evict");
    for strategy in [EvictionStrategy::RingBuffer, EvictionStrategy::Rescan] {
        let label = match strategy {
            EvictionStrategy::RingBuffer => "ring",
            EvictionStrategy::Rescan => "rescan",
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut w = SlidingWindow::new(Duration::from_secs(n as u64), strategy);
                    for t in &tuples {
                        w.push(t.clone(), t.meta.timestamp);
                    }
                    w
                },
                |mut w| {
                    w.evict(Timestamp::from_secs(10 * n as i64));
                    w.len()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sliding, bench_tumbling, bench_eviction_only);
criterion_main!(benches);
