//! E2 — deployment pipeline cost: dataflow → DSN → SCN → network
//! configuration, across topology and dataflow sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl_bench::linear_dataflow;
use sl_engine::{Engine, EngineConfig};
use sl_netsim::Topology;
use sl_stt::Timestamp;

fn start() -> Timestamp {
    Timestamp::from_civil(2016, 7, 1, 8, 0, 0)
}

fn bench_deploy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/deploy");
    for nodes in [8usize, 32, 128] {
        let topo = Topology::random(nodes, nodes / 2, 7);
        for ops in [3usize, 20] {
            group.bench_function(
                BenchmarkId::new(&format!("nodes{nodes}"), format!("ops{ops}")),
                |b| {
                    b.iter_batched(
                        || {
                            (
                                Engine::new(topo.clone(), EngineConfig::default(), start()),
                                linear_dataflow("bench", ops),
                            )
                        },
                        |(mut engine, df)| engine.deploy(df).unwrap(),
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_validate_translate_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/pipeline_stages");
    let df = linear_dataflow("bench", 20);
    group.bench_function("validate", |b| {
        b.iter(|| sl_dataflow::validate(&df).unwrap())
    });
    group.bench_function("translate", |b| b.iter(|| sl_dataflow::to_dsn(&df)));
    let doc = sl_dataflow::to_dsn(&df);
    group.bench_function("compile", |b| b.iter(|| sl_dsn::compile(&doc).unwrap()));
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/routing");
    for nodes in [16usize, 64, 256] {
        let topo = Topology::random(nodes, nodes, 3);
        group.bench_function(BenchmarkId::new("dijkstra_all_dest", nodes), |b| {
            b.iter(|| sl_netsim::RoutingTable::compute(&topo, sl_netsim::NodeId(0)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_deploy,
    bench_validate_translate_compile,
    bench_routing
);
criterion_main!(benches);
