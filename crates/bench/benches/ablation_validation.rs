//! A1 — validation-pass ablation: what the "sound translation" checks cost
//! as dataflows grow, and how quickly invalid flows are rejected.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl_bench::{bench_schema, linear_dataflow};
use sl_dataflow::{validate, DataflowBuilder};
use sl_dsn::SinkKind;
use sl_pubsub::SubscriptionFilter;

fn bench_validate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1/validate");
    for ops in [2usize, 8, 32, 64] {
        let df = linear_dataflow("a1", ops);
        group.bench_function(BenchmarkId::new("valid_linear", ops), |b| {
            b.iter(|| validate(&df).unwrap())
        });
    }
    group.finish();
}

fn bench_reject_fast(c: &mut Criterion) {
    // Rejection cost: the bad node sits at the END of a long pipeline, the
    // worst case for schema propagation.
    let mut group = c.benchmark_group("a1/reject");
    for ops in [2usize, 32] {
        let mut b =
            DataflowBuilder::new("bad").source("src", SubscriptionFilter::any(), bench_schema());
        let mut prev = "src".to_string();
        for i in 0..ops {
            let name = format!("f{i}");
            b = b.filter(&name, &prev, "temperature > 0");
            prev = name;
        }
        let df = b
            .filter("broken", &prev, "no_such_attribute > 1")
            .sink("out", SinkKind::Console, &["broken"])
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::new("invalid_at_depth", ops), |bch| {
            bch.iter(|| validate(&df).unwrap_err())
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    // Optimiser cost on a rewrite-rich pipeline.
    let schema = bench_schema();
    let df = DataflowBuilder::new("opt")
        .source("s", SubscriptionFilter::any(), schema)
        .virtual_property("v", "s", "d", "temperature + humidity")
        .filter("f1", "v", "temperature > 20")
        .filter("f2", "f1", "humidity > 40")
        .filter("f3", "f2", "seq > 10")
        .sink("out", SinkKind::Console, &["f3"])
        .build()
        .unwrap();
    c.bench_function("a1/optimize_pipeline", |b| {
        b.iter(|| sl_dataflow::optimize(&df).unwrap().1.len())
    });
}

criterion_group!(
    benches,
    bench_validate_scaling,
    bench_reject_fast,
    bench_optimizer
);
criterion_main!(benches);
