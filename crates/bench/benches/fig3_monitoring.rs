//! E4 — monitoring cost: virtual-time execution throughput as a function
//! of the monitor sampling period (Figure 3's refresh rate) and migration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl_bench::passthrough_dataflow;
use sl_engine::{Engine, EngineConfig};
use sl_netsim::Topology;
use sl_sensors::physical::TemperatureSensor;
use sl_stt::{Duration, GeoPoint, SensorId, Timestamp};

fn start() -> Timestamp {
    Timestamp::from_civil(2016, 7, 1, 8, 0, 0)
}

fn engine_with_fleet(monitor_ms: u64, migration: bool) -> Engine {
    let topo = Topology::nict_testbed();
    let config = EngineConfig {
        monitor_period: Duration::from_millis(monitor_ms),
        migration_enabled: migration,
        ..Default::default()
    };
    let mut engine = Engine::new(topo.clone(), config, start());
    for i in 0..6u64 {
        let node = topo.edge_nodes()[i as usize % 9];
        engine
            .add_sensor(Box::new(TemperatureSensor::new(
                SensorId(i),
                &format!("t{i}"),
                GeoPoint::new_unchecked(34.7, 135.5),
                node,
                Duration::from_millis(500),
                false,
                false,
                i,
            )))
            .unwrap();
    }
    engine.deploy(passthrough_dataflow("mon", 4)).unwrap();
    engine
}

fn bench_monitor_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/virtual_minute");
    group.sample_size(10);
    for period_ms in [100u64, 1_000, 10_000] {
        group.bench_function(BenchmarkId::new("monitor_period_ms", period_ms), |b| {
            b.iter_batched(
                || engine_with_fleet(period_ms, true),
                |mut e| e.run_for(Duration::from_mins(1)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("migration_disabled", |b| {
        b.iter_batched(
            || engine_with_fleet(1_000, false),
            |mut e| e.run_for(Duration::from_mins(1)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_report_render(c: &mut Criterion) {
    let mut engine = engine_with_fleet(1_000, true);
    engine.run_for(Duration::from_mins(2));
    c.bench_function("fig3/report_render", |b| {
        b.iter(|| engine.monitor().report(engine.now()))
    });
}

criterion_group!(benches, bench_monitor_period, bench_report_render);
criterion_main!(benches);
