//! E1 — Criterion microbenchmarks for every Table-1 operation, with
//! parameter sweeps: filter selectivity, aggregation fan-out, join strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sl_bench::{bench_schema, make_tuples};
use sl_ops::{AggFunc, JoinOp, OpContext, OpSpec, Operator};
use sl_stt::{BoundingBox, Duration, GeoPoint, TimeInterval, Timestamp};

const BATCH: usize = 10_000;

fn drive_batch(op: &mut dyn Operator, tuples: &[sl_stt::Tuple]) -> usize {
    let mut ctx = OpContext::new(Timestamp::from_secs(0));
    for t in tuples {
        op.on_tuple(0, t.clone(), &mut ctx).expect("valid tuple");
    }
    if op.is_blocking() {
        op.on_timer(Timestamp::from_secs(1_000_000), &mut ctx)
            .expect("tick");
    }
    ctx.emitted().len()
}

fn bench_non_blocking(c: &mut Criterion) {
    let tuples = make_tuples(BATCH, 42);
    let schema = bench_schema();
    let mut group = c.benchmark_group("table1/non_blocking");
    group.throughput(Throughput::Elements(BATCH as u64));

    // Filter across selectivities (temperature uniform in [10, 35)).
    for (label, threshold) in [("sel~0.9", 12.5), ("sel~0.5", 22.5), ("sel~0.1", 32.5)] {
        let spec = OpSpec::Filter {
            condition: format!("temperature > {threshold}"),
        };
        group.bench_function(BenchmarkId::new("filter", label), |b| {
            b.iter_batched(
                || spec.instantiate(std::slice::from_ref(&schema)).unwrap(),
                |mut op| drive_batch(op.as_mut(), &tuples),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    let transform = OpSpec::Transform {
        assignments: vec![(
            "temperature".into(),
            "convert_unit(temperature, 'celsius', 'fahrenheit')".into(),
        )],
    };
    group.bench_function("transform/unit_conversion", |b| {
        b.iter_batched(
            || {
                transform
                    .instantiate(std::slice::from_ref(&schema))
                    .unwrap()
            },
            |mut op| drive_batch(op.as_mut(), &tuples),
            criterion::BatchSize::SmallInput,
        )
    });

    let vprop = OpSpec::VirtualProperty {
        property: "apparent".into(),
        spec: "apparent_temperature(temperature, humidity)".into(),
    };
    group.bench_function("virtual_property/apparent_temperature", |b| {
        b.iter_batched(
            || vprop.instantiate(std::slice::from_ref(&schema)).unwrap(),
            |mut op| drive_batch(op.as_mut(), &tuples),
            criterion::BatchSize::SmallInput,
        )
    });

    let cull_t = OpSpec::CullTime {
        interval: TimeInterval::new(Timestamp::from_secs(0), Timestamp::from_secs(BATCH as i64)),
        rate: 3,
    };
    group.bench_function("cull_time/rate3", |b| {
        b.iter_batched(
            || cull_t.instantiate(std::slice::from_ref(&schema)).unwrap(),
            |mut op| drive_batch(op.as_mut(), &tuples),
            criterion::BatchSize::SmallInput,
        )
    });

    let cull_s = OpSpec::CullSpace {
        area: BoundingBox::from_corners(
            GeoPoint::new_unchecked(34.5, 135.3),
            GeoPoint::new_unchecked(34.9, 135.7),
        ),
        rate: 3,
    };
    group.bench_function("cull_space/rate3", |b| {
        b.iter_batched(
            || cull_s.instantiate(std::slice::from_ref(&schema)).unwrap(),
            |mut op| drive_batch(op.as_mut(), &tuples),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_blocking(c: &mut Criterion) {
    let tuples = make_tuples(BATCH, 42);
    let schema = bench_schema();
    let window = Duration::from_hours(100);
    let mut group = c.benchmark_group("table1/blocking");
    group.throughput(Throughput::Elements(BATCH as u64));

    for func in [
        AggFunc::Count,
        AggFunc::Avg,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
    ] {
        let attr = if func == AggFunc::Count {
            None
        } else {
            Some("temperature".to_string())
        };
        let spec = OpSpec::Aggregate {
            period: window,
            group_by: vec!["station".into()],
            func,
            attr,
            sliding: None,
        };
        group.bench_function(BenchmarkId::new("aggregate", func.name()), |b| {
            b.iter_batched(
                || spec.instantiate(std::slice::from_ref(&schema)).unwrap(),
                |mut op| drive_batch(op.as_mut(), &tuples),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    let trig = OpSpec::TriggerOn {
        period: window,
        condition: "temperature > 30".into(),
        targets: vec!["rain".into()],
    };
    group.bench_function("trigger_on", |b| {
        b.iter_batched(
            || trig.instantiate(std::slice::from_ref(&schema)).unwrap(),
            |mut op| drive_batch(op.as_mut(), &tuples),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_join_strategies(c: &mut Criterion) {
    let schema = bench_schema();
    let window = Duration::from_hours(100);
    let mut group = c.benchmark_group("table1/join");
    for n in [200usize, 800, 2_000] {
        let left = make_tuples(n, 1);
        let right = make_tuples(n, 2);
        group.throughput(Throughput::Elements(2 * n as u64));
        for nested in [false, true] {
            let label = if nested { "nested_loop" } else { "hash" };
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter_batched(
                    || {
                        let mut op = JoinOp::new(
                            window,
                            "station = right_station and seq < right_seq",
                            &schema,
                            &schema,
                        )
                        .unwrap();
                        op.set_force_nested_loop(nested);
                        op
                    },
                    |mut op| {
                        let mut ctx = OpContext::new(Timestamp::from_secs(0));
                        for t in &left {
                            op.on_tuple(0, t.clone(), &mut ctx).unwrap();
                        }
                        for t in &right {
                            op.on_tuple(1, t.clone(), &mut ctx).unwrap();
                        }
                        op.on_timer(Timestamp::from_secs(1_000_000), &mut ctx)
                            .unwrap();
                        ctx.emitted().len()
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_non_blocking,
    bench_blocking,
    bench_join_strategies
);
criterion_main!(benches);
