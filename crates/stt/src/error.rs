//! Error type shared by the STT data-model layer.

use std::fmt;

/// Errors raised while constructing or manipulating STT values, schemas,
/// granularities and coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum SttError {
    /// A value had a different runtime type than the operation required.
    TypeMismatch {
        /// What the operation expected (e.g. `"Float"`).
        expected: String,
        /// What it actually found.
        found: String,
    },
    /// An attribute name was not present in a schema.
    UnknownAttribute(String),
    /// A schema declared the same attribute name twice.
    DuplicateAttribute(String),
    /// A tuple's arity did not match its schema.
    ArityMismatch {
        /// Number of fields in the schema.
        schema: usize,
        /// Number of values in the tuple.
        tuple: usize,
    },
    /// Two units measure different physical quantities and cannot be
    /// converted into each other (e.g. Celsius → metres).
    IncompatibleUnits {
        /// Source unit name.
        from: String,
        /// Destination unit name.
        to: String,
    },
    /// Two granularities are not comparable in the granularity lattice, so a
    /// conversion between them is undefined (e.g. weeks ↔ months).
    IncomparableGranularities {
        /// Source granularity.
        from: String,
        /// Destination granularity.
        to: String,
    },
    /// A conversion between coordinate systems is not supported.
    UnsupportedCoordinateConversion {
        /// Source coordinate system.
        from: String,
        /// Destination coordinate system.
        to: String,
    },
    /// A latitude/longitude pair was outside the valid WGS84 domain.
    InvalidCoordinates {
        /// Latitude in degrees.
        lat: f64,
        /// Longitude in degrees.
        lon: f64,
    },
    /// A textual theme path was malformed (empty, or empty segment).
    InvalidTheme(String),
    /// A value could not be parsed from text.
    Parse(String),
}

impl fmt::Display for SttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SttError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            SttError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            SttError::DuplicateAttribute(name) => write!(f, "duplicate attribute `{name}`"),
            SttError::ArityMismatch { schema, tuple } => {
                write!(
                    f,
                    "arity mismatch: schema has {schema} fields, tuple has {tuple} values"
                )
            }
            SttError::IncompatibleUnits { from, to } => {
                write!(f, "incompatible units: cannot convert {from} to {to}")
            }
            SttError::IncomparableGranularities { from, to } => {
                write!(f, "granularities {from} and {to} are not comparable")
            }
            SttError::UnsupportedCoordinateConversion { from, to } => {
                write!(f, "unsupported coordinate conversion {from} -> {to}")
            }
            SttError::InvalidCoordinates { lat, lon } => {
                write!(f, "invalid coordinates lat={lat} lon={lon}")
            }
            SttError::InvalidTheme(t) => write!(f, "invalid theme path `{t}`"),
            SttError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SttError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SttError::TypeMismatch {
            expected: "Float".into(),
            found: "Str".into(),
        };
        assert_eq!(e.to_string(), "type mismatch: expected Float, found Str");
        let e = SttError::UnknownAttribute("temp".into());
        assert!(e.to_string().contains("temp"));
        let e = SttError::ArityMismatch {
            schema: 3,
            tuple: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SttError::InvalidTheme(String::new()));
    }
}
