//! The temporal dimension: timestamps, durations, intervals, and the
//! **temporal granularity** lattice.
//!
//! Granularities are central to the STT model: they "are used for identifying
//! correlations among data produced by different sensors and for imposing
//! consistency constraints in the composition of sensor data produced by
//! heterogeneous devices" (paper §3). A granularity partitions the time line
//! into *granules*; converting a timestamp to a granule index, mapping a
//! granule back to its interval, and comparing granularities in the
//! finer/coarser partial order are the operations the rest of the system
//! needs.
//!
//! All timestamps are UTC epoch milliseconds. Calendar granularities (day,
//! month, year) use the proleptic Gregorian civil calendar.

use crate::error::SttError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds since the Unix epoch (UTC). The single time representation
/// used across the simulator, operators and warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

/// A length of time in milliseconds. Always non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Timestamp {
    /// The Unix epoch itself.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Build from epoch milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Build from epoch seconds.
    pub const fn from_secs(s: i64) -> Self {
        Timestamp(s * 1000)
    }

    /// Epoch milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Epoch seconds (truncated toward negative infinity).
    pub const fn as_secs(self) -> i64 {
        self.0.div_euclid(1000)
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Duration from `earlier` to `self`; zero if `earlier` is in the future.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_millis(u64::try_from(self.0 - earlier.0).unwrap_or(0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0 as i64))
    }

    /// Civil date `(year, month 1-12, day 1-31)` of this timestamp in UTC.
    pub fn civil_date(self) -> (i32, u32, u32) {
        civil_from_days(self.0.div_euclid(86_400_000))
    }

    /// `(hour, minute, second)` of the day in UTC.
    pub fn time_of_day(self) -> (u32, u32, u32) {
        let ms = self.0.rem_euclid(86_400_000) as u64;
        let s = ms / 1000;
        ((s / 3600) as u32, ((s % 3600) / 60) as u32, (s % 60) as u32)
    }

    /// Build a timestamp from a UTC civil date and time of day.
    pub fn from_civil(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Timestamp {
        let days = days_from_civil(year, month, day);
        Timestamp(
            days * 86_400_000
                + i64::from(hour) * 3_600_000
                + i64::from(min) * 60_000
                + i64::from(sec) * 1000,
        )
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.civil_date();
        let (h, mi, s) = self.time_of_day();
        let ms = self.0.rem_euclid(1000);
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{ms:03}Z")
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0 as i64)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0 as i64;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.0 as i64)
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Build from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Build from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1000)
    }

    /// Build from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        Duration(m * 60_000)
    }

    /// Build from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        Duration(h * 3_600_000)
    }

    /// Milliseconds in this duration.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scalar multiplication, saturating.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl fmt::Display for Duration {
    /// Compact `1h2m3s` / `250ms` rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ms = self.0;
        if ms == 0 {
            return write!(f, "0ms");
        }
        let h = ms / 3_600_000;
        ms %= 3_600_000;
        let m = ms / 60_000;
        ms %= 60_000;
        let s = ms / 1000;
        ms %= 1000;
        let mut wrote = false;
        if h > 0 {
            write!(f, "{h}h")?;
            wrote = true;
        }
        if m > 0 {
            write!(f, "{m}m")?;
            wrote = true;
        }
        if s > 0 {
            write!(f, "{s}s")?;
            wrote = true;
        }
        if ms > 0 || !wrote {
            write!(f, "{ms}ms")?;
        }
        Ok(())
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

/// A half-open interval of time `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeInterval {
    /// Build an interval; panics in debug builds if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        debug_assert!(end >= start, "interval end before start");
        TimeInterval { start, end }
    }

    /// True if `t` lies inside the half-open interval.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// True if the two intervals share at least one instant.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Length of the interval.
    pub fn length(&self) -> Duration {
        self.end.since(self.start)
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A temporal granularity: a partition of the time line into granules.
///
/// Fixed-size granularities (from milliseconds up to weeks, plus
/// [`TemporalGranularity::Custom`]) partition the line into equal spans
/// anchored at the epoch; calendar granularities ([`Month`], [`Year`]) follow
/// the civil calendar.
///
/// [`Month`]: TemporalGranularity::Month
/// [`Year`]: TemporalGranularity::Year
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalGranularity {
    /// One-millisecond granules (the finest granularity).
    Millisecond,
    /// One-second granules.
    Second,
    /// One-minute granules.
    Minute,
    /// One-hour granules.
    Hour,
    /// One-day granules (UTC civil days).
    Day,
    /// Seven-day granules anchored at the epoch (1970-01-01 was a Thursday).
    Week,
    /// Civil-calendar months.
    Month,
    /// Civil-calendar years.
    Year,
    /// A custom fixed period in milliseconds (must be > 0).
    Custom(u64),
}

impl TemporalGranularity {
    /// All the named (non-custom) granularities, finest first.
    pub const NAMED: [TemporalGranularity; 8] = [
        TemporalGranularity::Millisecond,
        TemporalGranularity::Second,
        TemporalGranularity::Minute,
        TemporalGranularity::Hour,
        TemporalGranularity::Day,
        TemporalGranularity::Week,
        TemporalGranularity::Month,
        TemporalGranularity::Year,
    ];

    /// Fixed granule length in milliseconds, or `None` for calendar
    /// granularities whose granules vary in length.
    pub fn fixed_millis(self) -> Option<u64> {
        match self {
            TemporalGranularity::Millisecond => Some(1),
            TemporalGranularity::Second => Some(1000),
            TemporalGranularity::Minute => Some(60_000),
            TemporalGranularity::Hour => Some(3_600_000),
            TemporalGranularity::Day => Some(86_400_000),
            TemporalGranularity::Week => Some(604_800_000),
            TemporalGranularity::Custom(ms) => Some(ms),
            TemporalGranularity::Month | TemporalGranularity::Year => None,
        }
    }

    /// Index of the granule containing `t`.
    ///
    /// For fixed granularities this is `floor(ms / period)`; for months it is
    /// `(year - 1970) * 12 + month0`; for years `year - 1970`.
    pub fn granule_of(self, t: Timestamp) -> i64 {
        match self {
            TemporalGranularity::Month => {
                let (y, m, _) = t.civil_date();
                i64::from(y - 1970) * 12 + i64::from(m) - 1
            }
            TemporalGranularity::Year => {
                let (y, _, _) = t.civil_date();
                i64::from(y - 1970)
            }
            g => {
                let p = g.fixed_millis().expect("fixed granularity") as i64;
                t.as_millis().div_euclid(p)
            }
        }
    }

    /// The time interval covered by granule `idx`.
    pub fn granule_interval(self, idx: i64) -> TimeInterval {
        match self {
            TemporalGranularity::Month => {
                let (sy, sm) = month_index_to_ym(idx);
                let (ey, em) = month_index_to_ym(idx + 1);
                TimeInterval::new(
                    Timestamp::from_civil(sy, sm, 1, 0, 0, 0),
                    Timestamp::from_civil(ey, em, 1, 0, 0, 0),
                )
            }
            TemporalGranularity::Year => {
                let y = 1970 + i32::try_from(idx).expect("year index overflow");
                TimeInterval::new(
                    Timestamp::from_civil(y, 1, 1, 0, 0, 0),
                    Timestamp::from_civil(y + 1, 1, 1, 0, 0, 0),
                )
            }
            g => {
                let p = g.fixed_millis().expect("fixed granularity") as i64;
                TimeInterval::new(
                    Timestamp::from_millis(idx * p),
                    Timestamp::from_millis((idx + 1) * p),
                )
            }
        }
    }

    /// Truncate `t` to the start of its granule (e.g. `Hour` → top of hour).
    pub fn truncate(self, t: Timestamp) -> Timestamp {
        self.granule_interval(self.granule_of(t)).start
    }

    /// True if `self` is *finer than or equal to* `other`: every granule of
    /// `other` is a union of granules of `self`.
    ///
    /// For fixed granularities this is divisibility of the periods. The
    /// calendar chain is `Millisecond ≤ … ≤ Day ≤ Month ≤ Year`; `Week` is
    /// only comparable with granularities that divide a week (it does not
    /// align with months or years).
    pub fn finer_or_equal(self, other: TemporalGranularity) -> bool {
        use TemporalGranularity::*;
        if self == other {
            return true;
        }
        match (self, other) {
            (Month, Year) => true,
            // Month/Year are unions of civil days, which are unions of any
            // divisor of a day.
            (a, Month | Year) => a
                .fixed_millis()
                .is_some_and(|p| p != 0 && 86_400_000 % p == 0),
            (Month | Year, _) => false,
            (a, b) => match (a.fixed_millis(), b.fixed_millis()) {
                (Some(pa), Some(pb)) => pa != 0 && pb % pa == 0,
                _ => false,
            },
        }
    }

    /// True if the two granularities are comparable in the lattice.
    pub fn comparable(self, other: TemporalGranularity) -> bool {
        self.finer_or_equal(other) || other.finer_or_equal(self)
    }

    /// Coarsen granule `idx` of `self` to the index of the containing granule
    /// of `coarser`. Errors if `coarser` is not actually coarser-or-equal.
    pub fn coarsen(self, idx: i64, coarser: TemporalGranularity) -> Result<i64, SttError> {
        if !self.finer_or_equal(coarser) {
            return Err(SttError::IncomparableGranularities {
                from: self.to_string(),
                to: coarser.to_string(),
            });
        }
        Ok(coarser.granule_of(self.granule_interval(idx).start))
    }

    /// The greatest lower bound of two granularities when they are
    /// comparable, otherwise the finest common refinement among the named
    /// fixed granularities (falls back to [`Millisecond`]).
    ///
    /// Used by the dataflow validator to pick the granularity of a joined or
    /// merged stream.
    ///
    /// [`Millisecond`]: TemporalGranularity::Millisecond
    pub fn meet(self, other: TemporalGranularity) -> TemporalGranularity {
        if self.finer_or_equal(other) {
            self
        } else if other.finer_or_equal(self) {
            other
        } else {
            // Incomparable (e.g. Week vs Month): find the coarsest named
            // granularity finer than both.
            TemporalGranularity::NAMED
                .iter()
                .rev()
                .copied()
                .find(|g| g.finer_or_equal(self) && g.finer_or_equal(other))
                .unwrap_or(TemporalGranularity::Millisecond)
        }
    }
}

impl fmt::Display for TemporalGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalGranularity::Millisecond => write!(f, "millisecond"),
            TemporalGranularity::Second => write!(f, "second"),
            TemporalGranularity::Minute => write!(f, "minute"),
            TemporalGranularity::Hour => write!(f, "hour"),
            TemporalGranularity::Day => write!(f, "day"),
            TemporalGranularity::Week => write!(f, "week"),
            TemporalGranularity::Month => write!(f, "month"),
            TemporalGranularity::Year => write!(f, "year"),
            TemporalGranularity::Custom(ms) => write!(f, "custom({ms}ms)"),
        }
    }
}

/// Days-from-civil algorithm (Howard Hinnant): days since 1970-01-01 for a
/// proleptic Gregorian date.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Convert a month granule index back to `(year, month)`.
fn month_index_to_ym(idx: i64) -> (i32, u32) {
    let y = 1970 + idx.div_euclid(12);
    let m = idx.rem_euclid(12) + 1;
    (i32::try_from(y).expect("year overflow"), m as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use TemporalGranularity::*;

    #[test]
    fn civil_round_trip_known_dates() {
        // 1970-01-01 is day 0.
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        // 2000-03-01 (leap year).
        let d = days_from_civil(2000, 3, 1);
        assert_eq!(civil_from_days(d), (2000, 3, 1));
        // 2016-03-15 — the EDBT 2016 conference start date.
        let t = Timestamp::from_civil(2016, 3, 15, 9, 30, 0);
        assert_eq!(t.civil_date(), (2016, 3, 15));
        assert_eq!(t.time_of_day(), (9, 30, 0));
    }

    #[test]
    fn civil_handles_pre_epoch() {
        let t = Timestamp::from_civil(1969, 12, 31, 23, 0, 0);
        assert!(t.as_millis() < 0);
        assert_eq!(t.civil_date(), (1969, 12, 31));
        assert_eq!(t.time_of_day(), (23, 0, 0));
    }

    #[test]
    fn display_iso_like() {
        let t = Timestamp::from_civil(2016, 3, 15, 9, 5, 7);
        assert_eq!(t.to_string(), "2016-03-15T09:05:07.000Z");
    }

    #[test]
    fn duration_arithmetic() {
        let t = Timestamp::from_secs(100);
        assert_eq!((t + Duration::from_secs(20)).as_secs(), 120);
        assert_eq!((t - Duration::from_secs(30)).as_secs(), 70);
        assert_eq!(t.since(Timestamp::from_secs(40)), Duration::from_secs(60));
        // since() saturates at zero.
        assert_eq!(
            Timestamp::from_secs(1).since(Timestamp::from_secs(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn duration_display() {
        assert_eq!(Duration::from_millis(0).to_string(), "0ms");
        assert_eq!(Duration::from_millis(250).to_string(), "250ms");
        assert_eq!(Duration::from_secs(90).to_string(), "1m30s");
        assert_eq!(
            (Duration::from_hours(2) + Duration::from_millis(5)).to_string(),
            "2h5ms"
        );
    }

    #[test]
    fn interval_contains_and_overlaps() {
        let i = TimeInterval::new(Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(i.contains(Timestamp::from_secs(10)));
        assert!(i.contains(Timestamp::from_secs(19)));
        assert!(!i.contains(Timestamp::from_secs(20)));
        let j = TimeInterval::new(Timestamp::from_secs(19), Timestamp::from_secs(25));
        let k = TimeInterval::new(Timestamp::from_secs(20), Timestamp::from_secs(25));
        assert!(i.overlaps(&j));
        assert!(!i.overlaps(&k));
        assert_eq!(i.length(), Duration::from_secs(10));
    }

    #[test]
    fn granule_of_fixed() {
        let t = Timestamp::from_millis(7_250);
        assert_eq!(Second.granule_of(t), 7);
        assert_eq!(Minute.granule_of(t), 0);
        assert_eq!(Custom(500).granule_of(t), 14);
        // Negative timestamps floor correctly.
        assert_eq!(Second.granule_of(Timestamp::from_millis(-1)), -1);
    }

    #[test]
    fn granule_interval_fixed_round_trip() {
        for g in [Second, Minute, Hour, Day, Week, Custom(750)] {
            for ms in [-100_000i64, 0, 1, 123_456_789] {
                let t = Timestamp::from_millis(ms);
                let idx = g.granule_of(t);
                let iv = g.granule_interval(idx);
                assert!(iv.contains(t), "{g} granule {idx} should contain {t}");
            }
        }
    }

    #[test]
    fn granule_month_year() {
        let t = Timestamp::from_civil(2016, 3, 15, 12, 0, 0);
        let midx = Month.granule_of(t);
        assert_eq!(midx, (2016 - 1970) * 12 + 2);
        let iv = Month.granule_interval(midx);
        assert_eq!(iv.start, Timestamp::from_civil(2016, 3, 1, 0, 0, 0));
        assert_eq!(iv.end, Timestamp::from_civil(2016, 4, 1, 0, 0, 0));
        let yidx = Year.granule_of(t);
        assert_eq!(yidx, 46);
        assert!(Year.granule_interval(yidx).contains(t));
    }

    #[test]
    fn december_month_interval_crosses_year() {
        let t = Timestamp::from_civil(2015, 12, 20, 0, 0, 0);
        let iv = Month.granule_interval(Month.granule_of(t));
        assert_eq!(iv.end, Timestamp::from_civil(2016, 1, 1, 0, 0, 0));
    }

    #[test]
    fn truncate_to_hour() {
        let t = Timestamp::from_civil(2016, 3, 15, 9, 45, 30);
        assert_eq!(
            Hour.truncate(t),
            Timestamp::from_civil(2016, 3, 15, 9, 0, 0)
        );
        assert_eq!(Day.truncate(t), Timestamp::from_civil(2016, 3, 15, 0, 0, 0));
    }

    #[test]
    fn finer_or_equal_chain() {
        let chain = [Millisecond, Second, Minute, Hour, Day, Month, Year];
        for (i, a) in chain.iter().enumerate() {
            for (j, b) in chain.iter().enumerate() {
                assert_eq!(a.finer_or_equal(*b), i <= j, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn week_is_incomparable_with_month() {
        assert!(!Week.finer_or_equal(Month));
        assert!(!Month.finer_or_equal(Week));
        assert!(!Week.comparable(Year));
        assert!(Day.finer_or_equal(Week));
        assert!(Hour.finer_or_equal(Week));
    }

    #[test]
    fn custom_divisibility() {
        assert!(Custom(500).finer_or_equal(Second));
        assert!(!Custom(700).finer_or_equal(Second));
        assert!(Second.finer_or_equal(Custom(5000)));
        assert!(Custom(1000).finer_or_equal(Custom(3000)));
        // A custom granularity that divides a day is finer than Month.
        assert!(Custom(43_200_000).finer_or_equal(Month));
        assert!(!Custom(43_200_001).finer_or_equal(Month));
    }

    #[test]
    fn coarsen_hour_to_day() {
        let t = Timestamp::from_civil(2016, 3, 15, 23, 0, 0);
        let h = Hour.granule_of(t);
        let d = Hour.coarsen(h, Day).unwrap();
        assert_eq!(d, Day.granule_of(t));
        assert!(Month.coarsen(5, Day).is_err());
        assert!(Week.coarsen(3, Month).is_err());
    }

    #[test]
    fn meet_picks_finer() {
        assert_eq!(Hour.meet(Day), Hour);
        assert_eq!(Day.meet(Hour), Hour);
        assert_eq!(Week.meet(Month), Day); // coarsest named refinement of both
        assert_eq!(Month.meet(Month), Month);
    }

    #[test]
    fn timestamp_min_max() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
