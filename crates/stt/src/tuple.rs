//! Tuples: the unit of data flowing through every stream.
//!
//! A [`Tuple`] is a row of [`Value`]s conforming to a shared [`SchemaRef`],
//! plus the STT metadata ([`SttMeta`]) that positions it in space, time and
//! theme. When "a sensor is not able to produce the spatio-temporal
//! information of the produced data, this information is added by the
//! Publish-Subscribe system" (paper §3) — hence location is optional at the
//! sensor and enriched before tuples enter a dataflow.

use crate::error::SttError;
use crate::schema::SchemaRef;
use crate::space::GeoPoint;
use crate::theme::Theme;
use crate::time::Timestamp;
use crate::value::Value;
use std::fmt;

/// Identifier of a sensor, assigned by the publish/subscribe registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SensorId(pub u64);

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sensor#{}", self.0)
    }
}

/// Space–time–thematic metadata attached to every tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct SttMeta {
    /// When the measurement was taken (sensor clock, UTC).
    pub timestamp: Timestamp,
    /// Where it was taken; `None` until enriched by the pub/sub layer.
    pub location: Option<GeoPoint>,
    /// Thematic classification of the producing stream.
    pub theme: Theme,
    /// The producing sensor.
    pub sensor: SensorId,
    /// Observability trace id threading the tuple through span-traced
    /// operators; 0 means "no trace assigned" (the engine assigns ids as
    /// tuples enter a dataflow).
    pub trace: u64,
}

impl SttMeta {
    /// Metadata for a sensor at a fixed, known position.
    pub fn new(
        timestamp: Timestamp,
        location: GeoPoint,
        theme: Theme,
        sensor: SensorId,
    ) -> SttMeta {
        SttMeta {
            timestamp,
            location: Some(location),
            theme,
            sensor,
            trace: 0,
        }
    }

    /// Metadata lacking a position (to be enriched by the pub/sub layer).
    pub fn without_location(timestamp: Timestamp, theme: Theme, sensor: SensorId) -> SttMeta {
        SttMeta {
            timestamp,
            location: None,
            theme,
            sensor,
            trace: 0,
        }
    }
}

/// A row of values plus its STT metadata.
///
/// The schema is shared via [`SchemaRef`]; cloning a tuple clones the values
/// but only bumps the schema's reference count.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    schema: SchemaRef,
    values: Vec<Value>,
    /// STT metadata (public: operators routinely read and rewrite it).
    pub meta: SttMeta,
}

impl Tuple {
    /// Build a tuple, checking arity against the schema.
    pub fn new(schema: SchemaRef, values: Vec<Value>, meta: SttMeta) -> Result<Tuple, SttError> {
        if values.len() != schema.len() {
            return Err(SttError::ArityMismatch {
                schema: schema.len(),
                tuple: values.len(),
            });
        }
        Ok(Tuple {
            schema,
            values,
            meta,
        })
    }

    /// The tuple's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of the attribute named `name`.
    pub fn get(&self, name: &str) -> Result<&Value, SttError> {
        self.schema.index_of(name).map(|i| &self.values[i])
    }

    /// Value at position `idx`.
    pub fn get_at(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Overwrite the attribute named `name`.
    pub fn set(&mut self, name: &str, value: Value) -> Result<(), SttError> {
        let i = self.schema.index_of(name)?;
        self.values[i] = value;
        Ok(())
    }

    /// Rebuild this tuple under a wider schema with one value appended
    /// (Virtual Property). The caller supplies the new schema so that a
    /// single `SchemaRef` is shared by the whole output stream.
    pub fn extended(&self, new_schema: SchemaRef, value: Value) -> Result<Tuple, SttError> {
        if new_schema.len() != self.values.len() + 1 {
            return Err(SttError::ArityMismatch {
                schema: new_schema.len(),
                tuple: self.values.len() + 1,
            });
        }
        let mut values = Vec::with_capacity(self.values.len() + 1);
        values.extend_from_slice(&self.values);
        values.push(value);
        Ok(Tuple {
            schema: new_schema,
            values,
            meta: self.meta.clone(),
        })
    }

    /// Concatenate two tuples under a pre-computed join schema.
    ///
    /// STT metadata of the combined tuple: the *later* timestamp (the join
    /// result exists once both inputs do), the left location, and the left
    /// theme — the left stream is the "driving" stream of the join.
    pub fn joined(&self, right: &Tuple, join_schema: SchemaRef) -> Result<Tuple, SttError> {
        if join_schema.len() != self.values.len() + right.values.len() {
            return Err(SttError::ArityMismatch {
                schema: join_schema.len(),
                tuple: self.values.len() + right.values.len(),
            });
        }
        let mut values = Vec::with_capacity(join_schema.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        let meta = SttMeta {
            timestamp: self.meta.timestamp.max(right.meta.timestamp),
            location: self.meta.location.or(right.meta.location),
            theme: self.meta.theme.clone(),
            sensor: self.meta.sensor,
            // The driving (left) stream's trace follows the join result.
            trace: self.meta.trace,
        };
        Ok(Tuple {
            schema: join_schema,
            values,
            meta,
        })
    }

    /// Consume the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Approximate wire size in bytes (values + fixed metadata overhead),
    /// used for network-level accounting.
    pub fn byte_size(&self) -> usize {
        let meta = 8 /* ts */ + 17 /* loc tag+point */ + self.meta.theme.as_str().len() + 8 /* sensor */;
        self.values.iter().map(Value::byte_size).sum::<usize>() + meta
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (field, v)) in self.schema.fields().iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", field.name, v)?;
        }
        write!(f, "}} @{} {}", self.meta.timestamp, self.meta.theme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Field, Schema};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("temperature", AttrType::Float),
            Field::new("station", AttrType::Str),
        ])
        .unwrap()
        .into_ref()
    }

    fn meta() -> SttMeta {
        SttMeta::new(
            Timestamp::from_secs(100),
            GeoPoint::new_unchecked(34.69, 135.50),
            Theme::new("weather/temperature").unwrap(),
            SensorId(7),
        )
    }

    fn tuple() -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Float(25.5), Value::Str("osaka-1".into())],
            meta(),
        )
        .unwrap()
    }

    #[test]
    fn arity_checked() {
        let err = Tuple::new(schema(), vec![Value::Float(1.0)], meta()).unwrap_err();
        assert_eq!(
            err,
            SttError::ArityMismatch {
                schema: 2,
                tuple: 1
            }
        );
    }

    #[test]
    fn get_set_by_name() {
        let mut t = tuple();
        assert_eq!(t.get("temperature").unwrap(), &Value::Float(25.5));
        assert_eq!(t.get("station").unwrap(), &Value::Str("osaka-1".into()));
        assert!(t.get("missing").is_err());
        t.set("temperature", Value::Float(30.0)).unwrap();
        assert_eq!(t.get("temperature").unwrap(), &Value::Float(30.0));
        assert!(t.set("missing", Value::Null).is_err());
        assert_eq!(t.get_at(1), Some(&Value::Str("osaka-1".into())));
        assert_eq!(t.get_at(9), None);
    }

    #[test]
    fn extended_appends_value() {
        let t = tuple();
        let wide = t
            .schema()
            .with_field(Field::new("apparent", AttrType::Float))
            .unwrap()
            .into_ref();
        let t2 = t.extended(wide, Value::Float(27.1)).unwrap();
        assert_eq!(t2.values().len(), 3);
        assert_eq!(t2.get("apparent").unwrap(), &Value::Float(27.1));
        // Wrong target schema arity is rejected.
        assert!(t.extended(schema(), Value::Null).is_err());
    }

    #[test]
    fn joined_concatenates_and_takes_later_timestamp() {
        let left = tuple();
        let right_schema = Schema::new(vec![Field::new("rain", AttrType::Float)])
            .unwrap()
            .into_ref();
        let mut rmeta = meta();
        rmeta.timestamp = Timestamp::from_secs(150);
        rmeta.sensor = SensorId(9);
        let right = Tuple::new(right_schema.clone(), vec![Value::Float(12.0)], rmeta).unwrap();
        let join_schema = left.schema().join(&right_schema).into_ref();
        let j = left.joined(&right, join_schema).unwrap();
        assert_eq!(j.values().len(), 3);
        assert_eq!(j.meta.timestamp, Timestamp::from_secs(150));
        assert_eq!(j.meta.sensor, SensorId(7)); // left is driving
        assert_eq!(j.get("rain").unwrap(), &Value::Float(12.0));
    }

    #[test]
    fn joined_falls_back_to_right_location() {
        let mut lmeta = meta();
        lmeta.location = None;
        let left = Tuple::new(
            schema(),
            vec![Value::Float(1.0), Value::Str("s".into())],
            lmeta,
        )
        .unwrap();
        let right = tuple();
        let js = left.schema().join(right.schema()).into_ref();
        let j = left.joined(&right, js).unwrap();
        assert_eq!(j.meta.location, right.meta.location);
    }

    #[test]
    fn display_shows_attributes() {
        let t = tuple();
        let s = t.to_string();
        assert!(s.contains("temperature=25.5"));
        assert!(s.contains("weather/temperature"));
    }

    #[test]
    fn byte_size_counts_values_and_meta() {
        let t = tuple();
        // 8 (float) + 7 ("osaka-1") + meta(8+17+19+8).
        assert_eq!(
            t.byte_size(),
            8 + 7 + 8 + 17 + "weather/temperature".len() + 8
        );
    }

    #[test]
    fn schema_sharing_is_cheap() {
        let t = tuple();
        let t2 = t.clone();
        assert!(std::sync::Arc::ptr_eq(t.schema(), t2.schema()));
    }
}
