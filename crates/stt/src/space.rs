//! The spatial dimension: points, bounding boxes, distances, and coordinate
//! system conversion.
//!
//! The paper's Transform operation covers "changing ... geographical
//! coordinates (from one standard to another one)" (requirement §2).
//! StreamLoader sensors report WGS84, Web Mercator, or the legacy Tokyo datum
//! (common for Japanese sensor networks, matching the NICT deployment);
//! [`CoordinateSystem::convert`] normalises between them.

use crate::error::SttError;
use std::fmt;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A geographical position. Canonically stored as WGS84 latitude/longitude
/// in degrees; other systems are converted on ingress.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Build a point, validating the WGS84 domain.
    pub fn new(lat: f64, lon: f64) -> Result<GeoPoint, SttError> {
        if !(-90.0..=90.0).contains(&lat)
            || !(-180.0..=180.0).contains(&lon)
            || lat.is_nan()
            || lon.is_nan()
        {
            return Err(SttError::InvalidCoordinates { lat, lon });
        }
        Ok(GeoPoint { lat, lon })
    }

    /// Build a point without validation (for trusted internal call sites).
    pub const fn new_unchecked(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    pub fn haversine_distance_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

/// An axis-aligned geographic rectangle, used by Cull-Space
/// (`γr(s, <coord1, coord2>)`, Table 1) and by discovery-by-area queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// South-west corner.
    pub min: GeoPoint,
    /// North-east corner.
    pub max: GeoPoint,
}

impl BoundingBox {
    /// Build a box from two opposite corners in any order.
    pub fn from_corners(a: GeoPoint, b: GeoPoint) -> BoundingBox {
        BoundingBox {
            min: GeoPoint::new_unchecked(a.lat.min(b.lat), a.lon.min(b.lon)),
            max: GeoPoint::new_unchecked(a.lat.max(b.lat), a.lon.max(b.lon)),
        }
    }

    /// True if `p` lies inside the box (inclusive on all edges).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min.lat
            && p.lat <= self.max.lat
            && p.lon >= self.min.lon
            && p.lon <= self.max.lon
    }

    /// True if the two boxes intersect.
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.lat <= other.max.lat
            && other.min.lat <= self.max.lat
            && self.min.lon <= other.max.lon
            && other.min.lon <= self.max.lon
    }

    /// The centre point of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new_unchecked(
            (self.min.lat + self.max.lat) / 2.0,
            (self.min.lon + self.max.lon) / 2.0,
        )
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min: GeoPoint::new_unchecked(
                self.min.lat.min(other.min.lat),
                self.min.lon.min(other.min.lon),
            ),
            max: GeoPoint::new_unchecked(
                self.max.lat.max(other.max.lat),
                self.max.lon.max(other.max.lon),
            ),
        }
    }

    /// Grow the box by `margin_deg` degrees on every side, clamped to the
    /// valid WGS84 domain.
    pub fn expanded(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            min: GeoPoint::new_unchecked(
                (self.min.lat - margin_deg).max(-90.0),
                (self.min.lon - margin_deg).max(-180.0),
            ),
            max: GeoPoint::new_unchecked(
                (self.max.lat + margin_deg).min(90.0),
                (self.max.lon + margin_deg).min(180.0),
            ),
        }
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// A geographic coordinate reference standard.
///
/// Raw sensor payloads may carry coordinates in any of these; the extraction
/// layer and the Transform operator convert to canonical WGS84.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordinateSystem {
    /// World Geodetic System 1984 — latitude/longitude in degrees. Canonical.
    Wgs84,
    /// Spherical Web Mercator (EPSG:3857) — metres east/north of (0°, 0°).
    WebMercator,
    /// The legacy Tokyo datum (approximate Molodensky shift), still produced
    /// by older Japanese sensor installations.
    TokyoDatum,
}

impl CoordinateSystem {
    /// Convert a coordinate pair expressed in `self` into `target`.
    ///
    /// The pair is `(a, b)` = (lat, lon) for geodetic systems, or
    /// (x, y) metres for Web Mercator.
    pub fn convert(self, a: f64, b: f64, target: CoordinateSystem) -> Result<(f64, f64), SttError> {
        if self == target {
            return Ok((a, b));
        }
        // Normalise via WGS84 (lat, lon).
        let (lat, lon) = self.to_wgs84(a, b)?;
        target.from_wgs84(lat, lon)
    }

    /// Convert a pair in `self` to a validated WGS84 [`GeoPoint`].
    pub fn to_point(self, a: f64, b: f64) -> Result<GeoPoint, SttError> {
        let (lat, lon) = self.to_wgs84(a, b)?;
        GeoPoint::new(lat, lon)
    }

    fn to_wgs84(self, a: f64, b: f64) -> Result<(f64, f64), SttError> {
        match self {
            CoordinateSystem::Wgs84 => Ok((a, b)),
            CoordinateSystem::WebMercator => {
                let lon = (a / EARTH_RADIUS_M).to_degrees();
                let lat = ((b / EARTH_RADIUS_M).exp().atan() * 2.0 - std::f64::consts::FRAC_PI_2)
                    .to_degrees();
                Ok((lat, lon))
            }
            CoordinateSystem::TokyoDatum => {
                // Standard three-parameter approximation of Tokyo → WGS84.
                let lat = a - 0.00010695 * a + 0.000017464 * b + 0.0046017;
                let lon = b - 0.000046038 * a - 0.000083043 * b + 0.010040;
                Ok((lat, lon))
            }
        }
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_wgs84(self, lat: f64, lon: f64) -> Result<(f64, f64), SttError> {
        match self {
            CoordinateSystem::Wgs84 => Ok((lat, lon)),
            CoordinateSystem::WebMercator => {
                if !(-85.06..=85.06).contains(&lat) {
                    return Err(SttError::InvalidCoordinates { lat, lon });
                }
                let x = EARTH_RADIUS_M * lon.to_radians();
                let y = EARTH_RADIUS_M
                    * ((std::f64::consts::FRAC_PI_4 + lat.to_radians() / 2.0).tan()).ln();
                Ok((x, y))
            }
            CoordinateSystem::TokyoDatum => {
                // Inverse of the forward approximation (also approximate).
                let a = lat + 0.00010696 * lat - 0.000017467 * lon - 0.0046020;
                let b = lon + 0.000046047 * lat + 0.000083049 * lon - 0.010041;
                Ok((a, b))
            }
        }
    }

    /// Parse from the identifiers used in DSN documents and sensor
    /// advertisements.
    pub fn parse(s: &str) -> Result<CoordinateSystem, SttError> {
        match s.to_ascii_lowercase().as_str() {
            "wgs84" | "epsg:4326" => Ok(CoordinateSystem::Wgs84),
            "webmercator" | "web_mercator" | "epsg:3857" => Ok(CoordinateSystem::WebMercator),
            "tokyo" | "tokyo_datum" | "epsg:4301" => Ok(CoordinateSystem::TokyoDatum),
            other => Err(SttError::Parse(format!(
                "unknown coordinate system `{other}`"
            ))),
        }
    }
}

impl fmt::Display for CoordinateSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinateSystem::Wgs84 => write!(f, "wgs84"),
            CoordinateSystem::WebMercator => write!(f, "web_mercator"),
            CoordinateSystem::TokyoDatum => write!(f, "tokyo_datum"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Osaka city centre, used throughout the scenario tests.
    pub fn osaka() -> GeoPoint {
        GeoPoint::new(34.6937, 135.5023).unwrap()
    }

    #[test]
    fn geopoint_validation() {
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
        assert!(GeoPoint::new(90.1, 0.0).is_err());
        assert!(GeoPoint::new(0.0, -180.1).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn haversine_osaka_kyoto() {
        // Osaka → Kyoto is ~43 km.
        let kyoto = GeoPoint::new(35.0116, 135.7681).unwrap();
        let d = osaka().haversine_distance_m(&kyoto);
        assert!((40_000.0..50_000.0).contains(&d), "distance was {d}");
        // Symmetry and identity.
        assert!((d - kyoto.haversine_distance_m(&osaka())).abs() < 1e-6);
        assert_eq!(osaka().haversine_distance_m(&osaka()), 0.0);
    }

    #[test]
    fn bbox_from_corners_any_order() {
        let a = GeoPoint::new_unchecked(35.0, 136.0);
        let b = GeoPoint::new_unchecked(34.0, 135.0);
        let bb = BoundingBox::from_corners(a, b);
        assert_eq!(bb.min.lat, 34.0);
        assert_eq!(bb.max.lon, 136.0);
        assert!(bb.contains(&GeoPoint::new_unchecked(34.5, 135.5)));
        assert!(bb.contains(&bb.min));
        assert!(bb.contains(&bb.max));
        assert!(!bb.contains(&GeoPoint::new_unchecked(33.9, 135.5)));
    }

    #[test]
    fn bbox_intersects_union_center() {
        let a = BoundingBox::from_corners(
            GeoPoint::new_unchecked(34.0, 135.0),
            GeoPoint::new_unchecked(35.0, 136.0),
        );
        let b = BoundingBox::from_corners(
            GeoPoint::new_unchecked(34.5, 135.5),
            GeoPoint::new_unchecked(36.0, 137.0),
        );
        let c = BoundingBox::from_corners(
            GeoPoint::new_unchecked(40.0, 140.0),
            GeoPoint::new_unchecked(41.0, 141.0),
        );
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        let u = a.union(&b);
        assert!(u.contains(&a.min) && u.contains(&b.max));
        let ctr = a.center();
        assert!((ctr.lat - 34.5).abs() < 1e-9 && (ctr.lon - 135.5).abs() < 1e-9);
    }

    #[test]
    fn bbox_expand_clamps() {
        let b = BoundingBox::from_corners(
            GeoPoint::new_unchecked(89.0, 179.0),
            GeoPoint::new_unchecked(89.5, 179.5),
        );
        let e = b.expanded(5.0);
        assert_eq!(e.max.lat, 90.0);
        assert_eq!(e.max.lon, 180.0);
        assert!((e.min.lat - 84.0).abs() < 1e-9);
    }

    #[test]
    fn mercator_round_trip() {
        let p = osaka();
        let (x, y) = CoordinateSystem::Wgs84
            .convert(p.lat, p.lon, CoordinateSystem::WebMercator)
            .unwrap();
        // Osaka is east of Greenwich and north of the equator.
        assert!(x > 0.0 && y > 0.0);
        let (lat, lon) = CoordinateSystem::WebMercator
            .convert(x, y, CoordinateSystem::Wgs84)
            .unwrap();
        assert!((lat - p.lat).abs() < 1e-9, "lat {lat}");
        assert!((lon - p.lon).abs() < 1e-9, "lon {lon}");
    }

    #[test]
    fn mercator_rejects_poles() {
        assert!(CoordinateSystem::Wgs84
            .convert(89.0, 0.0, CoordinateSystem::WebMercator)
            .is_err());
    }

    #[test]
    fn tokyo_datum_round_trip_approximately() {
        let p = osaka();
        let (a, b) = CoordinateSystem::Wgs84
            .convert(p.lat, p.lon, CoordinateSystem::TokyoDatum)
            .unwrap();
        // The Tokyo datum differs from WGS84 by roughly 10 arc-seconds.
        assert!((a - p.lat).abs() < 0.02 && (a - p.lat).abs() > 1e-5);
        let (lat, lon) = CoordinateSystem::TokyoDatum
            .convert(a, b, CoordinateSystem::Wgs84)
            .unwrap();
        assert!(
            (lat - p.lat).abs() < 1e-4,
            "lat error {}",
            (lat - p.lat).abs()
        );
        assert!(
            (lon - p.lon).abs() < 1e-4,
            "lon error {}",
            (lon - p.lon).abs()
        );
    }

    #[test]
    fn identity_conversion() {
        let (a, b) = CoordinateSystem::Wgs84
            .convert(1.0, 2.0, CoordinateSystem::Wgs84)
            .unwrap();
        assert_eq!((a, b), (1.0, 2.0));
    }

    #[test]
    fn parse_coordinate_systems() {
        assert_eq!(
            CoordinateSystem::parse("WGS84").unwrap(),
            CoordinateSystem::Wgs84
        );
        assert_eq!(
            CoordinateSystem::parse("epsg:3857").unwrap(),
            CoordinateSystem::WebMercator
        );
        assert_eq!(
            CoordinateSystem::parse("tokyo").unwrap(),
            CoordinateSystem::TokyoDatum
        );
        assert!(CoordinateSystem::parse("mars2000").is_err());
        // Display → parse round trip.
        for cs in [
            CoordinateSystem::Wgs84,
            CoordinateSystem::WebMercator,
            CoordinateSystem::TokyoDatum,
        ] {
            assert_eq!(CoordinateSystem::parse(&cs.to_string()).unwrap(), cs);
        }
    }
}
