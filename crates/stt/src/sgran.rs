//! Spatial granularities: partitions of geographic space into *granules*.
//!
//! Mirrors the temporal granularity lattice in [`crate::time`]: a spatial
//! granularity maps a [`GeoPoint`] to a [`SpatialGranule`] identifier, a
//! granule back to its bounding box, and granularities compare in a
//! finer/coarser partial order. This is what lets StreamLoader state
//! consistency constraints like "temperature in a room versus temperatures in
//! a geographical area" (paper §1) and aggregate heterogeneous streams at a
//! common resolution.
//!
//! The implementation uses regular lat/lon grids whose cell edge is
//! `1/2^level` degrees: level 0 ≈ a city district block of 1°×1°, higher
//! levels halve the edge. Grids at different levels nest exactly, giving a
//! clean containment lattice. [`SpatialGranularity::Point`] (exact positions)
//! is the finest element and [`SpatialGranularity::World`] the coarsest.

use crate::error::SttError;
use crate::space::{BoundingBox, GeoPoint};
use std::fmt;

/// Maximum supported grid level (cell edge `1/2^20` degrees ≈ 10 cm).
pub const MAX_GRID_LEVEL: u8 = 20;

/// A spatial granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialGranularity {
    /// Exact positions; the finest granularity (every point its own granule).
    Point,
    /// Regular lat/lon grid with cell edge `1/2^level` degrees.
    Grid {
        /// Subdivision level in `0..=MAX_GRID_LEVEL`.
        level: u8,
    },
    /// The whole globe as a single granule; the coarsest granularity.
    World,
}

impl SpatialGranularity {
    /// A grid granularity, clamping the level into the supported range.
    pub fn grid(level: u8) -> SpatialGranularity {
        SpatialGranularity::Grid {
            level: level.min(MAX_GRID_LEVEL),
        }
    }

    /// Grid cell edge in degrees, if this is a grid.
    pub fn cell_deg(self) -> Option<f64> {
        match self {
            SpatialGranularity::Grid { level } => Some(1.0 / f64::from(1u32 << level)),
            _ => None,
        }
    }

    /// The granule containing point `p`.
    pub fn granule_of(self, p: &GeoPoint) -> SpatialGranule {
        match self {
            SpatialGranularity::Point => SpatialGranule::Point {
                // Quantise to 1e-7 degrees (~1 cm) so granules are hashable.
                lat_e7: (p.lat * 1e7).round() as i64,
                lon_e7: (p.lon * 1e7).round() as i64,
            },
            SpatialGranularity::Grid { level } => {
                let edge = 1.0 / f64::from(1u32 << level);
                SpatialGranule::Cell {
                    level,
                    ix: (p.lon / edge).floor() as i32,
                    iy: (p.lat / edge).floor() as i32,
                }
            }
            SpatialGranularity::World => SpatialGranule::World,
        }
    }

    /// True if `self` is finer than or equal to `other` (every granule of
    /// `other` is a union of granules of `self`).
    pub fn finer_or_equal(self, other: SpatialGranularity) -> bool {
        use SpatialGranularity::*;
        match (self, other) {
            (Point, _) | (_, World) => true,
            (Grid { level: a }, Grid { level: b }) => a >= b,
            (World, _) => matches!(other, World),
            (Grid { .. }, Point) => false,
        }
    }

    /// True if the two granularities are comparable; grids always are.
    pub fn comparable(self, other: SpatialGranularity) -> bool {
        self.finer_or_equal(other) || other.finer_or_equal(self)
    }

    /// The finer of the two granularities (grid levels take the max).
    pub fn meet(self, other: SpatialGranularity) -> SpatialGranularity {
        if self.finer_or_equal(other) {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SpatialGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialGranularity::Point => write!(f, "point"),
            SpatialGranularity::Grid { level } => write!(f, "grid{level}"),
            SpatialGranularity::World => write!(f, "world"),
        }
    }
}

impl SpatialGranularity {
    /// Parse from the identifiers used in DSN documents (`point`, `gridN`,
    /// `world`).
    pub fn parse(s: &str) -> Result<SpatialGranularity, SttError> {
        let s = s.trim();
        match s {
            "point" => Ok(SpatialGranularity::Point),
            "world" => Ok(SpatialGranularity::World),
            _ => {
                if let Some(level) = s.strip_prefix("grid") {
                    level
                        .parse::<u8>()
                        .ok()
                        .filter(|l| *l <= MAX_GRID_LEVEL)
                        .map(|level| SpatialGranularity::Grid { level })
                        .ok_or_else(|| SttError::Parse(format!("bad grid level in `{s}`")))
                } else {
                    Err(SttError::Parse(format!(
                        "unknown spatial granularity `{s}`"
                    )))
                }
            }
        }
    }
}

/// A spatial granule identifier: one unit of space at some granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialGranule {
    /// An exact position quantised to 1e-7 degrees.
    Point {
        /// Latitude ×1e7, rounded.
        lat_e7: i64,
        /// Longitude ×1e7, rounded.
        lon_e7: i64,
    },
    /// A grid cell.
    Cell {
        /// Grid subdivision level.
        level: u8,
        /// Column index: `floor(lon / edge)`.
        ix: i32,
        /// Row index: `floor(lat / edge)`.
        iy: i32,
    },
    /// The whole globe.
    World,
}

impl SpatialGranule {
    /// The geographic extent of this granule. Point granules get a degenerate
    /// box; the world granule spans the full domain.
    pub fn extent(&self) -> BoundingBox {
        match *self {
            SpatialGranule::Point { lat_e7, lon_e7 } => {
                let p = GeoPoint::new_unchecked(lat_e7 as f64 / 1e7, lon_e7 as f64 / 1e7);
                BoundingBox { min: p, max: p }
            }
            SpatialGranule::Cell { level, ix, iy } => {
                let edge = 1.0 / f64::from(1u32 << level);
                BoundingBox {
                    min: GeoPoint::new_unchecked(f64::from(iy) * edge, f64::from(ix) * edge),
                    max: GeoPoint::new_unchecked(
                        f64::from(iy + 1) * edge,
                        f64::from(ix + 1) * edge,
                    ),
                }
            }
            SpatialGranule::World => BoundingBox {
                min: GeoPoint::new_unchecked(-90.0, -180.0),
                max: GeoPoint::new_unchecked(90.0, 180.0),
            },
        }
    }

    /// A representative point of the granule (its centre).
    pub fn center(&self) -> GeoPoint {
        self.extent().center()
    }

    /// Coarsen this granule to a coarser granularity, returning the granule
    /// of `coarser` that contains it.
    pub fn coarsen(&self, coarser: SpatialGranularity) -> Result<SpatialGranule, SttError> {
        let own = self.granularity();
        if !own.finer_or_equal(coarser) {
            return Err(SttError::IncomparableGranularities {
                from: own.to_string(),
                to: coarser.to_string(),
            });
        }
        match (*self, coarser) {
            // Same granularity: identity.
            (g, c) if g.granularity() == c => Ok(g),
            // Nested grids coarsen by shifting indices.
            (SpatialGranule::Cell { level, ix, iy }, SpatialGranularity::Grid { level: cl }) => {
                let shift = level - cl;
                Ok(SpatialGranule::Cell {
                    level: cl,
                    ix: ix >> shift,
                    iy: iy >> shift,
                })
            }
            (_, SpatialGranularity::World) => Ok(SpatialGranule::World),
            (g, c) => Ok(c.granule_of(&g.center())),
        }
    }

    /// The granularity this granule belongs to.
    pub fn granularity(&self) -> SpatialGranularity {
        match self {
            SpatialGranule::Point { .. } => SpatialGranularity::Point,
            SpatialGranule::Cell { level, .. } => SpatialGranularity::Grid { level: *level },
            SpatialGranule::World => SpatialGranularity::World,
        }
    }
}

impl fmt::Display for SpatialGranule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialGranule::Point { lat_e7, lon_e7 } => {
                write!(
                    f,
                    "pt({:.7}, {:.7})",
                    *lat_e7 as f64 / 1e7,
                    *lon_e7 as f64 / 1e7
                )
            }
            SpatialGranule::Cell { level, ix, iy } => write!(f, "cell{level}({ix}, {iy})"),
            SpatialGranule::World => write!(f, "world"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osaka() -> GeoPoint {
        GeoPoint::new_unchecked(34.6937, 135.5023)
    }

    #[test]
    fn granule_contains_its_point() {
        for level in [0u8, 3, 7, 12, MAX_GRID_LEVEL] {
            let g = SpatialGranularity::grid(level);
            let gran = g.granule_of(&osaka());
            assert!(gran.extent().contains(&osaka()), "level {level}");
        }
    }

    #[test]
    fn nearby_points_share_coarse_cell_but_not_fine() {
        let a = osaka();
        let b = GeoPoint::new_unchecked(34.6940, 135.5030); // ~60 m away
        let coarse = SpatialGranularity::grid(2);
        let fine = SpatialGranularity::grid(14);
        assert_eq!(coarse.granule_of(&a), coarse.granule_of(&b));
        assert_ne!(fine.granule_of(&a), fine.granule_of(&b));
    }

    #[test]
    fn lattice_order() {
        use SpatialGranularity as SG;
        assert!(SG::Point.finer_or_equal(SG::grid(5)));
        assert!(SG::Point.finer_or_equal(SG::World));
        assert!(SG::grid(8).finer_or_equal(SG::grid(3)));
        assert!(!SG::grid(3).finer_or_equal(SG::grid(8)));
        assert!(SG::grid(3).finer_or_equal(SG::World));
        assert!(!SG::World.finer_or_equal(SG::grid(3)));
        assert!(!SG::grid(3).finer_or_equal(SG::Point));
        assert!(SG::grid(3).comparable(SG::grid(9)));
        assert_eq!(SG::grid(3).meet(SG::grid(9)), SG::grid(9));
        assert_eq!(SG::Point.meet(SG::World), SG::Point);
    }

    #[test]
    fn coarsen_nested_grids() {
        let fine = SpatialGranularity::grid(10).granule_of(&osaka());
        let coarse = fine.coarsen(SpatialGranularity::grid(4)).unwrap();
        // The coarse granule must be the one you'd get directly.
        assert_eq!(coarse, SpatialGranularity::grid(4).granule_of(&osaka()));
        // And must spatially contain the fine one.
        assert!(coarse.extent().contains(&fine.center()));
        // Identity coarsening.
        assert_eq!(fine.coarsen(SpatialGranularity::grid(10)).unwrap(), fine);
        // Coarsening to World always works.
        assert_eq!(
            fine.coarsen(SpatialGranularity::World).unwrap(),
            SpatialGranule::World
        );
        // Refining is an error.
        assert!(fine.coarsen(SpatialGranularity::grid(12)).is_err());
        assert!(SpatialGranule::World
            .coarsen(SpatialGranularity::grid(2))
            .is_err());
    }

    #[test]
    fn coarsen_point_to_grid() {
        let pt = SpatialGranularity::Point.granule_of(&osaka());
        let cell = pt.coarsen(SpatialGranularity::grid(6)).unwrap();
        assert_eq!(cell, SpatialGranularity::grid(6).granule_of(&osaka()));
    }

    #[test]
    fn negative_coordinates_floor_correctly() {
        // Buenos Aires: both lat and lon negative.
        let ba = GeoPoint::new_unchecked(-34.6037, -58.3816);
        let g = SpatialGranularity::grid(3);
        let cell = g.granule_of(&ba);
        assert!(cell.extent().contains(&ba));
        match cell {
            SpatialGranule::Cell { ix, iy, .. } => {
                assert!(ix < 0 && iy < 0);
            }
            other => panic!("expected cell, got {other:?}"),
        }
    }

    #[test]
    fn parse_round_trip() {
        for g in [
            SpatialGranularity::Point,
            SpatialGranularity::grid(0),
            SpatialGranularity::grid(13),
            SpatialGranularity::World,
        ] {
            assert_eq!(SpatialGranularity::parse(&g.to_string()).unwrap(), g);
        }
        assert!(SpatialGranularity::parse("grid99").is_err());
        assert!(SpatialGranularity::parse("hex7").is_err());
    }

    #[test]
    fn grid_clamps_level() {
        assert_eq!(
            SpatialGranularity::grid(200),
            SpatialGranularity::Grid {
                level: MAX_GRID_LEVEL
            }
        );
    }

    #[test]
    fn world_granule() {
        let g = SpatialGranularity::World.granule_of(&osaka());
        assert_eq!(g, SpatialGranule::World);
        assert!(g.extent().contains(&osaka()));
    }
}
