//! The paper's *event* concept.
//!
//! "We exploit the concept of event, that is a value associated with a
//! spatial object at a given time according to given thematics. Therefore, an
//! event is a value represented at a given spatio-temporal granularity for
//! which thematic information is added" (paper §3).
//!
//! [`Event`] is the canonical record stored in the Event Data Warehouse and
//! the unit over which granular roll-ups operate: a value pinned to a
//! temporal granule, a spatial granule, and a theme.

use crate::error::SttError;
use crate::sgran::{SpatialGranularity, SpatialGranule};
use crate::theme::Theme;
use crate::time::{TemporalGranularity, TimeInterval, Timestamp};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A value at a spatio-temporal granularity with thematic information.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The observed or derived value.
    pub value: Value,
    /// Temporal granularity of the observation.
    pub tgran: TemporalGranularity,
    /// Index of the temporal granule (under `tgran`).
    pub tgranule: i64,
    /// The spatial granule (which knows its own granularity).
    pub sgranule: SpatialGranule,
    /// Thematic classification.
    pub theme: Theme,
}

impl Event {
    /// Build an event directly from its parts.
    pub fn new(
        value: Value,
        tgran: TemporalGranularity,
        tgranule: i64,
        sgranule: SpatialGranule,
        theme: Theme,
    ) -> Event {
        Event {
            value,
            tgran,
            tgranule,
            sgranule,
            theme,
        }
    }

    /// Derive an event from one attribute of a tuple, placing it at the
    /// given spatio-temporal granularities.
    ///
    /// Errors if the attribute is missing, or the tuple has no location while
    /// a non-world spatial granularity is requested.
    pub fn from_tuple(
        tuple: &Tuple,
        attr: &str,
        tgran: TemporalGranularity,
        sgran: SpatialGranularity,
    ) -> Result<Event, SttError> {
        let value = tuple.get(attr)?.clone();
        let sgranule = match (tuple.meta.location, sgran) {
            (_, SpatialGranularity::World) => SpatialGranule::World,
            (Some(p), g) => g.granule_of(&p),
            (None, _) => {
                return Err(SttError::InvalidCoordinates {
                    lat: f64::NAN,
                    lon: f64::NAN,
                });
            }
        };
        Ok(Event {
            value,
            tgran,
            tgranule: tgran.granule_of(tuple.meta.timestamp),
            sgranule,
            theme: tuple.meta.theme.clone(),
        })
    }

    /// The time interval this event covers.
    pub fn time_interval(&self) -> TimeInterval {
        self.tgran.granule_interval(self.tgranule)
    }

    /// The spatial granularity of the event.
    pub fn sgran(&self) -> SpatialGranularity {
        self.sgranule.granularity()
    }

    /// Re-express the event at coarser granularities (used by warehouse
    /// roll-ups). Value is carried unchanged; aggregation across the merged
    /// granules is the warehouse's job.
    pub fn coarsened(
        &self,
        tgran: TemporalGranularity,
        sgran: SpatialGranularity,
    ) -> Result<Event, SttError> {
        let tgranule = self.tgran.coarsen(self.tgranule, tgran)?;
        let sgranule = self.sgranule.coarsen(sgran)?;
        Ok(Event {
            value: self.value.clone(),
            tgran,
            tgranule,
            sgranule,
            theme: self.theme.clone(),
        })
    }

    /// True if this event's granule overlaps the given timestamp.
    pub fn covers_time(&self, t: Timestamp) -> bool {
        self.time_interval().contains(t)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @[{} #{}] {} {}",
            self.value, self.tgran, self.tgranule, self.sgranule, self.theme
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Field, Schema};
    use crate::space::GeoPoint;
    use crate::tuple::{SensorId, SttMeta};

    fn sample_tuple(with_location: bool) -> Tuple {
        let schema = Schema::new(vec![Field::new("temperature", AttrType::Float)])
            .unwrap()
            .into_ref();
        let theme = Theme::new("weather/temperature").unwrap();
        let ts = Timestamp::from_civil(2016, 3, 15, 14, 30, 0);
        let meta = if with_location {
            SttMeta::new(
                ts,
                GeoPoint::new_unchecked(34.69, 135.50),
                theme,
                SensorId(1),
            )
        } else {
            SttMeta::without_location(ts, theme, SensorId(1))
        };
        Tuple::new(schema, vec![Value::Float(26.0)], meta).unwrap()
    }

    #[test]
    fn from_tuple_pins_granules() {
        let t = sample_tuple(true);
        let e = Event::from_tuple(
            &t,
            "temperature",
            TemporalGranularity::Hour,
            SpatialGranularity::grid(6),
        )
        .unwrap();
        assert_eq!(e.value, Value::Float(26.0));
        assert!(e.covers_time(t.meta.timestamp));
        assert_eq!(
            e.time_interval().start,
            Timestamp::from_civil(2016, 3, 15, 14, 0, 0)
        );
        assert!(e.sgranule.extent().contains(&t.meta.location.unwrap()));
        assert_eq!(e.theme.as_str(), "weather/temperature");
    }

    #[test]
    fn from_tuple_missing_attr() {
        let t = sample_tuple(true);
        assert!(Event::from_tuple(
            &t,
            "rain",
            TemporalGranularity::Hour,
            SpatialGranularity::World
        )
        .is_err());
    }

    #[test]
    fn from_tuple_without_location_needs_world() {
        let t = sample_tuple(false);
        assert!(Event::from_tuple(
            &t,
            "temperature",
            TemporalGranularity::Hour,
            SpatialGranularity::grid(4)
        )
        .is_err());
        let e = Event::from_tuple(
            &t,
            "temperature",
            TemporalGranularity::Hour,
            SpatialGranularity::World,
        )
        .unwrap();
        assert_eq!(e.sgranule, SpatialGranule::World);
    }

    #[test]
    fn coarsen_event() {
        let t = sample_tuple(true);
        let e = Event::from_tuple(
            &t,
            "temperature",
            TemporalGranularity::Minute,
            SpatialGranularity::grid(10),
        )
        .unwrap();
        let c = e
            .coarsened(TemporalGranularity::Day, SpatialGranularity::grid(2))
            .unwrap();
        assert_eq!(c.tgran, TemporalGranularity::Day);
        assert!(c.time_interval().contains(t.meta.timestamp));
        assert_eq!(c.sgran(), SpatialGranularity::grid(2));
        // Refining is rejected.
        assert!(e
            .coarsened(TemporalGranularity::Second, SpatialGranularity::grid(10))
            .is_err());
        assert!(e
            .coarsened(TemporalGranularity::Day, SpatialGranularity::Point)
            .is_err());
    }

    #[test]
    fn display_is_readable() {
        let t = sample_tuple(true);
        let e = Event::from_tuple(
            &t,
            "temperature",
            TemporalGranularity::Hour,
            SpatialGranularity::World,
        )
        .unwrap();
        let s = e.to_string();
        assert!(s.contains("26") && s.contains("hour") && s.contains("weather/temperature"));
    }
}
