//! Dynamically-typed attribute values.
//!
//! Sensor data is heterogeneous: schemas "are not fixed but depend on the
//! sensors" (paper §3). [`Value`] is the runtime representation of one
//! attribute of one tuple; type checking against a [`crate::Schema`] happens
//! at dataflow-validation time, and coercions follow the rules defined here.

use crate::error::SttError;
use crate::schema::AttrType;
use crate::space::GeoPoint;
use crate::time::Timestamp;
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value flowing through the system.
///
/// `Value` deliberately keeps the set of shapes small — the paper's sensors
/// produce scalar measurements, text (tweets) and positions. Structured
/// payloads are flattened into attributes by the extraction layer
/// (`sl-sensors::formats`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unknown value (a sensor omitted the attribute).
    Null,
    /// Boolean flag.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 text (tweet bodies, status strings, ...).
    Str(String),
    /// Point in time.
    Time(Timestamp),
    /// Geographical position (WGS84).
    Geo(GeoPoint),
}

impl Value {
    /// The runtime [`AttrType`] of this value, or `None` for [`Value::Null`]
    /// (null inhabits every type).
    pub fn attr_type(&self) -> Option<AttrType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(AttrType::Bool),
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Str(_) => Some(AttrType::Str),
            Value::Time(_) => Some(AttrType::Time),
            Value::Geo(_) => Some(AttrType::Geo),
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if this value is acceptable where `ty` is expected.
    ///
    /// Null matches every type, and `Int` is accepted where `Float` is
    /// expected (the widening coercion applied implicitly throughout the
    /// expression language).
    pub fn conforms_to(&self, ty: AttrType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), AttrType::Float) => true,
            (v, t) => v.attr_type() == Some(t),
        }
    }

    /// Numeric view of the value: `Int` and `Float` map to `f64`, `Bool`
    /// maps to 0.0/1.0, `Time` maps to its epoch-milliseconds.
    ///
    /// Returns an error for `Str`, `Geo` and `Null`.
    pub fn as_f64(&self) -> Result<f64, SttError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Value::Time(t) => Ok(t.as_millis() as f64),
            other => Err(SttError::TypeMismatch {
                expected: "numeric".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Integer view of the value (`Int` only, plus `Bool` as 0/1).
    pub fn as_i64(&self) -> Result<i64, SttError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(i64::from(*b)),
            other => Err(SttError::TypeMismatch {
                expected: "Int".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Result<bool, SttError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(SttError::TypeMismatch {
                expected: "Bool".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Result<&str, SttError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(SttError::TypeMismatch {
                expected: "Str".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Timestamp view of the value.
    pub fn as_time(&self) -> Result<Timestamp, SttError> {
        match self {
            Value::Time(t) => Ok(*t),
            other => Err(SttError::TypeMismatch {
                expected: "Time".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Geographic view of the value.
    pub fn as_geo(&self) -> Result<GeoPoint, SttError> {
        match self {
            Value::Geo(g) => Ok(*g),
            other => Err(SttError::TypeMismatch {
                expected: "Geo".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Human-readable name of the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
            Value::Time(_) => "Time",
            Value::Geo(_) => "Geo",
        }
    }

    /// Total comparison used by MIN/MAX aggregation and ORDER-like logic.
    ///
    /// Values of different type classes compare by a fixed type rank
    /// (`Null < Bool < numeric < Str < Time < Geo`); numeric values compare
    /// across `Int`/`Float`; `NaN` sorts greater than every other float so the
    /// ordering stays total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Time(_) => 4,
                Value::Geo(_) => 5,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (a @ (Value::Int(_) | Value::Float(_)), b @ (Value::Int(_) | Value::Float(_))) => {
                let fa = a.as_f64().expect("numeric");
                let fb = b.as_f64().expect("numeric");
                fa.total_cmp(&fb)
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Time(a), Value::Time(b)) => a.cmp(b),
            (Value::Geo(a), Value::Geo(b)) => a
                .lat
                .total_cmp(&b.lat)
                .then_with(|| a.lon.total_cmp(&b.lon)),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality with `Int`/`Float` cross-comparison (used by join predicates
    /// and filter conditions, where `temperature = 25` should match `25.0`).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) => (*a as f64) == *b,
            (Value::Float(a), Value::Int(b)) => *a == (*b as f64),
            (a, b) => a == b,
        }
    }

    /// Parse a textual representation into the given target type.
    ///
    /// Used by the extraction layer when decoding heterogeneous wire formats
    /// and by validation-rule checks (paper §2: "data conform to given
    /// validation rules").
    pub fn parse_as(text: &str, ty: AttrType) -> Result<Value, SttError> {
        let text = text.trim();
        match ty {
            AttrType::Bool => match text.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" | "t" => Ok(Value::Bool(true)),
                "false" | "0" | "no" | "f" => Ok(Value::Bool(false)),
                _ => Err(SttError::Parse(format!("`{text}` is not a Bool"))),
            },
            AttrType::Int => text
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| SttError::Parse(format!("`{text}` is not an Int"))),
            AttrType::Float => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| SttError::Parse(format!("`{text}` is not a Float"))),
            AttrType::Str => Ok(Value::Str(text.to_string())),
            AttrType::Time => text
                .parse::<i64>()
                .map(|ms| Value::Time(Timestamp::from_millis(ms)))
                .map_err(|_| SttError::Parse(format!("`{text}` is not a Time (epoch ms)"))),
            AttrType::Geo => {
                let (lat, lon) = text
                    .split_once(',')
                    .ok_or_else(|| SttError::Parse(format!("`{text}` is not a Geo pair")))?;
                let lat = lat
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| SttError::Parse(format!("bad latitude in `{text}`")))?;
                let lon = lon
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| SttError::Parse(format!("bad longitude in `{text}`")))?;
                GeoPoint::new(lat, lon).map(Value::Geo)
            }
        }
    }

    /// Approximate in-memory footprint in bytes, used by the monitor's
    /// byte-throughput statistics and the network simulator's message sizing.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Time(_) => 8,
            Value::Str(s) => s.len(),
            Value::Geo(_) => 16,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Geo(g) => write!(f, "({}, {})", g.lat, g.lon),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Self {
        Value::Time(t)
    }
}
impl From<GeoPoint> for Value {
    fn from(g: GeoPoint) -> Self {
        Value::Geo(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_type_of_each_variant() {
        assert_eq!(Value::Null.attr_type(), None);
        assert_eq!(Value::Bool(true).attr_type(), Some(AttrType::Bool));
        assert_eq!(Value::Int(1).attr_type(), Some(AttrType::Int));
        assert_eq!(Value::Float(1.0).attr_type(), Some(AttrType::Float));
        assert_eq!(Value::Str("x".into()).attr_type(), Some(AttrType::Str));
        assert_eq!(
            Value::Time(Timestamp::from_millis(0)).attr_type(),
            Some(AttrType::Time)
        );
    }

    #[test]
    fn null_conforms_to_everything() {
        for ty in AttrType::ALL {
            assert!(Value::Null.conforms_to(ty), "{ty:?}");
        }
    }

    #[test]
    fn int_widens_to_float() {
        assert!(Value::Int(3).conforms_to(AttrType::Float));
        assert!(!Value::Float(3.0).conforms_to(AttrType::Int));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(4).as_f64().unwrap(), 4.0);
        assert_eq!(Value::Float(2.5).as_f64().unwrap(), 2.5);
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert!(Value::Str("x".into()).as_f64().is_err());
        assert_eq!(Value::Int(4).as_i64().unwrap(), 4);
        assert!(Value::Float(4.0).as_i64().is_err());
    }

    #[test]
    fn total_cmp_is_total_on_mixed_types() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(1),
            Value::Float(2.0),
            Value::Str("a".into()),
            Value::Time(Timestamp::from_millis(5)),
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn total_cmp_numeric_cross_type() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        assert_eq!(
            Value::Float(f64::NAN).total_cmp(&Value::Float(f64::INFINITY)),
            Ordering::Greater
        );
    }

    #[test]
    fn loose_eq_across_int_float() {
        assert!(Value::Int(25).loose_eq(&Value::Float(25.0)));
        assert!(Value::Float(25.0).loose_eq(&Value::Int(25)));
        assert!(!Value::Int(25).loose_eq(&Value::Float(25.5)));
        assert!(Value::Str("a".into()).loose_eq(&Value::Str("a".into())));
    }

    #[test]
    fn parse_each_type() {
        assert_eq!(
            Value::parse_as("true", AttrType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::parse_as("0", AttrType::Bool).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Value::parse_as(" 42 ", AttrType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_as("2.5", AttrType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::parse_as("hello", AttrType::Str).unwrap(),
            Value::Str("hello".into())
        );
        assert_eq!(
            Value::parse_as("1000", AttrType::Time).unwrap(),
            Value::Time(Timestamp::from_millis(1000))
        );
        let geo = Value::parse_as("34.69, 135.50", AttrType::Geo).unwrap();
        match geo {
            Value::Geo(g) => {
                assert!((g.lat - 34.69).abs() < 1e-9);
                assert!((g.lon - 135.50).abs() < 1e-9);
            }
            other => panic!("expected Geo, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse_as("maybe", AttrType::Bool).is_err());
        assert!(Value::parse_as("4.2", AttrType::Int).is_err());
        assert!(Value::parse_as("abc", AttrType::Float).is_err());
        assert!(Value::parse_as("91.0,0.0", AttrType::Geo).is_err()); // lat out of range
        assert!(Value::parse_as("nopair", AttrType::Geo).is_err());
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Null.byte_size(), 1);
        assert_eq!(Value::Int(0).byte_size(), 8);
        assert_eq!(Value::Str("abcd".into()).byte_size(), 4);
        assert_eq!(Value::Geo(GeoPoint::new(0.0, 0.0).unwrap()).byte_size(), 16);
    }
}
