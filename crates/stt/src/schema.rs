//! Per-sensor schemas.
//!
//! "We remark that data schema are not fixed but depend on the sensors"
//! (paper §3): every sensor advertises its own schema through the
//! publish/subscribe layer, and the dataflow validator propagates schemas
//! through operators. A [`Schema`] is an ordered list of named, typed
//! [`Field`]s, optionally annotated with a unit of measure.

use crate::error::SttError;
use crate::units::Unit;
use std::fmt;
use std::sync::Arc;

/// The static type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Boolean flag.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Str,
    /// Point in time.
    Time,
    /// Geographic position.
    Geo,
}

impl AttrType {
    /// All attribute types.
    pub const ALL: [AttrType; 6] = [
        AttrType::Bool,
        AttrType::Int,
        AttrType::Float,
        AttrType::Str,
        AttrType::Time,
        AttrType::Geo,
    ];

    /// True if a value of type `self` may appear where `target` is expected
    /// (identity, or the `Int` → `Float` widening).
    pub fn coercible_to(self, target: AttrType) -> bool {
        self == target || (self == AttrType::Int && target == AttrType::Float)
    }

    /// True if this type supports arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }

    /// Parse from the identifiers used in DSN documents and advertisements.
    pub fn parse(s: &str) -> Result<AttrType, SttError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bool" => Ok(AttrType::Bool),
            "int" => Ok(AttrType::Int),
            "float" => Ok(AttrType::Float),
            "str" | "string" | "text" => Ok(AttrType::Str),
            "time" | "timestamp" => Ok(AttrType::Time),
            "geo" | "point" => Ok(AttrType::Geo),
            other => Err(SttError::Parse(format!("unknown attribute type `{other}`"))),
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Bool => "bool",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "str",
            AttrType::Time => "time",
            AttrType::Geo => "geo",
        };
        f.write_str(s)
    }
}

/// One named attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name, unique within the schema.
    pub name: String,
    /// Static type.
    pub ty: AttrType,
    /// Unit of measure, when the attribute is a physical quantity.
    pub unit: Option<Unit>,
}

impl Field {
    /// A field with no unit annotation.
    pub fn new(name: &str, ty: AttrType) -> Field {
        Field {
            name: name.to_string(),
            ty,
            unit: None,
        }
    }

    /// A field carrying a physical quantity in `unit`.
    pub fn with_unit(name: &str, ty: AttrType, unit: Unit) -> Field {
        Field {
            name: name.to_string(),
            ty,
            unit: Some(unit),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)?;
        if let Some(u) = self.unit {
            write!(f, " [{u}]")?;
        }
        Ok(())
    }
}

/// Shared, immutable schema handle. Tuples reference their schema through
/// this to avoid copying field metadata per tuple.
pub type SchemaRef = Arc<Schema>;

/// An ordered collection of uniquely-named fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate attribute names.
    pub fn new(fields: Vec<Field>) -> Result<Schema, SttError> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(SttError::DuplicateAttribute(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// The empty schema.
    pub fn empty() -> Schema {
        Schema { fields: Vec::new() }
    }

    /// Wrap into a [`SchemaRef`].
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Positional index of the attribute `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, SttError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| SttError::UnknownAttribute(name.to_string()))
    }

    /// The field named `name`.
    pub fn field(&self, name: &str) -> Result<&Field, SttError> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// True if the schema has an attribute named `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// A new schema with `field` appended (used by Virtual Property:
    /// "a new attribute p is added to the schema of s", Table 1).
    pub fn with_field(&self, field: Field) -> Result<Schema, SttError> {
        if self.contains(&field.name) {
            return Err(SttError::DuplicateAttribute(field.name));
        }
        let mut fields = self.fields.clone();
        fields.push(field);
        Ok(Schema { fields })
    }

    /// A new schema keeping only the named attributes, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, SttError> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.field(n)?.clone());
        }
        Schema::new(fields)
    }

    /// Schema of the join of two streams: fields of `self` then fields of
    /// `other`, with colliding names from `other` prefixed `right_`.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let mut f = f.clone();
            if self.contains(&f.name) {
                f.name = format!("right_{}", f.name);
                // Extremely defensive: disambiguate repeatedly if needed.
                while fields.iter().any(|g| g.name == f.name) {
                    f.name.insert_str(0, "right_");
                }
            }
            fields.push(f);
        }
        Schema { fields }
    }

    /// True if every field of `self` appears in `other` with a coercible
    /// type. Used to check that a replacement sensor can substitute for a
    /// failed one (demo P3).
    pub fn subsumed_by(&self, other: &Schema) -> bool {
        self.fields.iter().all(|f| {
            other
                .field(&f.name)
                .is_ok_and(|g| g.ty.coercible_to(f.ty) || f.ty.coercible_to(g.ty))
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather_schema() -> Schema {
        Schema::new(vec![
            Field::with_unit("temperature", AttrType::Float, Unit::Celsius),
            Field::with_unit("humidity", AttrType::Float, Unit::Percent),
            Field::new("station", AttrType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", AttrType::Int),
            Field::new("a", AttrType::Float),
        ])
        .unwrap_err();
        assert_eq!(err, SttError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn lookup_by_name() {
        let s = weather_schema();
        assert_eq!(s.index_of("humidity").unwrap(), 1);
        assert_eq!(s.field("temperature").unwrap().unit, Some(Unit::Celsius));
        assert!(s.contains("station"));
        assert!(matches!(
            s.index_of("wind"),
            Err(SttError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn with_field_appends() {
        let s = weather_schema();
        let s2 = s
            .with_field(Field::with_unit(
                "apparent_temperature",
                AttrType::Float,
                Unit::Celsius,
            ))
            .unwrap();
        assert_eq!(s2.len(), 4);
        assert_eq!(s2.fields()[3].name, "apparent_temperature");
        // Original untouched.
        assert_eq!(s.len(), 3);
        // Duplicate rejected.
        assert!(s2
            .with_field(Field::new("humidity", AttrType::Int))
            .is_err());
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = weather_schema();
        let p = s.project(&["station", "temperature"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.fields()[0].name, "station");
        assert_eq!(p.fields()[1].name, "temperature");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn join_prefixes_collisions() {
        let left = weather_schema();
        let right = Schema::new(vec![
            Field::new("station", AttrType::Str),
            Field::with_unit("rain", AttrType::Float, Unit::MillimeterRain),
        ])
        .unwrap();
        let j = left.join(&right);
        assert_eq!(j.len(), 5);
        assert!(j.contains("station"));
        assert!(j.contains("right_station"));
        assert!(j.contains("rain"));
    }

    #[test]
    fn join_handles_pathological_collisions() {
        let left = Schema::new(vec![
            Field::new("x", AttrType::Int),
            Field::new("right_x", AttrType::Int),
        ])
        .unwrap();
        let right = Schema::new(vec![Field::new("x", AttrType::Int)]).unwrap();
        let j = left.join(&right);
        // x collides -> right_x collides too -> right_right_x.
        assert!(j.contains("right_right_x"));
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn coercibility() {
        assert!(AttrType::Int.coercible_to(AttrType::Float));
        assert!(!AttrType::Float.coercible_to(AttrType::Int));
        assert!(AttrType::Str.coercible_to(AttrType::Str));
        assert!(AttrType::Int.is_numeric());
        assert!(!AttrType::Geo.is_numeric());
    }

    #[test]
    fn subsumption() {
        let small = Schema::new(vec![Field::new("temperature", AttrType::Float)]).unwrap();
        let big = weather_schema();
        assert!(small.subsumed_by(&big));
        assert!(!big.subsumed_by(&small));
        // Int field satisfied by Float provider (and vice versa via coercion).
        let int_temp = Schema::new(vec![Field::new("temperature", AttrType::Int)]).unwrap();
        assert!(int_temp.subsumed_by(&big));
    }

    #[test]
    fn attr_type_parse_display_round_trip() {
        for ty in AttrType::ALL {
            assert_eq!(AttrType::parse(&ty.to_string()).unwrap(), ty);
        }
        assert_eq!(AttrType::parse("String").unwrap(), AttrType::Str);
        assert!(AttrType::parse("blob").is_err());
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![
            Field::with_unit("t", AttrType::Float, Unit::Celsius),
            Field::new("msg", AttrType::Str),
        ])
        .unwrap();
        assert_eq!(s.to_string(), "(t: float [celsius], msg: str)");
    }
}
