//! Units of measure and their conversions.
//!
//! The Transform operation's first job (requirement §2) is "changing the unit
//! of measure (e.g. from yards to meters)". Heterogeneous sensors report the
//! same physical quantity in different units — a US-sourced feed in
//! Fahrenheit, a Japanese one in Celsius — and streams must be normalised
//! before they can be joined or aggregated.
//!
//! Every [`Unit`] belongs to exactly one [`Quantity`]; conversion goes through
//! the quantity's base unit via an affine map `base = scale * value + offset`.

use crate::error::SttError;
use std::fmt;

/// A physical quantity (dimension). Units convert only within a quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantity {
    /// Thermodynamic temperature (base: Celsius).
    Temperature,
    /// Length / distance (base: metre).
    Length,
    /// Speed (base: metres per second).
    Speed,
    /// Pressure (base: hectopascal).
    Pressure,
    /// Precipitation depth (base: millimetre).
    Rainfall,
    /// Relative quantity in percent (base: percent).
    Ratio,
    /// Mass (base: kilogram).
    Mass,
}

/// A unit of measure attached to a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    // Temperature
    /// Degrees Celsius.
    Celsius,
    /// Degrees Fahrenheit.
    Fahrenheit,
    /// Kelvin.
    Kelvin,
    // Length
    /// Metres.
    Meter,
    /// Kilometres.
    Kilometer,
    /// International yards.
    Yard,
    /// International feet.
    Foot,
    /// Statute miles.
    Mile,
    /// Millimetres (as a length).
    Millimeter,
    // Speed
    /// Metres per second.
    MeterPerSecond,
    /// Kilometres per hour.
    KilometerPerHour,
    /// Miles per hour.
    MilePerHour,
    /// Knots.
    Knot,
    // Pressure
    /// Hectopascal (= millibar).
    Hectopascal,
    /// Kilopascal.
    Kilopascal,
    /// Millimetres of mercury.
    MillimeterOfMercury,
    // Rainfall
    /// Millimetres of precipitation.
    MillimeterRain,
    /// Inches of precipitation.
    InchRain,
    // Ratio
    /// Percent.
    Percent,
    /// Dimensionless fraction in `[0, 1]`.
    Fraction,
    // Mass
    /// Kilograms.
    Kilogram,
    /// Pounds (avoirdupois).
    Pound,
}

impl Unit {
    /// All supported units.
    pub const ALL: [Unit; 22] = [
        Unit::Celsius,
        Unit::Fahrenheit,
        Unit::Kelvin,
        Unit::Meter,
        Unit::Kilometer,
        Unit::Yard,
        Unit::Foot,
        Unit::Mile,
        Unit::Millimeter,
        Unit::MeterPerSecond,
        Unit::KilometerPerHour,
        Unit::MilePerHour,
        Unit::Knot,
        Unit::Hectopascal,
        Unit::Kilopascal,
        Unit::MillimeterOfMercury,
        Unit::MillimeterRain,
        Unit::InchRain,
        Unit::Percent,
        Unit::Fraction,
        Unit::Kilogram,
        Unit::Pound,
    ];

    /// The physical quantity this unit measures.
    pub fn quantity(self) -> Quantity {
        match self {
            Unit::Celsius | Unit::Fahrenheit | Unit::Kelvin => Quantity::Temperature,
            Unit::Meter
            | Unit::Kilometer
            | Unit::Yard
            | Unit::Foot
            | Unit::Mile
            | Unit::Millimeter => Quantity::Length,
            Unit::MeterPerSecond | Unit::KilometerPerHour | Unit::MilePerHour | Unit::Knot => {
                Quantity::Speed
            }
            Unit::Hectopascal | Unit::Kilopascal | Unit::MillimeterOfMercury => Quantity::Pressure,
            Unit::MillimeterRain | Unit::InchRain => Quantity::Rainfall,
            Unit::Percent | Unit::Fraction => Quantity::Ratio,
            Unit::Kilogram | Unit::Pound => Quantity::Mass,
        }
    }

    /// Affine map to the quantity's base unit: `base = scale * v + offset`.
    fn to_base(self) -> (f64, f64) {
        match self {
            // Temperature (base Celsius)
            Unit::Celsius => (1.0, 0.0),
            Unit::Fahrenheit => (5.0 / 9.0, -160.0 / 9.0),
            Unit::Kelvin => (1.0, -273.15),
            // Length (base metre)
            Unit::Meter => (1.0, 0.0),
            Unit::Kilometer => (1000.0, 0.0),
            Unit::Yard => (0.9144, 0.0),
            Unit::Foot => (0.3048, 0.0),
            Unit::Mile => (1609.344, 0.0),
            Unit::Millimeter => (0.001, 0.0),
            // Speed (base m/s)
            Unit::MeterPerSecond => (1.0, 0.0),
            Unit::KilometerPerHour => (1.0 / 3.6, 0.0),
            Unit::MilePerHour => (0.44704, 0.0),
            Unit::Knot => (0.514444, 0.0),
            // Pressure (base hPa)
            Unit::Hectopascal => (1.0, 0.0),
            Unit::Kilopascal => (10.0, 0.0),
            Unit::MillimeterOfMercury => (1.333_223_7, 0.0),
            // Rainfall (base mm)
            Unit::MillimeterRain => (1.0, 0.0),
            Unit::InchRain => (25.4, 0.0),
            // Ratio (base percent)
            Unit::Percent => (1.0, 0.0),
            Unit::Fraction => (100.0, 0.0),
            // Mass (base kg)
            Unit::Kilogram => (1.0, 0.0),
            Unit::Pound => (0.453_592_37, 0.0),
        }
    }

    /// Convert `v` expressed in `self` into `target`.
    ///
    /// Errors with [`SttError::IncompatibleUnits`] when the quantities differ.
    pub fn convert(self, v: f64, target: Unit) -> Result<f64, SttError> {
        if self == target {
            return Ok(v);
        }
        if self.quantity() != target.quantity() {
            return Err(SttError::IncompatibleUnits {
                from: self.to_string(),
                to: target.to_string(),
            });
        }
        let (sa, oa) = self.to_base();
        let (sb, ob) = target.to_base();
        // base = sa*v + oa ; target solves base = sb*t + ob.
        Ok((sa * v + oa - ob) / sb)
    }

    /// Canonical identifier used in schemas, expressions and DSN documents.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Celsius => "celsius",
            Unit::Fahrenheit => "fahrenheit",
            Unit::Kelvin => "kelvin",
            Unit::Meter => "m",
            Unit::Kilometer => "km",
            Unit::Yard => "yd",
            Unit::Foot => "ft",
            Unit::Mile => "mi",
            Unit::Millimeter => "mm",
            Unit::MeterPerSecond => "mps",
            Unit::KilometerPerHour => "kmph",
            Unit::MilePerHour => "mph",
            Unit::Knot => "knot",
            Unit::Hectopascal => "hpa",
            Unit::Kilopascal => "kpa",
            Unit::MillimeterOfMercury => "mmhg",
            Unit::MillimeterRain => "mm_rain",
            Unit::InchRain => "in_rain",
            Unit::Percent => "percent",
            Unit::Fraction => "fraction",
            Unit::Kilogram => "kg",
            Unit::Pound => "lb",
        }
    }

    /// Parse a unit identifier (the inverse of [`Unit::name`], plus common
    /// aliases like `C`, `F`, `yard`).
    pub fn parse(s: &str) -> Result<Unit, SttError> {
        let lower = s.trim().to_ascii_lowercase();
        // Exact canonical names first.
        if let Some(u) = Unit::ALL.iter().find(|u| u.name() == lower) {
            return Ok(*u);
        }
        match lower.as_str() {
            "c" | "°c" | "deg_c" => Ok(Unit::Celsius),
            "f" | "°f" | "deg_f" => Ok(Unit::Fahrenheit),
            "k" => Ok(Unit::Kelvin),
            "meter" | "meters" | "metre" | "metres" => Ok(Unit::Meter),
            "yard" | "yards" => Ok(Unit::Yard),
            "feet" | "foot" => Ok(Unit::Foot),
            "mile" | "miles" => Ok(Unit::Mile),
            "m/s" => Ok(Unit::MeterPerSecond),
            "km/h" | "kph" => Ok(Unit::KilometerPerHour),
            "knots" | "kt" => Ok(Unit::Knot),
            "mbar" | "millibar" => Ok(Unit::Hectopascal),
            "%" | "pct" => Ok(Unit::Percent),
            other => Err(SttError::Parse(format!("unknown unit `{other}`"))),
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn temperature_known_points() {
        assert!(close(
            Unit::Celsius.convert(0.0, Unit::Fahrenheit).unwrap(),
            32.0
        ));
        assert!(close(
            Unit::Celsius.convert(100.0, Unit::Fahrenheit).unwrap(),
            212.0
        ));
        assert!(close(
            Unit::Fahrenheit.convert(32.0, Unit::Celsius).unwrap(),
            0.0
        ));
        assert!(close(
            Unit::Celsius.convert(25.0, Unit::Kelvin).unwrap(),
            298.15
        ));
        assert!(close(
            Unit::Kelvin.convert(273.15, Unit::Celsius).unwrap(),
            0.0
        ));
    }

    #[test]
    fn yards_to_meters_paper_example() {
        // The paper's own example: "from yards to meters".
        assert!(close(
            Unit::Yard.convert(100.0, Unit::Meter).unwrap(),
            91.44
        ));
        assert!(close(
            Unit::Meter.convert(91.44, Unit::Yard).unwrap(),
            100.0
        ));
    }

    #[test]
    fn speed_conversions() {
        assert!(close(
            Unit::KilometerPerHour
                .convert(36.0, Unit::MeterPerSecond)
                .unwrap(),
            10.0
        ));
        assert!(close(
            Unit::MilePerHour
                .convert(60.0, Unit::KilometerPerHour)
                .unwrap(),
            96.56064
        ));
    }

    #[test]
    fn rainfall_and_pressure() {
        assert!(close(
            Unit::InchRain.convert(1.0, Unit::MillimeterRain).unwrap(),
            25.4
        ));
        assert!(close(
            Unit::Kilopascal
                .convert(101.325, Unit::Hectopascal)
                .unwrap(),
            1013.25
        ));
    }

    #[test]
    fn ratio_and_mass() {
        assert!(close(
            Unit::Fraction.convert(0.75, Unit::Percent).unwrap(),
            75.0
        ));
        assert!(close(
            Unit::Pound.convert(1.0, Unit::Kilogram).unwrap(),
            0.45359237
        ));
    }

    #[test]
    fn identity_conversion() {
        for u in Unit::ALL {
            assert!(close(u.convert(42.5, u).unwrap(), 42.5), "{u}");
        }
    }

    #[test]
    fn round_trip_all_pairs_within_quantity() {
        for a in Unit::ALL {
            for b in Unit::ALL {
                if a.quantity() == b.quantity() {
                    let out = a.convert(123.456, b).unwrap();
                    let back = b.convert(out, a).unwrap();
                    assert!((back - 123.456).abs() < 1e-6, "{a} -> {b} -> {a}: {back}");
                } else {
                    assert!(a.convert(1.0, b).is_err(), "{a} -> {b} should fail");
                }
            }
        }
    }

    #[test]
    fn parse_names_and_aliases() {
        for u in Unit::ALL {
            assert_eq!(Unit::parse(u.name()).unwrap(), u);
        }
        assert_eq!(Unit::parse("C").unwrap(), Unit::Celsius);
        assert_eq!(Unit::parse("yards").unwrap(), Unit::Yard);
        assert_eq!(Unit::parse("km/h").unwrap(), Unit::KilometerPerHour);
        assert_eq!(Unit::parse("%").unwrap(), Unit::Percent);
        assert!(Unit::parse("furlong").is_err());
    }

    #[test]
    fn quantities_partition_units() {
        // Every unit maps to exactly one quantity, and each quantity has at
        // least two units (otherwise conversion would be pointless).
        use std::collections::HashMap;
        let mut count: HashMap<_, usize> = HashMap::new();
        for u in Unit::ALL {
            *count.entry(u.quantity()).or_default() += 1;
        }
        assert!(count.values().all(|c| *c >= 2));
    }
}
