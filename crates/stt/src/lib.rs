//! # sl-stt — the Space–Time–Thematic (STT) multigranular data model
//!
//! StreamLoader sensors produce streams of tuples according to the
//! multigranular **space, time and thematic** data model (paper §3,
//! "Stream Processing Operations"). This crate provides:
//!
//! * [`Value`] / [`AttrType`] — the dynamically-typed attribute values carried
//!   by sensor tuples, together with coercion rules,
//! * [`Schema`] — per-sensor schemas (schemas are *not* global: every sensor
//!   advertises its own),
//! * [`Tuple`] — a row of values plus its STT metadata ([`SttMeta`]),
//! * [`Timestamp`] / [`Duration`] / [`TemporalGranularity`] — the temporal
//!   dimension and its granularity lattice,
//! * [`GeoPoint`] / [`CoordinateSystem`] / [`SpatialGranularity`] — the
//!   spatial dimension, coordinate conversion and spatial granules,
//! * [`Theme`] / [`ThemeTaxonomy`] — the thematic dimension,
//! * [`Unit`] / [`Quantity`] — units of measure and their conversions
//!   (requirement §2: "changing the unit of measure"),
//! * [`Event`] — the paper's *event* concept: "a value represented at a given
//!   spatio-temporal granularity for which thematic information is added".
//!
//! Everything downstream (expressions, operators, pub/sub, the warehouse)
//! builds on these types.
//!
//! ## Example
//!
//! Build a schema, attach STT metadata to a row of values, and read an
//! attribute back:
//!
//! ```
//! use sl_stt::{
//!     AttrType, Field, GeoPoint, Schema, SensorId, SttMeta, Theme, Timestamp, Tuple, Value,
//! };
//!
//! let schema = Schema::new(vec![Field::new("temperature", AttrType::Float)])
//!     .unwrap()
//!     .into_ref();
//! let tuple = Tuple::new(
//!     schema,
//!     vec![Value::Float(31.5)],
//!     SttMeta::new(
//!         Timestamp::from_civil(2016, 7, 1, 12, 0, 0),
//!         GeoPoint::new_unchecked(34.69, 135.50), // Osaka
//!         Theme::new("weather/temperature").unwrap(),
//!         SensorId(7),
//!     ),
//! )
//! .unwrap();
//! assert_eq!(tuple.get("temperature").unwrap(), &Value::Float(31.5));
//! ```
#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod schema;
pub mod sgran;
pub mod space;
pub mod theme;
pub mod time;
pub mod tuple;
pub mod units;
pub mod value;

pub use error::SttError;
pub use event::Event;
pub use schema::{AttrType, Field, Schema, SchemaRef};
pub use sgran::{SpatialGranularity, SpatialGranule};
pub use space::{BoundingBox, CoordinateSystem, GeoPoint};
pub use theme::{Theme, ThemeTaxonomy};
pub use time::{Duration, TemporalGranularity, TimeInterval, Timestamp};
pub use tuple::{SensorId, SttMeta, Tuple};
pub use units::{Quantity, Unit};
pub use value::Value;
