//! The thematic dimension: hierarchical theme paths and the theme taxonomy.
//!
//! Sensor data "are characterized both from the temporal, spatial and
//! thematic dimensions" (paper §1) — data about traffic jams vs data about
//! pollution carry different *themes*. Themes form a hierarchy
//! (`weather/temperature`, `social/tweet`, ...) so that a subscription to
//! `weather` matches every weather sub-theme, and the warehouse can roll up
//! by theme.

use crate::error::SttError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A hierarchical theme path, e.g. `weather/temperature`.
///
/// Segments are non-empty, lowercase-insensitive-compared, `/`-separated.
/// Cheap to clone (the path is reference counted).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Theme {
    path: Arc<str>,
}

impl Theme {
    /// Parse a theme path, validating that no segment is empty.
    pub fn new(path: &str) -> Result<Theme, SttError> {
        let trimmed = path.trim().trim_matches('/');
        if trimmed.is_empty() || trimmed.split('/').any(|seg| seg.trim().is_empty()) {
            return Err(SttError::InvalidTheme(path.to_string()));
        }
        let normalized: String = trimmed
            .split('/')
            .map(|s| s.trim().to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join("/");
        Ok(Theme {
            path: normalized.into(),
        })
    }

    /// The root theme used for streams with no thematic classification.
    pub fn unclassified() -> Theme {
        Theme {
            path: "unclassified".into(),
        }
    }

    /// The full path string.
    pub fn as_str(&self) -> &str {
        &self.path
    }

    /// The path segments, root first.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.path.split('/')
    }

    /// Number of segments (depth in the hierarchy).
    pub fn depth(&self) -> usize {
        self.segments().count()
    }

    /// True if `self` is `ancestor` itself or a descendant of it.
    ///
    /// `weather/temperature` is-a `weather`; this is the matching rule used
    /// by subscriptions and discovery queries.
    pub fn is_a(&self, ancestor: &Theme) -> bool {
        let a = ancestor.as_str();
        self.path.as_ref() == a
            || (self.path.len() > a.len()
                && self.path.starts_with(a)
                && self.path.as_bytes()[a.len()] == b'/')
    }

    /// The parent theme, or `None` at the root.
    pub fn parent(&self) -> Option<Theme> {
        self.path.rfind('/').map(|i| Theme {
            path: self.path[..i].into(),
        })
    }

    /// Extend the path with a child segment.
    pub fn child(&self, segment: &str) -> Result<Theme, SttError> {
        Theme::new(&format!("{}/{}", self.path, segment))
    }
}

impl fmt::Display for Theme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.path)
    }
}

impl std::str::FromStr for Theme {
    type Err = SttError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Theme::new(s)
    }
}

/// A registry of known themes with descriptions — the vocabulary offered to
/// users when organising sensors "according to different criteria
/// (temporal/spatial, type/location)" (requirement §2).
///
/// The taxonomy is prefix-closed: registering `weather/rain/torrential`
/// implicitly registers `weather` and `weather/rain`.
#[derive(Debug, Default, Clone)]
pub struct ThemeTaxonomy {
    entries: BTreeMap<Theme, String>,
}

impl ThemeTaxonomy {
    /// Empty taxonomy.
    pub fn new() -> ThemeTaxonomy {
        ThemeTaxonomy::default()
    }

    /// The default taxonomy for the paper's scenario: physical weather
    /// phenomena, social streams and traffic.
    pub fn standard() -> ThemeTaxonomy {
        let mut t = ThemeTaxonomy::new();
        for (path, desc) in [
            ("weather/temperature", "air temperature measurements"),
            ("weather/humidity", "relative humidity measurements"),
            ("weather/rain", "precipitation measurements"),
            ("weather/rain/torrential", "torrential rain events"),
            ("weather/wind", "wind speed and direction"),
            ("weather/pressure", "atmospheric pressure"),
            ("weather/apparent_temperature", "perceived temperature"),
            ("water/level", "sea and river water level"),
            ("social/tweet", "geo-tagged microblog messages"),
            ("traffic/congestion", "road congestion levels"),
            ("traffic/accident", "accident reports"),
            ("transit/train", "train schedule status"),
            ("transit/flight", "flight schedule status"),
        ] {
            t.register(Theme::new(path).expect("static theme"), desc);
        }
        t
    }

    /// Register a theme (and, implicitly, all its ancestors).
    pub fn register(&mut self, theme: Theme, description: &str) {
        let mut ancestor = theme.parent();
        while let Some(a) = ancestor {
            self.entries.entry(a.clone()).or_default();
            ancestor = a.parent();
        }
        self.entries.insert(theme, description.to_string());
    }

    /// True if the theme (or an ancestor prefix of it) is registered.
    pub fn contains(&self, theme: &Theme) -> bool {
        self.entries.contains_key(theme)
    }

    /// The description of a registered theme.
    pub fn description(&self, theme: &Theme) -> Option<&str> {
        self.entries.get(theme).map(String::as_str)
    }

    /// All registered themes under (and including) `root`, sorted.
    pub fn subtree<'a>(&'a self, root: &'a Theme) -> impl Iterator<Item = &'a Theme> + 'a {
        self.entries.keys().filter(move |t| t.is_a(root))
    }

    /// All registered themes, sorted.
    pub fn all(&self) -> impl Iterator<Item = &Theme> {
        self.entries.keys()
    }

    /// Number of registered themes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no theme is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises() {
        let t = Theme::new("  /Weather/Temperature/ ").unwrap();
        assert_eq!(t.as_str(), "weather/temperature");
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn rejects_empty_and_blank_segments() {
        assert!(Theme::new("").is_err());
        assert!(Theme::new("/").is_err());
        assert!(Theme::new("a//b").is_err());
        assert!(Theme::new("a/ /b").is_err());
    }

    #[test]
    fn is_a_matching() {
        let weather = Theme::new("weather").unwrap();
        let temp = Theme::new("weather/temperature").unwrap();
        let weatherman = Theme::new("weatherman").unwrap();
        assert!(temp.is_a(&weather));
        assert!(temp.is_a(&temp));
        assert!(!weather.is_a(&temp));
        // Prefix must respect segment boundaries.
        assert!(!weatherman.is_a(&weather));
    }

    #[test]
    fn parent_and_child() {
        let t = Theme::new("weather/rain/torrential").unwrap();
        assert_eq!(t.parent().unwrap().as_str(), "weather/rain");
        assert_eq!(t.parent().unwrap().parent().unwrap().as_str(), "weather");
        assert!(t.parent().unwrap().parent().unwrap().parent().is_none());
        let c = Theme::new("weather").unwrap().child("wind").unwrap();
        assert_eq!(c.as_str(), "weather/wind");
    }

    #[test]
    fn taxonomy_prefix_closed() {
        let mut tax = ThemeTaxonomy::new();
        tax.register(Theme::new("a/b/c").unwrap(), "leaf");
        assert!(tax.contains(&Theme::new("a").unwrap()));
        assert!(tax.contains(&Theme::new("a/b").unwrap()));
        assert!(tax.contains(&Theme::new("a/b/c").unwrap()));
        assert!(!tax.contains(&Theme::new("a/b/c/d").unwrap()));
        assert_eq!(tax.len(), 3);
    }

    #[test]
    fn standard_taxonomy_has_scenario_themes() {
        let tax = ThemeTaxonomy::standard();
        for path in [
            "weather/temperature",
            "weather/rain/torrential",
            "social/tweet",
            "traffic/congestion",
        ] {
            assert!(tax.contains(&Theme::new(path).unwrap()), "{path}");
        }
        let weather = Theme::new("weather").unwrap();
        let under_weather: Vec<_> = tax.subtree(&weather).collect();
        assert!(under_weather.len() >= 7);
        assert!(under_weather.iter().all(|t| t.is_a(&weather)));
    }

    #[test]
    fn descriptions() {
        let tax = ThemeTaxonomy::standard();
        assert_eq!(
            tax.description(&Theme::new("social/tweet").unwrap()),
            Some("geo-tagged microblog messages")
        );
        // Implicit ancestors have empty descriptions.
        assert_eq!(tax.description(&Theme::new("social").unwrap()), Some(""));
    }

    #[test]
    fn from_str_impl() {
        let t: Theme = "Weather/Wind".parse().unwrap();
        assert_eq!(t.as_str(), "weather/wind");
    }
}
