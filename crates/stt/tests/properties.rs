//! Property-based tests for the STT data model invariants.

use proptest::prelude::*;
use sl_stt::{
    BoundingBox, GeoPoint, SpatialGranularity, TemporalGranularity, Timestamp, Unit, Value,
};

fn arb_timestamp() -> impl Strategy<Value = Timestamp> {
    // ±~270 years around the epoch.
    (-8_500_000_000_000i64..8_500_000_000_000i64).prop_map(Timestamp::from_millis)
}

fn arb_fixed_gran() -> impl Strategy<Value = TemporalGranularity> {
    prop_oneof![
        Just(TemporalGranularity::Millisecond),
        Just(TemporalGranularity::Second),
        Just(TemporalGranularity::Minute),
        Just(TemporalGranularity::Hour),
        Just(TemporalGranularity::Day),
        Just(TemporalGranularity::Week),
        (1u64..10_000_000).prop_map(TemporalGranularity::Custom),
    ]
}

fn arb_gran() -> impl Strategy<Value = TemporalGranularity> {
    prop_oneof![
        arb_fixed_gran(),
        Just(TemporalGranularity::Month),
        Just(TemporalGranularity::Year),
    ]
}

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..=180.0).prop_map(|(lat, lon)| GeoPoint::new_unchecked(lat, lon))
}

proptest! {
    /// Every timestamp lies inside the interval of its granule, for every
    /// granularity (including calendar ones).
    #[test]
    fn granule_interval_contains_timestamp(t in arb_timestamp(), g in arb_gran()) {
        let idx = g.granule_of(t);
        let iv = g.granule_interval(idx);
        prop_assert!(iv.contains(t), "{g}: granule {idx} = {iv} missing {t}");
    }

    /// Granule intervals tile the line: the interval of granule i+1 starts
    /// exactly where granule i ends.
    #[test]
    fn granules_tile(t in arb_timestamp(), g in arb_gran()) {
        let idx = g.granule_of(t);
        let a = g.granule_interval(idx);
        let b = g.granule_interval(idx + 1);
        prop_assert_eq!(a.end, b.start);
    }

    /// Coarsening is consistent with direct granule computation.
    #[test]
    fn coarsen_consistent(t in arb_timestamp(), a in arb_gran(), b in arb_gran()) {
        if a.finer_or_equal(b) {
            let fine = a.granule_of(t);
            let coarse = a.coarsen(fine, b).unwrap();
            prop_assert_eq!(coarse, b.granule_of(a.granule_interval(fine).start));
        }
    }

    /// finer_or_equal is a partial order: reflexive and transitive on the
    /// named granularities.
    #[test]
    fn finer_or_equal_transitive(t in arb_gran(), u in arb_gran(), v in arb_gran()) {
        prop_assert!(t.finer_or_equal(t));
        if t.finer_or_equal(u) && u.finer_or_equal(v) {
            prop_assert!(t.finer_or_equal(v), "{t} <= {u} <= {v}");
        }
    }

    /// meet() really is a lower bound of both arguments.
    #[test]
    fn meet_is_lower_bound(a in arb_gran(), b in arb_gran()) {
        let m = a.meet(b);
        prop_assert!(m.finer_or_equal(a), "meet({a},{b})={m} !<= {a}");
        prop_assert!(m.finer_or_equal(b), "meet({a},{b})={m} !<= {b}");
    }

    /// truncate() is idempotent and never moves a timestamp forward.
    #[test]
    fn truncate_idempotent(t in arb_timestamp(), g in arb_gran()) {
        let once = g.truncate(t);
        prop_assert!(once <= t);
        prop_assert_eq!(g.truncate(once), once);
    }

    /// Civil date round-trips through from_civil.
    #[test]
    fn civil_round_trip(t in arb_timestamp()) {
        let (y, mo, d) = t.civil_date();
        let (h, mi, s) = t.time_of_day();
        let rebuilt = Timestamp::from_civil(y, mo, d, h, mi, s);
        // Equal up to sub-second precision.
        prop_assert_eq!(rebuilt.as_millis(), t.as_millis() - t.as_millis().rem_euclid(1000));
    }

    /// Spatial: a point is always inside its granule's extent, at every level.
    #[test]
    fn spatial_granule_contains_point(p in arb_point(), level in 0u8..=18) {
        let g = SpatialGranularity::grid(level);
        let cell = g.granule_of(&p);
        prop_assert!(cell.extent().contains(&p));
    }

    /// Spatial coarsening commutes with direct computation.
    #[test]
    fn spatial_coarsen_commutes(p in arb_point(), fine in 6u8..=16, coarse in 0u8..=5) {
        let fg = SpatialGranularity::grid(fine);
        let cg = SpatialGranularity::grid(coarse);
        let via = fg.granule_of(&p).coarsen(cg).unwrap();
        prop_assert_eq!(via, cg.granule_of(&p));
    }

    /// Haversine distance is a semi-metric: symmetric, zero on identity,
    /// and bounded by half the Earth's circumference.
    #[test]
    fn haversine_semi_metric(a in arb_point(), b in arb_point()) {
        let d1 = a.haversine_distance_m(&b);
        let d2 = b.haversine_distance_m(&a);
        prop_assert!((d1 - d2).abs() < 1e-6);
        prop_assert!(d1 >= 0.0);
        prop_assert!(d1 <= 20_100_000.0, "distance {d1}");
        prop_assert!(a.haversine_distance_m(&a) < 1e-9);
    }

    /// Bounding boxes: union contains both inputs' corners.
    #[test]
    fn bbox_union_contains(a1 in arb_point(), a2 in arb_point(), b1 in arb_point(), b2 in arb_point()) {
        let x = BoundingBox::from_corners(a1, a2);
        let y = BoundingBox::from_corners(b1, b2);
        let u = x.union(&y);
        for p in [x.min, x.max, y.min, y.max] {
            prop_assert!(u.contains(&p));
        }
    }

    /// Unit conversion round-trips within the same quantity.
    #[test]
    fn unit_round_trip(v in -1e6f64..1e6, ai in 0usize..22, bi in 0usize..22) {
        let a = Unit::ALL[ai];
        let b = Unit::ALL[bi];
        if a.quantity() == b.quantity() {
            let out = a.convert(v, b).unwrap();
            let back = b.convert(out, a).unwrap();
            let tol = 1e-6 * v.abs().max(1.0);
            prop_assert!((back - v).abs() < tol, "{a}->{b}: {v} -> {out} -> {back}");
        } else {
            prop_assert!(a.convert(v, b).is_err());
        }
    }

    /// Value::total_cmp is antisymmetric (a total order needs this).
    #[test]
    fn value_cmp_antisymmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    }

    /// parse_as(display) round-trips ints and bools.
    #[test]
    fn value_parse_display_ints(i in any::<i64>()) {
        let v = Value::Int(i);
        let parsed = Value::parse_as(&v.to_string(), sl_stt::AttrType::Int).unwrap();
        prop_assert_eq!(parsed, v);
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Str),
        (-1_000_000_000i64..1_000_000_000).prop_map(|ms| Value::Time(Timestamp::from_millis(ms))),
    ]
}
