//! Declarative, virtual-time chaos schedules.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s: *at* a virtual-time
//! offset, perform one [`FaultAction`]. The engine installs the plan into its
//! discrete-event queue, so faults interleave with sensor emissions and
//! deliveries exactly the same way on every run — chaos tests are replayable
//! bit for bit.
//!
//! Identifiers are raw (`u32` links/nodes, `u64` sensors) so the crate stays
//! free of `sl-netsim`/`sl-pubsub` dependencies; the engine converts them to
//! its typed ids when actuating.

use sl_stt::Duration;

/// One injectable fault (or the repair undoing it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail a network link (traffic reroutes or is retried/dropped).
    LinkDown {
        /// The link id.
        link: u32,
    },
    /// Restore a previously failed link.
    LinkUp {
        /// The link id.
        link: u32,
    },
    /// Crash a node: its links carry no traffic, hosted operator processes
    /// are migrated and their checkpointed state restored elsewhere.
    NodeCrash {
        /// The node id.
        node: u32,
    },
    /// Bring a crashed node back (processes do not move back automatically).
    NodeRestart {
        /// The node id.
        node: u32,
    },
    /// Silent stall: the sensor stops emitting *without* leaving the broker.
    /// Only the liveness watchdog can detect this.
    SensorStall {
        /// The sensor id.
        sensor: u64,
    },
    /// Clean dropout: the sensor leaves the broker (leave notifications
    /// fire) and stops emitting.
    SensorDropout {
        /// The sensor id.
        sensor: u64,
    },
    /// Resume a stalled or dropped-out sensor; an expired sensor re-publishes
    /// its advertisement (rejoin) on its next emission.
    SensorResume {
        /// The sensor id.
        sensor: u64,
    },
    /// Start corrupting the sensor's wire payloads (truncated bytes that
    /// fail extraction).
    CorruptStart {
        /// The sensor id.
        sensor: u64,
    },
    /// Stop corrupting the sensor's payloads.
    CorruptStop {
        /// The sensor id.
        sensor: u64,
    },
    /// Skew the sensor's clock: emitted tuples are stamped `skew_ms` away
    /// from virtual time (positive = fast clock, negative = slow).
    ClockSkew {
        /// The sensor id.
        sensor: u64,
        /// Signed skew in milliseconds (0 clears the skew).
        skew_ms: i64,
    },
    /// Start a traffic burst: the sensor emits `factor` times faster than
    /// its advertised period (factor 1 is a no-op), deterministically
    /// provoking overload at its downstream operators.
    BurstStart {
        /// The sensor id.
        sensor: u64,
        /// Rate multiplier (clamped to at least 1 by the engine).
        factor: u32,
    },
    /// End a burst: the sensor re-arms at its advertised period on its
    /// next emission.
    BurstStop {
        /// The sensor id.
        sensor: u64,
    },
}

impl FaultAction {
    /// Short kind name, used as a metrics-counter suffix.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultAction::LinkDown { .. } => "link_down",
            FaultAction::LinkUp { .. } => "link_up",
            FaultAction::NodeCrash { .. } => "node_crash",
            FaultAction::NodeRestart { .. } => "node_restart",
            FaultAction::SensorStall { .. } => "sensor_stall",
            FaultAction::SensorDropout { .. } => "sensor_dropout",
            FaultAction::SensorResume { .. } => "sensor_resume",
            FaultAction::CorruptStart { .. } => "corrupt_start",
            FaultAction::CorruptStop { .. } => "corrupt_stop",
            FaultAction::ClockSkew { .. } => "clock_skew",
            FaultAction::BurstStart { .. } => "burst_start",
            FaultAction::BurstStop { .. } => "burst_stop",
        }
    }
}

/// A fault scheduled at a virtual-time offset from plan installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from the instant the plan is installed.
    pub at: Duration,
    /// What happens.
    pub action: FaultAction,
}

/// A chaos schedule: fault events ordered by offset (ties keep insertion
/// order, matching the engine's FIFO event queue).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule a raw action at `at`.
    pub fn at(mut self, at: Duration, action: FaultAction) -> FaultPlan {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Fail a link at `at` and restore it `outage` later (a flap window).
    pub fn link_flap(self, link: u32, at: Duration, outage: Duration) -> FaultPlan {
        self.at(at, FaultAction::LinkDown { link })
            .at(at + outage, FaultAction::LinkUp { link })
    }

    /// Crash a node at `at`.
    pub fn node_crash(self, node: u32, at: Duration) -> FaultPlan {
        self.at(at, FaultAction::NodeCrash { node })
    }

    /// Restart a node at `at`.
    pub fn node_restart(self, node: u32, at: Duration) -> FaultPlan {
        self.at(at, FaultAction::NodeRestart { node })
    }

    /// Silently stall a sensor at `at`, resuming `outage` later.
    pub fn sensor_stall(self, sensor: u64, at: Duration, outage: Duration) -> FaultPlan {
        self.at(at, FaultAction::SensorStall { sensor })
            .at(at + outage, FaultAction::SensorResume { sensor })
    }

    /// Drop a sensor out (clean leave) at `at`, resuming `outage` later.
    pub fn sensor_dropout(self, sensor: u64, at: Duration, outage: Duration) -> FaultPlan {
        self.at(at, FaultAction::SensorDropout { sensor })
            .at(at + outage, FaultAction::SensorResume { sensor })
    }

    /// Corrupt a sensor's payloads between `at` and `at + window`.
    pub fn corrupt_window(self, sensor: u64, at: Duration, window: Duration) -> FaultPlan {
        self.at(at, FaultAction::CorruptStart { sensor })
            .at(at + window, FaultAction::CorruptStop { sensor })
    }

    /// Skew a sensor's clock by `skew_ms` starting at `at`.
    pub fn clock_skew(self, sensor: u64, at: Duration, skew_ms: i64) -> FaultPlan {
        self.at(at, FaultAction::ClockSkew { sensor, skew_ms })
    }

    /// Multiply a sensor's emission rate by `factor` between `at` and
    /// `at + window` (the overload-provoking burst).
    pub fn burst(self, sensor: u64, at: Duration, window: Duration, factor: u32) -> FaultPlan {
        self.at(at, FaultAction::BurstStart { sensor, factor })
            .at(at + window, FaultAction::BurstStop { sensor })
    }

    /// Events sorted by offset, ties in insertion order (stable sort).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at.as_millis());
        sorted
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The largest offset in the plan (when the chaos is over).
    pub fn horizon(&self) -> Duration {
        self.events
            .iter()
            .map(|e| e.at)
            .max_by_key(|d| d.as_millis())
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_expands_to_down_then_up() {
        let plan = FaultPlan::new().link_flap(3, Duration::from_secs(10), Duration::from_secs(5));
        let evs = plan.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at, Duration::from_secs(10));
        assert_eq!(evs[0].action, FaultAction::LinkDown { link: 3 });
        assert_eq!(evs[1].at, Duration::from_secs(15));
        assert_eq!(evs[1].action, FaultAction::LinkUp { link: 3 });
        assert_eq!(plan.horizon(), Duration::from_secs(15));
    }

    #[test]
    fn events_sort_stably_by_offset() {
        let plan = FaultPlan::new()
            .node_crash(1, Duration::from_secs(20))
            .sensor_stall(7, Duration::from_secs(5), Duration::from_secs(15))
            .at(Duration::from_secs(20), FaultAction::LinkDown { link: 0 });
        let evs = plan.events();
        let offsets: Vec<u64> = evs.iter().map(|e| e.at.as_millis() / 1000).collect();
        assert_eq!(offsets, vec![5, 20, 20, 20]);
        // The two t=20 events keep insertion order: crash before link-down.
        assert_eq!(evs[1].action, FaultAction::NodeCrash { node: 1 });
        assert_eq!(evs[3].action, FaultAction::LinkDown { link: 0 });
    }

    #[test]
    fn builders_cover_every_action() {
        let plan = FaultPlan::new()
            .link_flap(0, Duration::from_secs(1), Duration::from_secs(1))
            .node_crash(1, Duration::from_secs(2))
            .node_restart(1, Duration::from_secs(3))
            .sensor_stall(2, Duration::from_secs(4), Duration::from_secs(1))
            .sensor_dropout(3, Duration::from_secs(6), Duration::from_secs(1))
            .corrupt_window(4, Duration::from_secs(8), Duration::from_secs(1))
            .clock_skew(5, Duration::from_secs(10), -250)
            .burst(6, Duration::from_secs(11), Duration::from_secs(2), 3);
        // flap(2) + crash(1) + restart(1) + stall(2) + dropout(2) +
        // corrupt(2) + skew(1) + burst(2) = 13 scheduled events.
        assert_eq!(plan.len(), 13);
        assert!(!plan.is_empty());
        let kinds: Vec<&str> = plan.events().iter().map(|e| e.action.kind()).collect();
        for k in [
            "link_down",
            "link_up",
            "node_crash",
            "node_restart",
            "sensor_stall",
            "sensor_dropout",
            "sensor_resume",
            "corrupt_start",
            "corrupt_stop",
            "clock_skew",
            "burst_start",
            "burst_stop",
        ] {
            assert!(kinds.contains(&k), "missing {k}");
        }
    }

    #[test]
    fn empty_plan() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.horizon(), Duration::ZERO);
        assert!(plan.events().is_empty());
    }
}
