//! # sl-faults — fault injection and recovery primitives
//!
//! StreamLoader's demo P3 shows the system reacting to changing "network
//! performances" and plug-and-play sensors; this crate supplies the
//! machinery to *provoke* those situations deterministically and to recover
//! from them:
//!
//! * [`FaultPlan`] — a declarative, virtual-time chaos schedule (link flap
//!   windows, node crash/restart, sensor stall/dropout, corrupt payloads,
//!   per-sensor clock skew). The engine consumes the plan as ordinary
//!   scheduled events, so a chaos run replays identically for a given plan
//!   and engine seed.
//! * [`RetryPolicy`] — bounded exponential backoff in virtual time, used by
//!   the engine's delivery retry queue.
//! * [`DeadLetterQueue`] / [`DropReason`] — the terminal destination of
//!   tuples that could not be delivered, with a drop-reason taxonomy.
//!
//! Like `sl-obs`, this crate is std-only and depends only on `sl-stt`, so
//! any layer can use it without cycles. The fault model and the determinism
//! guarantee are documented in `DESIGN.md` ("Fault model & recovery").

pub mod breaker;
pub mod dlq;
pub mod plan;
pub mod retry;

pub use breaker::{BreakerDecision, BreakerState, CircuitBreaker};
pub use dlq::{DeadLetterQueue, DropReason, ShedPolicy};
pub use plan::{FaultAction, FaultEvent, FaultPlan};
pub use retry::RetryPolicy;
