//! Circuit breakers for delivery paths.
//!
//! A [`CircuitBreaker`] guards one delivery path (producer → consumer)
//! against retry storms: after `threshold` consecutive failures the breaker
//! *opens* and deliveries fail fast to the dead-letter queue instead of
//! burning retry budgets against a route that is known to be dead. After a
//! virtual-time `cooldown` the breaker goes *half-open* and admits exactly
//! one probe delivery; a successful probe closes the breaker, a failed one
//! re-opens it for another cooldown.
//!
//! All state transitions are driven by virtual time and caller-reported
//! outcomes — no wall clocks, no randomness — so breaker behaviour replays
//! identically run to run.

use sl_stt::{Duration, Timestamp};

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: deliveries flow, consecutive failures are counted.
    Closed,
    /// Tripped: deliveries fail fast until the cooldown elapses.
    Open,
    /// Cooling down ended: one probe delivery is admitted to test the path.
    HalfOpen,
}

/// What a delivery attempt should do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// The breaker is closed: attempt the delivery normally.
    Allow,
    /// The breaker is half-open and this attempt is the probe.
    Probe,
    /// The breaker is open (or a probe is already in flight): dead-letter
    /// without attempting.
    FailFast,
}

/// A per-path circuit breaker (closed → open → half-open).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive failures that trip the breaker (clamped ≥ 1).
    threshold: u32,
    /// Open-state dwell before a half-open probe is admitted.
    cooldown: Duration,
    consecutive_failures: u32,
    opened_at: Timestamp,
    probe_in_flight: bool,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures and
    /// probing after `cooldown` of open time.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            opened_at: Timestamp::EPOCH,
            probe_in_flight: false,
        }
    }

    /// Current state (an open breaker reports `Open` until a [`decide`]
    /// call observes the cooldown elapsed).
    ///
    /// [`decide`]: CircuitBreaker::decide
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate a delivery attempt at virtual time `now`.
    pub fn decide(&mut self, now: Timestamp) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::Open => {
                if now.since(self.opened_at).as_millis() >= self.cooldown.as_millis() {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = false;
                    self.probe_decision()
                } else {
                    BreakerDecision::FailFast
                }
            }
            BreakerState::HalfOpen => self.probe_decision(),
        }
    }

    fn probe_decision(&mut self) -> BreakerDecision {
        if self.probe_in_flight {
            BreakerDecision::FailFast
        } else {
            self.probe_in_flight = true;
            BreakerDecision::Probe
        }
    }

    /// Record a successful delivery on this path; true if the success
    /// closed a previously open/half-open breaker.
    pub fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.probe_in_flight = false;
        if self.state != BreakerState::Closed {
            self.state = BreakerState::Closed;
            true
        } else {
            false
        }
    }

    /// Record a failed delivery attempt at `now`; true if the failure
    /// opened the breaker (tripped it, or failed a half-open probe).
    pub fn on_failure(&mut self, now: Timestamp) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to open, cooldown restarts.
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.probe_in_flight = false;
                true
            }
            // Failures reported while already open (e.g. in-flight retries
            // landing late) keep the original cooldown clock.
            BreakerState::Open => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(5));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(t(1)));
        assert!(!b.on_failure(t(2)));
        assert_eq!(b.decide(t(2)), BreakerDecision::Allow);
        assert!(b.on_failure(t(3)));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.decide(t(4)), BreakerDecision::FailFast);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, Duration::from_secs(5));
        b.on_failure(t(1));
        assert!(!b.on_success());
        b.on_failure(t(2));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let mut b = CircuitBreaker::new(1, Duration::from_secs(5));
        assert!(b.on_failure(t(0)));
        assert_eq!(b.decide(t(4)), BreakerDecision::FailFast);
        // Cooldown elapsed: one probe, everyone else fails fast.
        assert_eq!(b.decide(t(5)), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.decide(t(5)), BreakerDecision::FailFast);
        // The probe succeeds: closed again.
        assert!(b.on_success());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.decide(t(6)), BreakerDecision::Allow);
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_cooldown() {
        let mut b = CircuitBreaker::new(1, Duration::from_secs(5));
        b.on_failure(t(0));
        assert_eq!(b.decide(t(5)), BreakerDecision::Probe);
        assert!(b.on_failure(t(5)));
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown counts from the probe failure, not the original trip.
        assert_eq!(b.decide(t(9)), BreakerDecision::FailFast);
        assert_eq!(b.decide(t(10)), BreakerDecision::Probe);
    }

    #[test]
    fn late_failures_while_open_keep_the_cooldown_clock() {
        let mut b = CircuitBreaker::new(1, Duration::from_secs(5));
        b.on_failure(t(0));
        assert!(!b.on_failure(t(3)));
        // Still probes at the original deadline.
        assert_eq!(b.decide(t(5)), BreakerDecision::Probe);
    }

    #[test]
    fn zero_threshold_clamps_to_one() {
        let mut b = CircuitBreaker::new(0, Duration::ZERO);
        assert!(b.on_failure(t(0)));
        // Zero cooldown: probe immediately.
        assert_eq!(b.decide(t(0)), BreakerDecision::Probe);
    }
}
