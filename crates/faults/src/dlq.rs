//! Dead-letter queues and the drop-reason taxonomy.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// How an overloaded ingress queue sheds work (the overload-control layer's
/// drop disciplines; `Block` never sheds and so has no entry here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShedPolicy {
    /// The oldest in-flight tuple was condemned to admit the newest.
    Oldest,
    /// The incoming tuple was dropped, keeping what was already queued.
    Newest,
    /// A seeded coin decided which end of the queue to shed.
    Sample,
    /// Preempted at the global in-flight cap by a higher-priority dataflow.
    Priority,
}

impl ShedPolicy {
    /// Stable snake_case name, used as a metrics-key segment.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::Oldest => "oldest",
            ShedPolicy::Newest => "newest",
            ShedPolicy::Sample => "sample",
            ShedPolicy::Priority => "priority",
        }
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a tuple could not be delivered. Every terminal drop in the engine is
/// classified under exactly one of these.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// No network path between producer and consumer, and retrying is
    /// disabled.
    NoRoute,
    /// Retries were attempted but the retry budget ran out.
    RetriesExhausted,
    /// The delivery target disappeared mid-retry (undeployed or removed).
    TargetVanished,
    /// The wire payload failed extraction (corrupt or truncated bytes).
    CorruptPayload,
    /// The producing or consuming node was down at send time.
    NodeDown,
    /// Lost to a torn durable-log tail: appended but not yet fsynced when
    /// the process died, truncated away on recovery.
    TornTail,
    /// Shed by the overload-control layer: the target operator's bounded
    /// ingress queue was full (or the global in-flight cap was hit) and the
    /// configured policy sacrificed this tuple.
    Shed {
        /// The drop discipline that condemned the tuple.
        policy: ShedPolicy,
        /// The `deployment/operator` whose full queue shed it.
        operator: String,
    },
    /// Fail-fast: the delivery path's circuit breaker was open, so the
    /// tuple was dead-lettered without burning a retry budget.
    BreakerOpen,
}

impl DropReason {
    /// One exemplar per reason, in declaration order (the `Shed` exemplar
    /// carries an empty operator — real sheds name the full queue).
    pub const ALL: [DropReason; 8] = [
        DropReason::NoRoute,
        DropReason::RetriesExhausted,
        DropReason::TargetVanished,
        DropReason::CorruptPayload,
        DropReason::NodeDown,
        DropReason::TornTail,
        DropReason::Shed {
            policy: ShedPolicy::Oldest,
            operator: String::new(),
        },
        DropReason::BreakerOpen,
    ];

    /// Stable snake_case kind name, used as a metrics-key suffix (every
    /// `Shed` variant shares the `"shed"` kind).
    pub fn name(&self) -> &'static str {
        match self {
            DropReason::NoRoute => "no_route",
            DropReason::RetriesExhausted => "retries_exhausted",
            DropReason::TargetVanished => "target_vanished",
            DropReason::CorruptPayload => "corrupt_payload",
            DropReason::NodeDown => "node_down",
            DropReason::TornTail => "torn_tail",
            DropReason::Shed { .. } => "shed",
            DropReason::BreakerOpen => "breaker_open",
        }
    }

    /// Fully qualified metrics key: the kind name, extended for `Shed` with
    /// the policy and the operator whose queue shed the tuple
    /// (`shed/oldest/d/hot`).
    pub fn metric_key(&self) -> String {
        match self {
            DropReason::Shed { policy, operator } if !operator.is_empty() => {
                format!("shed/{policy}/{operator}")
            }
            DropReason::Shed { policy, .. } => format!("shed/{policy}"),
            other => other.name().to_string(),
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A bounded dead-letter queue.
///
/// Terminally undeliverable items land here with their [`DropReason`]; the
/// per-reason counters are monotonic even when old entries are evicted to
/// respect the capacity bound (eviction drops the *oldest* entry — the DLQ
/// is a diagnostic window, the counters are the ground truth).
#[derive(Debug)]
pub struct DeadLetterQueue<T> {
    entries: VecDeque<(DropReason, T)>,
    capacity: usize,
    by_reason: BTreeMap<DropReason, u64>,
    total: u64,
    evicted: u64,
}

impl<T> DeadLetterQueue<T> {
    /// A queue retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> DeadLetterQueue<T> {
        DeadLetterQueue {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            by_reason: BTreeMap::new(),
            total: 0,
            evicted: 0,
        }
    }

    /// Record a dead letter.
    pub fn push(&mut self, reason: DropReason, item: T) {
        self.total += 1;
        *self.by_reason.entry(reason.clone()).or_insert(0) += 1;
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back((reason, item));
    }

    /// Account a loss whose payload no longer exists (e.g. a record cut
    /// from a torn log tail during crash recovery): bumps the counters —
    /// the ground truth — without retaining an entry.
    pub fn note(&mut self, reason: DropReason) {
        self.total += 1;
        *self.by_reason.entry(reason).or_insert(0) += 1;
    }

    /// Entries currently retained (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &(DropReason, T)> {
        self.entries.iter()
    }

    /// Number of entries currently retained.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was ever dead-lettered *and* the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime count of dead letters, including evicted ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lifetime count for one reason.
    pub fn count(&self, reason: DropReason) -> u64 {
        self.by_reason.get(&reason).copied().unwrap_or(0)
    }

    /// Lifetime count across every [`DropReason::Shed`] variant (the total
    /// loss attributable to the overload-control layer).
    pub fn shed_total(&self) -> u64 {
        self.by_reason
            .iter()
            .filter(|(r, _)| matches!(r, DropReason::Shed { .. }))
            .map(|(_, n)| n)
            .sum()
    }

    /// Lifetime counts per reason (only reasons seen at least once).
    pub fn by_reason(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        self.by_reason.iter().map(|(r, n)| (r.clone(), *n))
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drain all retained entries (counters are untouched).
    pub fn drain(&mut self) -> Vec<(DropReason, T)> {
        self.entries.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut q: DeadLetterQueue<&str> = DeadLetterQueue::new(10);
        assert!(q.is_empty());
        q.push(DropReason::NoRoute, "a");
        q.push(DropReason::NoRoute, "b");
        q.push(DropReason::CorruptPayload, "c");
        assert_eq!(q.depth(), 3);
        assert_eq!(q.total(), 3);
        assert_eq!(q.count(DropReason::NoRoute), 2);
        assert_eq!(q.count(DropReason::CorruptPayload), 1);
        assert_eq!(q.count(DropReason::RetriesExhausted), 0);
        let reasons: Vec<_> = q.by_reason().collect();
        assert_eq!(
            reasons,
            vec![(DropReason::NoRoute, 2), (DropReason::CorruptPayload, 1)]
        );
    }

    #[test]
    fn capacity_evicts_oldest_but_counters_persist() {
        let mut q: DeadLetterQueue<u32> = DeadLetterQueue::new(2);
        for i in 0..5 {
            q.push(DropReason::RetriesExhausted, i);
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.evicted(), 3);
        assert_eq!(q.total(), 5);
        assert_eq!(q.count(DropReason::RetriesExhausted), 5);
        let retained: Vec<u32> = q.iter().map(|(_, v)| *v).collect();
        assert_eq!(retained, vec![3, 4]);
    }

    #[test]
    fn drain_keeps_counters() {
        let mut q: DeadLetterQueue<()> = DeadLetterQueue::new(4);
        q.push(DropReason::TargetVanished, ());
        let drained = q.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, DropReason::TargetVanished);
        assert!(q.is_empty());
        assert_eq!(q.total(), 1);
    }

    #[test]
    fn reason_names_are_stable() {
        for r in DropReason::ALL {
            assert!(!r.name().is_empty());
            assert_eq!(r.to_string(), r.name());
        }
        assert_eq!(DropReason::NodeDown.name(), "node_down");
        assert_eq!(DropReason::BreakerOpen.name(), "breaker_open");
    }

    #[test]
    fn shed_reason_carries_policy_and_operator() {
        let shed = DropReason::Shed {
            policy: ShedPolicy::Oldest,
            operator: "d/hot".into(),
        };
        assert_eq!(shed.name(), "shed");
        assert_eq!(shed.metric_key(), "shed/oldest/d/hot");
        assert_eq!(DropReason::NoRoute.metric_key(), "no_route");
        let mut q: DeadLetterQueue<()> = DeadLetterQueue::new(4);
        q.push(shed.clone(), ());
        q.push(shed.clone(), ());
        q.push(
            DropReason::Shed {
                policy: ShedPolicy::Priority,
                operator: "d/cold".into(),
            },
            (),
        );
        q.push(DropReason::NoRoute, ());
        // Per-variant counters stay distinct; shed_total sums every Shed.
        assert_eq!(q.count(shed), 2);
        assert_eq!(q.shed_total(), 3);
        assert_eq!(q.total(), 4);
    }

    #[test]
    fn zero_capacity_clamped() {
        let q: DeadLetterQueue<()> = DeadLetterQueue::new(0);
        assert_eq!(q.capacity(), 1);
    }
}
