//! Bounded exponential backoff for delivery retries.

use sl_stt::Duration;

/// A retry policy: how many times to re-attempt a failed delivery and how
/// long to wait between attempts (exponential backoff, capped).
///
/// Backoff is computed in *virtual* time and is fully deterministic — no
/// jitter — so chaos runs replay identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum delivery attempts after the initial failure (0 disables
    /// retrying entirely).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per subsequent attempt.
    pub multiplier: u32,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// The default policy: 6 attempts starting at 500 ms, doubling, capped
    /// at 10 s — a retry budget of roughly half a minute of virtual time.
    pub fn new() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(500),
            multiplier: 2,
            max_backoff: Duration::from_secs(10),
        }
    }

    /// A policy that never retries (failures go straight to the DLQ).
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 0,
            base_backoff: Duration::ZERO,
            multiplier: 1,
            max_backoff: Duration::ZERO,
        }
    }

    /// True if at least one retry is allowed.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }

    /// Backoff before retry number `attempt` (0-based):
    /// `min(base * multiplier^attempt, max_backoff)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let mut d = self.base_backoff;
        for _ in 0..attempt {
            d = d.saturating_mul(self.multiplier as u64);
            if d.as_millis() >= self.max_backoff.as_millis() {
                return self.max_backoff;
            }
        }
        if d.as_millis() > self.max_backoff.as_millis() {
            self.max_backoff
        } else {
            d
        }
    }

    /// Total virtual time spent backing off if every attempt is used — the
    /// *retry budget*. An outage shorter than this is survivable.
    pub fn budget(&self) -> Duration {
        let mut total = Duration::ZERO;
        for a in 0..self.max_attempts {
            total = total + self.backoff(a);
        }
        total
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::new();
        assert_eq!(p.backoff(0), Duration::from_millis(500));
        assert_eq!(p.backoff(1), Duration::from_secs(1));
        assert_eq!(p.backoff(2), Duration::from_secs(2));
        assert_eq!(p.backoff(3), Duration::from_secs(4));
        assert_eq!(p.backoff(4), Duration::from_secs(8));
        // 16 s exceeds the 10 s cap.
        assert_eq!(p.backoff(5), Duration::from_secs(10));
        assert_eq!(p.backoff(50), Duration::from_secs(10));
    }

    #[test]
    fn budget_sums_backoffs() {
        let p = RetryPolicy::new();
        // 0.5 + 1 + 2 + 4 + 8 + 10 = 25.5 s
        assert_eq!(p.budget(), Duration::from_millis(25_500));
    }

    #[test]
    fn disabled_never_retries() {
        let p = RetryPolicy::disabled();
        assert!(!p.enabled());
        assert_eq!(p.max_attempts, 0);
        assert_eq!(p.budget(), Duration::ZERO);
        assert!(RetryPolicy::default().enabled());
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::new();
        for a in 0..10 {
            assert_eq!(p.backoff(a), p.backoff(a));
        }
    }
}
