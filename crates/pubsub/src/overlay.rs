//! A distributed broker overlay: a tree of brokers with subscription-based
//! routing and covering-based pruning.
//!
//! Models the "distributed publish/subscribe communication system" of
//! reference 3: subscriptions installed at one broker propagate through
//! the tree so that advertisements published anywhere reach every matching
//! subscriber, while links carrying no matching subscription are spared the
//! traffic. The covering optimisation suppresses propagation of a
//! subscription along a direction that already carries a covering one.

use crate::filter::SubscriptionFilter;
use crate::message::SensorAdvertisement;
use crate::PubSubError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a broker in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BrokerId(pub u32);

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "broker#{}", self.0)
    }
}

/// A delivery produced by routing a publication through the overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The broker where the matching subscription lives.
    pub broker: BrokerId,
    /// The subscriber's local subscription tag at that broker.
    pub local_sub: u64,
    /// Overlay hops the publication travelled to reach it.
    pub hops: usize,
}

#[derive(Debug, Default)]
struct BrokerNode {
    neighbours: BTreeSet<u32>,
    /// Local subscriptions: tag -> filter.
    local: BTreeMap<u64, SubscriptionFilter>,
    /// Remote interest per neighbour: filters reachable via that neighbour.
    remote: BTreeMap<u32, Vec<SubscriptionFilter>>,
}

/// The broker overlay tree.
#[derive(Debug, Default)]
pub struct BrokerOverlay {
    brokers: Vec<BrokerNode>,
    next_tag: u64,
    covering_enabled: bool,
    /// Count of subscription-propagation messages (for the ablation bench).
    propagation_msgs: u64,
}

impl BrokerOverlay {
    /// An overlay with `n` brokers, no links, covering optimisation on.
    pub fn new(n: usize) -> BrokerOverlay {
        BrokerOverlay {
            brokers: (0..n).map(|_| BrokerNode::default()).collect(),
            next_tag: 0,
            covering_enabled: true,
            propagation_msgs: 0,
        }
    }

    /// Enable or disable covering-based pruning (ablation knob).
    pub fn set_covering(&mut self, enabled: bool) {
        self.covering_enabled = enabled;
    }

    /// Subscription-propagation messages sent so far.
    pub fn propagation_msgs(&self) -> u64 {
        self.propagation_msgs
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// True if the overlay has no brokers.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    fn check(&self, b: BrokerId) -> Result<(), PubSubError> {
        if (b.0 as usize) < self.brokers.len() {
            Ok(())
        } else {
            Err(PubSubError::UnknownBroker(b.0))
        }
    }

    /// Connect two brokers. The overlay must remain acyclic (tree); adding a
    /// link between already-connected components is rejected.
    pub fn link(&mut self, a: BrokerId, b: BrokerId) -> Result<(), PubSubError> {
        self.check(a)?;
        self.check(b)?;
        if a == b || self.connected(a, b) {
            return Err(PubSubError::InvalidOverlayLink { child: b.0 });
        }
        self.brokers[a.0 as usize].neighbours.insert(b.0);
        self.brokers[b.0 as usize].neighbours.insert(a.0);
        Ok(())
    }

    fn connected(&self, a: BrokerId, b: BrokerId) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![a.0];
        seen.insert(a.0);
        while let Some(n) = stack.pop() {
            if n == b.0 {
                return true;
            }
            for nb in &self.brokers[n as usize].neighbours {
                if seen.insert(*nb) {
                    stack.push(*nb);
                }
            }
        }
        false
    }

    /// Install a subscription at broker `at`. The filter floods through the
    /// tree (pruned by covering when enabled) so publications anywhere can
    /// find their way back.
    pub fn subscribe(
        &mut self,
        at: BrokerId,
        filter: SubscriptionFilter,
    ) -> Result<u64, PubSubError> {
        self.check(at)?;
        let tag = self.next_tag;
        self.next_tag += 1;
        self.brokers[at.0 as usize]
            .local
            .insert(tag, filter.clone());
        // Flood the filter outward from `at`.
        let mut queue: Vec<(u32, u32)> = self.brokers[at.0 as usize]
            .neighbours
            .iter()
            .map(|nb| (at.0, *nb))
            .collect();
        while let Some((from, to)) = queue.pop() {
            // At broker `to`, interest via neighbour `from` gains `filter`.
            let node = &mut self.brokers[to as usize];
            let entry = node.remote.entry(from).or_default();
            if self.covering_enabled && entry.iter().any(|f| f.covers(&filter)) {
                // A covering filter already flows this way; prune.
                continue;
            }
            entry.push(filter.clone());
            self.propagation_msgs += 1;
            let onward: Vec<(u32, u32)> = self.brokers[to as usize]
                .neighbours
                .iter()
                .filter(|nb| **nb != from)
                .map(|nb| (to, *nb))
                .collect();
            queue.extend(onward);
        }
        Ok(tag)
    }

    /// Route a publication entering at broker `at`: returns every delivery
    /// (matching local subscription anywhere in the tree) with hop counts,
    /// plus the number of overlay messages spent.
    pub fn publish(
        &self,
        at: BrokerId,
        ad: &SensorAdvertisement,
    ) -> Result<(Vec<Delivery>, u64), PubSubError> {
        self.check(at)?;
        let mut deliveries = Vec::new();
        let mut msgs = 0u64;
        // BFS guided by remote-interest tables.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((at.0, u32::MAX, 0usize));
        while let Some((cur, from, hops)) = queue.pop_front() {
            let node = &self.brokers[cur as usize];
            for (tag, f) in &node.local {
                if f.matches(ad) {
                    deliveries.push(Delivery {
                        broker: BrokerId(cur),
                        local_sub: *tag,
                        hops,
                    });
                }
            }
            for nb in &node.neighbours {
                if *nb == from {
                    continue;
                }
                // Forward only if some filter with interest via `cur` (from
                // the perspective of `nb`) matches. The neighbour's remote
                // table keyed by `cur` holds the filters that flowed from
                // beyond it toward `nb`... but interest tables point the
                // other way: nb.remote[cur] is what nb learned *from* cur.
                // For forwarding decisions we use our own view: does any
                // subscription living beyond `nb` match? That is recorded in
                // self.remote[nb] at broker `cur`.
                let interested = node
                    .remote
                    .get(nb)
                    .is_some_and(|fs| fs.iter().any(|f| f.matches(ad)));
                if interested {
                    msgs += 1;
                    queue.push_back((*nb, cur, hops + 1));
                }
            }
        }
        Ok((deliveries, msgs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::SensorKind;
    use sl_netsim::NodeId;
    use sl_stt::{AttrType, Duration, Field, GeoPoint, Schema, SensorId, Theme};

    fn ad(theme: &str) -> SensorAdvertisement {
        SensorAdvertisement {
            id: SensorId(1),
            name: "s".into(),
            kind: SensorKind::Physical,
            schema: Schema::new(vec![Field::new("v", AttrType::Float)])
                .unwrap()
                .into_ref(),
            theme: Theme::new(theme).unwrap(),
            period: Duration::from_secs(1),
            location: Some(GeoPoint::new_unchecked(34.7, 135.5)),
            node: NodeId(0),
        }
    }

    fn weather() -> SubscriptionFilter {
        SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap())
    }

    /// A line overlay 0 - 1 - 2 - 3.
    fn line4() -> BrokerOverlay {
        let mut o = BrokerOverlay::new(4);
        o.link(BrokerId(0), BrokerId(1)).unwrap();
        o.link(BrokerId(1), BrokerId(2)).unwrap();
        o.link(BrokerId(2), BrokerId(3)).unwrap();
        o
    }

    #[test]
    fn local_delivery_zero_hops() {
        let mut o = line4();
        let tag = o.subscribe(BrokerId(2), weather()).unwrap();
        let (deliveries, _) = o.publish(BrokerId(2), &ad("weather/rain")).unwrap();
        assert_eq!(
            deliveries,
            vec![Delivery {
                broker: BrokerId(2),
                local_sub: tag,
                hops: 0
            }]
        );
    }

    #[test]
    fn remote_delivery_counts_hops() {
        let mut o = line4();
        let tag = o.subscribe(BrokerId(3), weather()).unwrap();
        let (deliveries, msgs) = o.publish(BrokerId(0), &ad("weather/rain")).unwrap();
        assert_eq!(
            deliveries,
            vec![Delivery {
                broker: BrokerId(3),
                local_sub: tag,
                hops: 3
            }]
        );
        assert_eq!(msgs, 3);
    }

    #[test]
    fn non_matching_publication_travels_nowhere() {
        let mut o = line4();
        o.subscribe(BrokerId(3), weather()).unwrap();
        let (deliveries, msgs) = o.publish(BrokerId(0), &ad("social/tweet")).unwrap();
        assert!(deliveries.is_empty());
        assert_eq!(msgs, 0, "links without matching interest must be spared");
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let mut o = BrokerOverlay::new(4);
        // Star: 0 center.
        o.link(BrokerId(0), BrokerId(1)).unwrap();
        o.link(BrokerId(0), BrokerId(2)).unwrap();
        o.link(BrokerId(0), BrokerId(3)).unwrap();
        o.subscribe(BrokerId(1), weather()).unwrap();
        o.subscribe(BrokerId(2), weather()).unwrap();
        let (deliveries, msgs) = o.publish(BrokerId(3), &ad("weather/rain")).unwrap();
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|d| d.hops == 2));
        // 3 -> 0 -> {1, 2}: three messages.
        assert_eq!(msgs, 3);
    }

    #[test]
    fn covering_prunes_propagation() {
        let mut with = line4();
        with.subscribe(BrokerId(0), weather()).unwrap();
        with.subscribe(
            BrokerId(0),
            weather().with_kind(SensorKind::Physical), // covered by the first
        )
        .unwrap();
        let mut without = line4();
        without.set_covering(false);
        without.subscribe(BrokerId(0), weather()).unwrap();
        without
            .subscribe(BrokerId(0), weather().with_kind(SensorKind::Physical))
            .unwrap();
        assert!(with.propagation_msgs() < without.propagation_msgs());
        // Both still deliver correctly.
        let (d1, _) = with.publish(BrokerId(3), &ad("weather/rain")).unwrap();
        let (d2, _) = without.publish(BrokerId(3), &ad("weather/rain")).unwrap();
        assert_eq!(d1.len(), 2);
        assert_eq!(d2.len(), 2);
    }

    #[test]
    fn tree_invariant_enforced() {
        let mut o = BrokerOverlay::new(3);
        o.link(BrokerId(0), BrokerId(1)).unwrap();
        o.link(BrokerId(1), BrokerId(2)).unwrap();
        // Closing the triangle would create a cycle.
        assert!(o.link(BrokerId(2), BrokerId(0)).is_err());
        // Self-link rejected.
        assert!(o.link(BrokerId(0), BrokerId(0)).is_err());
        // Unknown broker rejected.
        assert!(o.link(BrokerId(0), BrokerId(9)).is_err());
    }

    #[test]
    fn subscribe_after_disconnected_broker() {
        let mut o = BrokerOverlay::new(3);
        o.link(BrokerId(0), BrokerId(1)).unwrap();
        // Broker 2 is isolated: subscriptions there see only local traffic.
        let tag = o.subscribe(BrokerId(2), SubscriptionFilter::any()).unwrap();
        let (d, _) = o.publish(BrokerId(2), &ad("weather")).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].local_sub, tag);
        let (d, _) = o.publish(BrokerId(0), &ad("weather")).unwrap();
        assert!(d.is_empty());
    }
}
