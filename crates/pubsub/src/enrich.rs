//! Spatio-temporal enrichment of sensor tuples.
//!
//! "Whenever a sensor is not able to produce the spatio-temporal information
//! of the produced data, this information is added by the Publish-Subscribe
//! system that we adopt in our architecture" (paper §3). Enrichment fills a
//! tuple's missing location from the sensor's advertised position, clamps
//! obviously-wrong timestamps to the receive time, and normalises the theme
//! to the advertised one.

use crate::message::SensorAdvertisement;
use sl_stt::{Duration, Timestamp, Tuple};

/// Policy knobs for enrichment.
#[derive(Debug, Clone, Copy)]
pub struct EnrichPolicy {
    /// Tuples stamped further than this into the future (relative to the
    /// receive time) get re-stamped to the receive time — sensors with
    /// drifting clocks are common in heterogeneous fleets.
    pub max_future_skew: Duration,
    /// Replace a tuple's theme with the advertisement's when they disagree.
    pub normalize_theme: bool,
}

impl Default for EnrichPolicy {
    fn default() -> Self {
        EnrichPolicy {
            max_future_skew: Duration::from_secs(60),
            normalize_theme: true,
        }
    }
}

/// What enrichment changed about a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnrichReport {
    /// The location was filled in from the advertisement.
    pub located: bool,
    /// The timestamp was clamped.
    pub restamped: bool,
    /// The theme was replaced.
    pub rethemed: bool,
}

/// Enrich `tuple` in place using the sensor's advertisement and the
/// engine-side receive time. Returns what was changed.
pub fn enrich(
    tuple: &mut Tuple,
    ad: &SensorAdvertisement,
    received_at: Timestamp,
    policy: &EnrichPolicy,
) -> EnrichReport {
    let mut report = EnrichReport::default();
    if tuple.meta.location.is_none() {
        if let Some(p) = ad.location {
            tuple.meta.location = Some(p);
            report.located = true;
        }
    }
    if tuple.meta.timestamp > received_at + policy.max_future_skew {
        tuple.meta.timestamp = received_at;
        report.restamped = true;
    }
    if policy.normalize_theme && tuple.meta.theme != ad.theme {
        tuple.meta.theme = ad.theme.clone();
        report.rethemed = true;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::SensorKind;
    use sl_netsim::NodeId;
    use sl_stt::{AttrType, Field, GeoPoint, Schema, SensorId, SttMeta, Theme, Value};

    fn ad() -> SensorAdvertisement {
        SensorAdvertisement {
            id: SensorId(1),
            name: "s".into(),
            kind: SensorKind::Physical,
            schema: Schema::new(vec![Field::new("v", AttrType::Float)])
                .unwrap()
                .into_ref(),
            theme: Theme::new("weather/temperature").unwrap(),
            period: Duration::from_secs(1),
            location: Some(GeoPoint::new_unchecked(34.7, 135.5)),
            node: NodeId(0),
        }
    }

    fn bare_tuple(ts: Timestamp) -> Tuple {
        Tuple::new(
            Schema::new(vec![Field::new("v", AttrType::Float)])
                .unwrap()
                .into_ref(),
            vec![Value::Float(1.0)],
            SttMeta::without_location(ts, Theme::unclassified(), SensorId(1)),
        )
        .unwrap()
    }

    #[test]
    fn fills_missing_location() {
        let mut t = bare_tuple(Timestamp::from_secs(100));
        let r = enrich(
            &mut t,
            &ad(),
            Timestamp::from_secs(100),
            &EnrichPolicy::default(),
        );
        assert!(r.located);
        assert_eq!(t.meta.location, ad().location);
    }

    #[test]
    fn keeps_existing_location() {
        let mut t = bare_tuple(Timestamp::from_secs(100));
        let own = GeoPoint::new_unchecked(35.0, 136.0);
        t.meta.location = Some(own);
        let r = enrich(
            &mut t,
            &ad(),
            Timestamp::from_secs(100),
            &EnrichPolicy::default(),
        );
        assert!(!r.located);
        assert_eq!(t.meta.location, Some(own));
    }

    #[test]
    fn clamps_future_timestamps() {
        let recv = Timestamp::from_secs(100);
        let mut t = bare_tuple(Timestamp::from_secs(500));
        let r = enrich(&mut t, &ad(), recv, &EnrichPolicy::default());
        assert!(r.restamped);
        assert_eq!(t.meta.timestamp, recv);
        // Slight skew within tolerance is preserved.
        let mut t = bare_tuple(Timestamp::from_secs(130));
        let r = enrich(&mut t, &ad(), recv, &EnrichPolicy::default());
        assert!(!r.restamped);
        assert_eq!(t.meta.timestamp, Timestamp::from_secs(130));
    }

    #[test]
    fn normalizes_theme() {
        let mut t = bare_tuple(Timestamp::from_secs(1));
        let r = enrich(
            &mut t,
            &ad(),
            Timestamp::from_secs(1),
            &EnrichPolicy::default(),
        );
        assert!(r.rethemed);
        assert_eq!(t.meta.theme.as_str(), "weather/temperature");
        // Disabled by policy.
        let mut t = bare_tuple(Timestamp::from_secs(1));
        let policy = EnrichPolicy {
            normalize_theme: false,
            ..Default::default()
        };
        let r = enrich(&mut t, &ad(), Timestamp::from_secs(1), &policy);
        assert!(!r.rethemed);
        assert_eq!(t.meta.theme, Theme::unclassified());
    }

    #[test]
    fn sensor_without_position_cannot_locate() {
        let mut a = ad();
        a.location = None;
        let mut t = bare_tuple(Timestamp::from_secs(1));
        let r = enrich(
            &mut t,
            &a,
            Timestamp::from_secs(1),
            &EnrichPolicy::default(),
        );
        assert!(!r.located);
        assert!(t.meta.location.is_none());
    }
}
