//! # sl-pubsub — distributed publish/subscribe for sensor discovery
//!
//! "Sensors should be handled by means of a publish-subscribe system in
//! order to handle the dynamicity with which they can join and leave the
//! network. [...] Each time a sensor is published, its type, schema, and
//! frequency of data generation are made available to subscribers"
//! (paper §2–§3). This crate provides:
//!
//! * [`message::SensorAdvertisement`] — what a sensor publishes about itself,
//! * [`filter::SubscriptionFilter`] — content-based filters over
//!   advertisements (theme, area, kind, schema requirements, name globs),
//! * [`registry::SensorRegistry`] — the directory: publish/unpublish,
//!   discovery queries and the organisation criteria of requirement §2
//!   (by theme, by hosting node, by spatial cell),
//! * [`broker::Broker`] — subscription matching with join/leave
//!   notifications,
//! * [`overlay::BrokerOverlay`] — a broker tree with subscription-based
//!   routing (the "distributed event routing" of paper reference 3),
//! * [`enrich`] — spatio-temporal enrichment of tuples from sensors that
//!   cannot produce their own position (paper §3).

pub mod broker;
pub mod credit;
pub mod enrich;
pub mod filter;
pub mod message;
pub mod overlay;
pub mod registry;

pub use broker::{Broker, BrokerEvent, SubscriptionId};
pub use credit::CreditTable;
pub use filter::SubscriptionFilter;
pub use message::{SensorAdvertisement, SensorKind};
pub use overlay::{BrokerId, BrokerOverlay};
pub use registry::SensorRegistry;

use std::fmt;

/// Errors from the publish/subscribe layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PubSubError {
    /// The sensor id is not currently published.
    UnknownSensor(u64),
    /// A sensor with this id is already published.
    DuplicateSensor(u64),
    /// The subscription id is not active.
    UnknownSubscription(u64),
    /// The broker id does not exist in the overlay.
    UnknownBroker(u32),
    /// Adding this overlay link would create a cycle or multi-parent node.
    InvalidOverlayLink {
        /// Offending child broker.
        child: u32,
    },
}

impl fmt::Display for PubSubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PubSubError::UnknownSensor(id) => write!(f, "unknown sensor #{id}"),
            PubSubError::DuplicateSensor(id) => write!(f, "sensor #{id} already published"),
            PubSubError::UnknownSubscription(id) => write!(f, "unknown subscription #{id}"),
            PubSubError::UnknownBroker(id) => write!(f, "unknown broker #{id}"),
            PubSubError::InvalidOverlayLink { child } => {
                write!(f, "broker #{child} already has a parent")
            }
        }
    }
}

impl std::error::Error for PubSubError {}
