//! A single publish/subscribe broker: subscriptions, matching, and
//! join/leave notification events.
//!
//! The dataflow engine subscribes with a [`SubscriptionFilter`] per dataflow
//! source; when sensors join or leave (demo P3 "plug-and-play new sensors"),
//! the broker emits [`BrokerEvent`]s to every affected subscriber.

use crate::credit::CreditTable;
use crate::filter::SubscriptionFilter;
use crate::message::SensorAdvertisement;
use crate::registry::SensorRegistry;
use crate::PubSubError;
use sl_obs::{Metrics, MetricsSnapshot, Stopwatch};
use sl_stt::{SensorId, Timestamp};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an active subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// Notification delivered to a subscriber.
#[derive(Debug, Clone)]
pub enum BrokerEvent {
    /// A sensor matching the subscription joined.
    SensorJoined {
        /// The affected subscription.
        subscription: SubscriptionId,
        /// The new sensor's advertisement.
        ad: SensorAdvertisement,
    },
    /// A sensor matching the subscription left.
    SensorLeft {
        /// The affected subscription.
        subscription: SubscriptionId,
        /// The departed sensor.
        sensor: SensorId,
    },
}

/// A broker: a registry plus active subscriptions.
#[derive(Debug, Default)]
pub struct Broker {
    registry: SensorRegistry,
    subscriptions: BTreeMap<u64, SubscriptionFilter>,
    next_sub: u64,
    /// Liveness watchdog: virtual time each sensor last produced a sample
    /// (seeded at publish).
    last_seen: BTreeMap<u64, Timestamp>,
    /// Backpressure: which sensors currently hold generation credit.
    credits: CreditTable,
    /// Observability: publish/unpublish match latency and event counters.
    metrics: Metrics,
}

impl Broker {
    /// A broker with an empty registry.
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Immutable access to the directory.
    pub fn registry(&self) -> &SensorRegistry {
        &self.registry
    }

    /// Register a subscription; the returned id tags future events.
    pub fn subscribe(&mut self, filter: SubscriptionFilter) -> SubscriptionId {
        let id = self.next_sub;
        self.next_sub += 1;
        self.subscriptions.insert(id, filter);
        self.metrics.counter("subscribes").inc();
        SubscriptionId(id)
    }

    /// Drop a subscription.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), PubSubError> {
        self.subscriptions
            .remove(&id.0)
            .map(|_| ())
            .ok_or(PubSubError::UnknownSubscription(id.0))
    }

    /// The filter of an active subscription.
    pub fn filter_of(&self, id: SubscriptionId) -> Result<&SubscriptionFilter, PubSubError> {
        self.subscriptions
            .get(&id.0)
            .ok_or(PubSubError::UnknownSubscription(id.0))
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Publish a sensor, returning the notifications to deliver (one per
    /// matching subscription, in subscription order).
    pub fn publish(&mut self, ad: SensorAdvertisement) -> Result<Vec<BrokerEvent>, PubSubError> {
        self.registry.publish(ad.clone())?;
        let sw = Stopwatch::start();
        let events: Vec<BrokerEvent> = self
            .subscriptions
            .iter()
            .filter(|(_, f)| f.matches(&ad))
            .map(|(id, _)| BrokerEvent::SensorJoined {
                subscription: SubscriptionId(*id),
                ad: ad.clone(),
            })
            .collect();
        self.metrics.hist("match_us").record(sw.elapsed_us());
        self.metrics.counter("publishes").inc();
        self.metrics
            .counter("notifications")
            .add(events.len() as u64);
        Ok(events)
    }

    /// Unpublish a sensor, returning leave notifications for subscriptions
    /// that were matching it.
    pub fn unpublish(&mut self, id: SensorId) -> Result<Vec<BrokerEvent>, PubSubError> {
        let ad = self.registry.unpublish(id)?;
        self.last_seen.remove(&id.0);
        let sw = Stopwatch::start();
        let events: Vec<BrokerEvent> = self
            .subscriptions
            .iter()
            .filter(|(_, f)| f.matches(&ad))
            .map(|(sub, _)| BrokerEvent::SensorLeft {
                subscription: SubscriptionId(*sub),
                sensor: id,
            })
            .collect();
        self.metrics.hist("match_us").record(sw.elapsed_us());
        self.metrics.counter("unpublishes").inc();
        self.metrics
            .counter("notifications")
            .add(events.len() as u64);
        Ok(events)
    }

    /// Sensors currently matching a subscription (the initial binding set
    /// for a dataflow source).
    pub fn matching(&self, id: SubscriptionId) -> Result<Vec<&SensorAdvertisement>, PubSubError> {
        let f = self.filter_of(id)?;
        Ok(self.registry.discover(f).collect())
    }

    /// Record a liveness heartbeat: the sensor produced a sample at `now`
    /// (virtual time). The engine calls this on every emission; sensors
    /// without any recorded heartbeat are exempt from the watchdog.
    pub fn heartbeat(&mut self, id: SensorId, now: Timestamp) {
        self.last_seen.insert(id.0, now);
    }

    /// Virtual time of a sensor's last heartbeat, if any was recorded.
    pub fn last_seen(&self, id: SensorId) -> Option<Timestamp> {
        self.last_seen.get(&id.0).copied()
    }

    /// Expire sensors whose heartbeat is older than `grace` advertised
    /// periods: the watchdog expects roughly one sample per advertised
    /// `period`, so silence for `period * grace` presumes the sensor dead.
    ///
    /// Each stale sensor is auto-unpublished; the return carries its (now
    /// expired) advertisement alongside the leave notifications to deliver,
    /// in sensor-id order. Expiries increment the `expired` counter.
    pub fn sweep_stale(
        &mut self,
        now: Timestamp,
        grace: u32,
    ) -> Vec<(SensorAdvertisement, Vec<BrokerEvent>)> {
        let stale: Vec<SensorId> = self
            .last_seen
            .iter()
            .filter_map(|(id, seen)| {
                let ad = self.registry.get(SensorId(*id)).ok()?;
                let budget = ad.period.saturating_mul(grace as u64);
                (!budget.is_zero() && now.since(*seen) > budget).then_some(SensorId(*id))
            })
            .collect();
        let mut expired = Vec::with_capacity(stale.len());
        for id in stale {
            // get() above proved the sensor is registered.
            let ad = self.registry.get(id).expect("checked above").clone();
            let events = self.unpublish(id).expect("checked above");
            self.metrics.counter("expired").inc();
            expired.push((ad, events));
        }
        expired
    }

    /// The credit ledger (which sensors may generate tuples right now).
    pub fn credits(&self) -> &CreditTable {
        &self.credits
    }

    /// Propagate a credit decision from the engine to a sensor driver;
    /// counted (`credit_grants` / `credit_revokes`) only when the state
    /// actually changed, and returned as such.
    pub fn set_credit(&mut self, id: SensorId, granted: bool) -> bool {
        let changed = self.credits.set(id, granted);
        if changed {
            let key = if granted {
                "credit_grants"
            } else {
                "credit_revokes"
            };
            self.metrics.counter(key).inc();
        }
        changed
    }

    /// Freeze the broker's instruments (match latency, publish/subscribe
    /// counters) into a snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::SensorKind;
    use sl_netsim::NodeId;
    use sl_stt::{AttrType, Duration, Field, GeoPoint, Schema, Theme};

    fn ad(id: u64, theme: &str) -> SensorAdvertisement {
        SensorAdvertisement {
            id: SensorId(id),
            name: format!("s{id}"),
            kind: SensorKind::Physical,
            schema: Schema::new(vec![Field::new("v", AttrType::Float)])
                .unwrap()
                .into_ref(),
            theme: Theme::new(theme).unwrap(),
            period: Duration::from_secs(1),
            location: Some(GeoPoint::new_unchecked(34.7, 135.5)),
            node: NodeId(0),
        }
    }

    #[test]
    fn subscribe_then_publish_notifies() {
        let mut b = Broker::new();
        let sub = b.subscribe(SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap()));
        let events = b.publish(ad(1, "weather/rain")).unwrap();
        assert_eq!(events.len(), 1);
        match &events[0] {
            BrokerEvent::SensorJoined { subscription, ad } => {
                assert_eq!(*subscription, sub);
                assert_eq!(ad.id, SensorId(1));
            }
            other => panic!("{other:?}"),
        }
        // Non-matching publication notifies nobody.
        let events = b.publish(ad(2, "social/tweet")).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn unpublish_notifies_matching_subs() {
        let mut b = Broker::new();
        let s1 = b.subscribe(SubscriptionFilter::any());
        let _s2 = b.subscribe(SubscriptionFilter::any().with_theme(Theme::new("social").unwrap()));
        b.publish(ad(1, "weather/rain")).unwrap();
        let events = b.unpublish(SensorId(1)).unwrap();
        assert_eq!(events.len(), 1); // only the match-all sub
        match &events[0] {
            BrokerEvent::SensorLeft {
                subscription,
                sensor,
            } => {
                assert_eq!(*subscription, s1);
                assert_eq!(*sensor, SensorId(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn matching_lists_current_sensors() {
        let mut b = Broker::new();
        b.publish(ad(1, "weather/rain")).unwrap();
        b.publish(ad(2, "weather/temperature")).unwrap();
        b.publish(ad(3, "social/tweet")).unwrap();
        let sub = b.subscribe(SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap()));
        let m = b.matching(sub).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let mut b = Broker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        b.unsubscribe(sub).unwrap();
        assert!(b.unsubscribe(sub).is_err());
        assert!(b.filter_of(sub).is_err());
        let events = b.publish(ad(1, "weather")).unwrap();
        assert!(events.is_empty());
        assert_eq!(b.subscription_count(), 0);
    }

    #[test]
    fn broker_metrics_count_matches() {
        let mut b = Broker::new();
        b.subscribe(SubscriptionFilter::any());
        b.subscribe(SubscriptionFilter::any().with_theme(Theme::new("social").unwrap()));
        b.publish(ad(1, "weather/rain")).unwrap(); // matches 1 sub
        b.publish(ad(2, "social/tweet")).unwrap(); // matches 2 subs
        b.unpublish(SensorId(1)).unwrap();
        let snap = b.metrics_snapshot();
        assert_eq!(snap.counters["subscribes"], 2);
        assert_eq!(snap.counters["publishes"], 2);
        assert_eq!(snap.counters["unpublishes"], 1);
        assert_eq!(snap.counters["notifications"], 1 + 2 + 1);
        assert_eq!(snap.hists["match_us"].count, 3);
    }

    #[test]
    fn liveness_sweep_expires_silent_sensors() {
        let mut b = Broker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        b.publish(ad(1, "weather/rain")).unwrap(); // period 1 s
        b.publish(ad(2, "weather/rain")).unwrap();
        let t0 = sl_stt::Timestamp::from_secs(0);
        b.heartbeat(SensorId(1), t0);
        b.heartbeat(SensorId(2), t0);
        // Sensor 2 keeps beating, sensor 1 goes silent.
        b.heartbeat(SensorId(2), sl_stt::Timestamp::from_secs(9));
        // Grace 3 × 1 s period: at t=10 sensor 1 is 10 s silent -> stale.
        let expired = b.sweep_stale(sl_stt::Timestamp::from_secs(10), 3);
        assert_eq!(expired.len(), 1);
        let (dead_ad, events) = &expired[0];
        assert_eq!(dead_ad.id, SensorId(1));
        assert_eq!(events.len(), 1);
        match &events[0] {
            BrokerEvent::SensorLeft {
                subscription,
                sensor,
            } => {
                assert_eq!(*subscription, sub);
                assert_eq!(*sensor, SensorId(1));
            }
            other => panic!("{other:?}"),
        }
        // The stale ad is gone from the registry; the live one remains.
        assert!(!b.registry().contains(SensorId(1)));
        assert!(b.registry().contains(SensorId(2)));
        assert_eq!(b.last_seen(SensorId(1)), None);
        assert_eq!(b.metrics_snapshot().counters["expired"], 1);
        // A second sweep finds nothing new.
        assert!(b
            .sweep_stale(sl_stt::Timestamp::from_secs(11), 3)
            .is_empty());
    }

    #[test]
    fn sensors_without_heartbeat_are_exempt() {
        let mut b = Broker::new();
        b.publish(ad(1, "weather/rain")).unwrap();
        // Never heartbeated: the watchdog leaves it alone indefinitely.
        assert!(b
            .sweep_stale(sl_stt::Timestamp::from_secs(3600), 3)
            .is_empty());
        assert!(b.registry().contains(SensorId(1)));
    }

    #[test]
    fn rejoin_after_expiry_is_clean() {
        let mut b = Broker::new();
        let _sub = b.subscribe(SubscriptionFilter::any());
        b.publish(ad(1, "weather/rain")).unwrap();
        b.heartbeat(SensorId(1), sl_stt::Timestamp::from_secs(0));
        b.sweep_stale(sl_stt::Timestamp::from_secs(100), 3);
        assert!(!b.registry().contains(SensorId(1)));
        // The sensor comes back: publish succeeds and notifies again.
        let events = b.publish(ad(1, "weather/rain")).unwrap();
        assert_eq!(events.len(), 1);
        b.heartbeat(SensorId(1), sl_stt::Timestamp::from_secs(101));
        assert!(b
            .sweep_stale(sl_stt::Timestamp::from_secs(102), 3)
            .is_empty());
    }

    #[test]
    fn credit_propagation_counts_transitions() {
        let mut b = Broker::new();
        assert!(b.credits().granted(SensorId(1)));
        assert!(b.set_credit(SensorId(1), false));
        assert!(!b.set_credit(SensorId(1), false)); // idempotent
        assert!(!b.credits().granted(SensorId(1)));
        assert!(b.set_credit(SensorId(1), true));
        assert!(b.credits().granted(SensorId(1)));
        let snap = b.metrics_snapshot();
        assert_eq!(snap.counters["credit_revokes"], 1);
        assert_eq!(snap.counters["credit_grants"], 1);
    }

    #[test]
    fn multiple_subscriptions_all_notified_in_order() {
        let mut b = Broker::new();
        let s1 = b.subscribe(SubscriptionFilter::any());
        let s2 = b.subscribe(SubscriptionFilter::any());
        let events = b.publish(ad(1, "weather")).unwrap();
        let subs: Vec<_> = events
            .iter()
            .map(|e| match e {
                BrokerEvent::SensorJoined { subscription, .. } => *subscription,
                BrokerEvent::SensorLeft { subscription, .. } => *subscription,
            })
            .collect();
        assert_eq!(subs, vec![s1, s2]);
    }
}
