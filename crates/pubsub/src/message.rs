//! Sensor advertisements: what a sensor publishes about itself when joining.

use sl_netsim::NodeId;
use sl_stt::{Duration, GeoPoint, SchemaRef, SensorId, Theme};
use std::fmt;

/// Physical vs social sensors (paper §1: "Beside the physical sensors ...
/// there is a proliferation of social sensors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// Measures a physical phenomenon (temperature, rain, pressure, ...).
    Physical,
    /// Collects data from people (tweets, traffic reports, schedules, ...).
    Social,
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorKind::Physical => write!(f, "physical"),
            SensorKind::Social => write!(f, "social"),
        }
    }
}

/// Everything a sensor makes known when it is published: "its type, schema,
/// and frequency of data generation are made available to subscribers"
/// (paper §3), plus position and hosting network node.
#[derive(Debug, Clone)]
pub struct SensorAdvertisement {
    /// Registry-wide unique id.
    pub id: SensorId,
    /// Human-readable name (e.g. `osaka-temp-3`).
    pub name: String,
    /// Physical or social.
    pub kind: SensorKind,
    /// Schema of the tuples this sensor emits.
    pub schema: SchemaRef,
    /// Thematic classification of the stream.
    pub theme: Theme,
    /// Nominal period between measurements.
    pub period: Duration,
    /// Fixed position, if the sensor knows it. Mobile or position-less
    /// sensors advertise `None` and rely on enrichment.
    pub location: Option<GeoPoint>,
    /// The network node managing this sensor (paper §3: "each node of the
    /// network is in charge of managing a bunch of sensors").
    pub node: NodeId,
}

impl SensorAdvertisement {
    /// Nominal tuple rate in tuples per second.
    pub fn rate_hz(&self) -> f64 {
        let ms = self.period.as_millis();
        if ms == 0 {
            0.0
        } else {
            1000.0 / ms as f64
        }
    }
}

impl fmt::Display for SensorAdvertisement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} theme={} period={} @{}",
            self.name, self.id, self.kind, self.theme, self.period, self.node
        )?;
        if let Some(p) = self.location {
            write!(f, " loc={p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_stt::{AttrType, Field, Schema};

    fn ad() -> SensorAdvertisement {
        SensorAdvertisement {
            id: SensorId(1),
            name: "osaka-temp-0".into(),
            kind: SensorKind::Physical,
            schema: Schema::new(vec![Field::new("temperature", AttrType::Float)])
                .unwrap()
                .into_ref(),
            theme: Theme::new("weather/temperature").unwrap(),
            period: Duration::from_secs(10),
            location: Some(GeoPoint::new_unchecked(34.69, 135.50)),
            node: NodeId(3),
        }
    }

    #[test]
    fn rate_from_period() {
        let mut a = ad();
        assert_eq!(a.rate_hz(), 0.1);
        a.period = Duration::from_millis(250);
        assert_eq!(a.rate_hz(), 4.0);
        a.period = Duration::ZERO;
        assert_eq!(a.rate_hz(), 0.0);
    }

    #[test]
    fn display_mentions_key_facts() {
        let s = ad().to_string();
        assert!(s.contains("osaka-temp-0"));
        assert!(s.contains("physical"));
        assert!(s.contains("weather/temperature"));
        assert!(s.contains("node#3"));
    }
}
