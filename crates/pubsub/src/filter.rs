//! Content-based subscription filters over sensor advertisements.
//!
//! "Sources of dataflows should be specified by means of the sensor and
//! location characteristics" (paper §2): a dataflow source names a filter,
//! not a sensor, so sensors can join and leave while the dataflow keeps
//! running (demo P3).

use crate::message::{SensorAdvertisement, SensorKind};
use sl_stt::{AttrType, BoundingBox, Duration, Theme};
use std::fmt;

/// A conjunctive filter over sensor advertisements. Every populated field
/// must match; an empty filter matches every sensor.
#[derive(Debug, Clone, Default)]
pub struct SubscriptionFilter {
    /// Match sensors whose theme is this theme or a descendant of it.
    pub theme: Option<Theme>,
    /// Match sensors positioned inside this area (sensors advertising no
    /// position do NOT match an area filter).
    pub area: Option<BoundingBox>,
    /// Match only this kind of sensor.
    pub kind: Option<SensorKind>,
    /// Required attributes: the sensor's schema must contain each named
    /// attribute with a type coercible to the required one.
    pub required_attrs: Vec<(String, AttrType)>,
    /// Glob over the sensor name (`*`/`?` wildcards).
    pub name_glob: Option<String>,
    /// Match sensors at least this frequent (period ≤ bound).
    pub max_period: Option<Duration>,
    /// Required units of measure: the sensor's schema must annotate each
    /// named attribute with exactly this unit. Heterogeneous fleets mix
    /// units (Celsius vs Fahrenheit stations); a dataflow whose conditions
    /// assume one unit pins it here — or accepts all and normalises with a
    /// Transform.
    pub required_units: Vec<(String, sl_stt::Unit)>,
}

impl SubscriptionFilter {
    /// The match-all filter.
    pub fn any() -> SubscriptionFilter {
        SubscriptionFilter::default()
    }

    /// Filter by theme subtree.
    pub fn with_theme(mut self, theme: Theme) -> SubscriptionFilter {
        self.theme = Some(theme);
        self
    }

    /// Filter by containing area.
    pub fn with_area(mut self, area: BoundingBox) -> SubscriptionFilter {
        self.area = Some(area);
        self
    }

    /// Filter by sensor kind.
    pub fn with_kind(mut self, kind: SensorKind) -> SubscriptionFilter {
        self.kind = Some(kind);
        self
    }

    /// Require an attribute in the sensor schema.
    pub fn require_attr(mut self, name: &str, ty: AttrType) -> SubscriptionFilter {
        self.required_attrs.push((name.to_string(), ty));
        self
    }

    /// Filter by name glob.
    pub fn with_name_glob(mut self, glob: &str) -> SubscriptionFilter {
        self.name_glob = Some(glob.to_string());
        self
    }

    /// Require a generation period of at most `period`.
    pub fn with_max_period(mut self, period: Duration) -> SubscriptionFilter {
        self.max_period = Some(period);
        self
    }

    /// Require an attribute to be annotated with a specific unit.
    pub fn require_unit(mut self, name: &str, unit: sl_stt::Unit) -> SubscriptionFilter {
        self.required_units.push((name.to_string(), unit));
        self
    }

    /// True if `ad` satisfies every populated constraint.
    pub fn matches(&self, ad: &SensorAdvertisement) -> bool {
        if let Some(theme) = &self.theme {
            if !ad.theme.is_a(theme) {
                return false;
            }
        }
        if let Some(area) = &self.area {
            match ad.location {
                Some(p) if area.contains(&p) => {}
                _ => return false,
            }
        }
        if let Some(kind) = self.kind {
            if ad.kind != kind {
                return false;
            }
        }
        for (name, ty) in &self.required_attrs {
            match ad.schema.field(name) {
                Ok(f) if f.ty.coercible_to(*ty) => {}
                _ => return false,
            }
        }
        if let Some(glob) = &self.name_glob {
            if !glob_match(glob, &ad.name) {
                return false;
            }
        }
        if let Some(bound) = self.max_period {
            if ad.period > bound {
                return false;
            }
        }
        for (name, unit) in &self.required_units {
            match ad.schema.field(name) {
                Ok(f) if f.unit == Some(*unit) => {}
                _ => return false,
            }
        }
        true
    }

    /// Conservative covering check: true means every advertisement matching
    /// `other` also matches `self` (used by the overlay to prune duplicate
    /// subscription propagation). May return false negatives, never false
    /// positives.
    pub fn covers(&self, other: &SubscriptionFilter) -> bool {
        // Theme: self's theme must be an ancestor (or equal) of other's; a
        // self without theme constraint covers anything.
        match (&self.theme, &other.theme) {
            (Some(mine), Some(theirs)) if !theirs.is_a(mine) => return false,
            (Some(_), None) => return false,
            _ => {}
        }
        match (&self.area, &other.area) {
            (Some(mine), Some(theirs))
                if !(mine.contains(&theirs.min) && mine.contains(&theirs.max)) =>
            {
                return false;
            }
            (Some(_), None) => return false,
            _ => {}
        }
        match (self.kind, other.kind) {
            (Some(a), Some(b)) if a != b => return false,
            (Some(_), None) => return false,
            _ => {}
        }
        // Required attrs: every attr self requires must also be required by
        // other (with identical type) — otherwise other may match sensors
        // lacking it.
        for (name, ty) in &self.required_attrs {
            if !other
                .required_attrs
                .iter()
                .any(|(n, t)| n == name && t == ty)
            {
                return false;
            }
        }
        match (&self.name_glob, &other.name_glob) {
            // Identical globs cover; anything else we refuse to reason about
            // (except the trivial `*`).
            (Some(mine), _) if mine == "*" => {}
            (Some(mine), Some(theirs)) if mine != theirs => return false,
            (Some(_), None) => return false,
            _ => {}
        }
        match (self.max_period, other.max_period) {
            (Some(mine), Some(theirs)) if theirs > mine => return false,
            (Some(_), None) => return false,
            _ => {}
        }
        for (name, unit) in &self.required_units {
            if !other
                .required_units
                .iter()
                .any(|(n, u)| n == name && u == unit)
            {
                return false;
            }
        }
        true
    }

    /// True if this is the match-all filter.
    pub fn is_any(&self) -> bool {
        self.theme.is_none()
            && self.area.is_none()
            && self.kind.is_none()
            && self.required_attrs.is_empty()
            && self.name_glob.is_none()
            && self.max_period.is_none()
            && self.required_units.is_empty()
    }
}

impl fmt::Display for SubscriptionFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, "any");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(t) = &self.theme {
            parts.push(format!("theme={t}"));
        }
        if let Some(a) = &self.area {
            parts.push(format!("area={a}"));
        }
        if let Some(k) = self.kind {
            parts.push(format!("kind={k}"));
        }
        for (n, t) in &self.required_attrs {
            parts.push(format!("has {n}:{t}"));
        }
        if let Some(g) = &self.name_glob {
            parts.push(format!("name~{g}"));
        }
        if let Some(p) = self.max_period {
            parts.push(format!("period<={p}"));
        }
        for (n, u) in &self.required_units {
            parts.push(format!("unit {n}={u}"));
        }
        write!(f, "{}", parts.join(" & "))
    }
}

/// Same `*`/`?` glob matcher as the expression language (duplicated to keep
/// crate dependencies minimal; the algorithm is ten lines).
fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            star_ti = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_netsim::NodeId;
    use sl_stt::{Field, GeoPoint, Schema, SensorId};

    fn ad(
        name: &str,
        theme: &str,
        kind: SensorKind,
        lat: f64,
        lon: f64,
        period_s: u64,
    ) -> SensorAdvertisement {
        SensorAdvertisement {
            id: SensorId(1),
            name: name.into(),
            kind,
            schema: Schema::new(vec![
                Field::new("temperature", AttrType::Float),
                Field::new("station", AttrType::Str),
            ])
            .unwrap()
            .into_ref(),
            theme: Theme::new(theme).unwrap(),
            period: Duration::from_secs(period_s),
            location: Some(GeoPoint::new_unchecked(lat, lon)),
            node: NodeId(0),
        }
    }

    fn osaka_box() -> BoundingBox {
        BoundingBox::from_corners(
            GeoPoint::new_unchecked(34.5, 135.3),
            GeoPoint::new_unchecked(34.9, 135.7),
        )
    }

    #[test]
    fn empty_filter_matches_all() {
        let f = SubscriptionFilter::any();
        assert!(f.is_any());
        assert!(f.matches(&ad("x", "weather/rain", SensorKind::Physical, 0.0, 0.0, 1)));
    }

    #[test]
    fn theme_subtree_matching() {
        let f = SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap());
        assert!(f.matches(&ad("a", "weather/rain", SensorKind::Physical, 0.0, 0.0, 1)));
        assert!(f.matches(&ad("a", "weather", SensorKind::Physical, 0.0, 0.0, 1)));
        assert!(!f.matches(&ad(
            "a",
            "traffic/congestion",
            SensorKind::Social,
            0.0,
            0.0,
            1
        )));
    }

    #[test]
    fn area_matching_requires_location() {
        let f = SubscriptionFilter::any().with_area(osaka_box());
        assert!(f.matches(&ad("a", "weather", SensorKind::Physical, 34.69, 135.50, 1)));
        assert!(!f.matches(&ad(
            "a",
            "weather",
            SensorKind::Physical,
            35.0116,
            135.7681,
            1
        )));
        let mut no_loc = ad("a", "weather", SensorKind::Physical, 0.0, 0.0, 1);
        no_loc.location = None;
        assert!(!f.matches(&no_loc));
    }

    #[test]
    fn kind_schema_name_period() {
        let f = SubscriptionFilter::any()
            .with_kind(SensorKind::Physical)
            .require_attr("temperature", AttrType::Float)
            .with_name_glob("osaka-*")
            .with_max_period(Duration::from_secs(30));
        let good = ad(
            "osaka-temp-1",
            "weather/temperature",
            SensorKind::Physical,
            34.7,
            135.5,
            10,
        );
        assert!(f.matches(&good));
        assert!(!f.matches(&ad(
            "kyoto-temp-1",
            "weather/temperature",
            SensorKind::Physical,
            34.7,
            135.5,
            10
        )));
        assert!(!f.matches(&ad(
            "osaka-tw-1",
            "social/tweet",
            SensorKind::Social,
            34.7,
            135.5,
            10
        )));
        assert!(!f.matches(&ad(
            "osaka-temp-2",
            "weather/temperature",
            SensorKind::Physical,
            34.7,
            135.5,
            60
        )));
        // Required attr with wrong type fails; Int->Float coercion passes.
        let f2 = SubscriptionFilter::any().require_attr("temperature", AttrType::Str);
        assert!(!f2.matches(&good));
        let f3 = SubscriptionFilter::any().require_attr("temperature", AttrType::Float);
        assert!(f3.matches(&good));
        assert!(!SubscriptionFilter::any()
            .require_attr("rain", AttrType::Float)
            .matches(&good));
    }

    #[test]
    fn covering_theme_hierarchy() {
        let weather = SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap());
        let rain = SubscriptionFilter::any().with_theme(Theme::new("weather/rain").unwrap());
        assert!(weather.covers(&rain));
        assert!(!rain.covers(&weather));
        assert!(SubscriptionFilter::any().covers(&rain));
        assert!(!rain.covers(&SubscriptionFilter::any()));
        assert!(weather.covers(&weather));
    }

    #[test]
    fn covering_area_and_period() {
        let big = SubscriptionFilter::any().with_area(osaka_box().expanded(1.0));
        let small = SubscriptionFilter::any().with_area(osaka_box());
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        let slow = SubscriptionFilter::any().with_max_period(Duration::from_secs(60));
        let fast = SubscriptionFilter::any().with_max_period(Duration::from_secs(10));
        assert!(slow.covers(&fast));
        assert!(!fast.covers(&slow));
    }

    #[test]
    fn covering_is_sound_on_samples() {
        // If covers() says yes, matching must agree on a sample of ads.
        let filters = [
            SubscriptionFilter::any(),
            SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap()),
            SubscriptionFilter::any().with_theme(Theme::new("weather/rain").unwrap()),
            SubscriptionFilter::any().with_kind(SensorKind::Social),
            SubscriptionFilter::any().with_area(osaka_box()),
            SubscriptionFilter::any().with_max_period(Duration::from_secs(30)),
        ];
        let ads = [
            ad("a", "weather/rain", SensorKind::Physical, 34.7, 135.5, 10),
            ad("b", "weather", SensorKind::Physical, 35.0, 135.76, 60),
            ad("c", "social/tweet", SensorKind::Social, 34.6, 135.4, 5),
            ad(
                "d",
                "traffic/congestion",
                SensorKind::Social,
                34.99,
                135.0,
                120,
            ),
        ];
        for f in &filters {
            for g in &filters {
                if f.covers(g) {
                    for a in &ads {
                        assert!(
                            !g.matches(a) || f.matches(a),
                            "covering violated: [{f}] covers [{g}] but disagrees on {}",
                            a.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unit_requirement_separates_fahrenheit_stations() {
        use sl_stt::Unit;
        let mut c_ad = ad(
            "c-station",
            "weather/temperature",
            SensorKind::Physical,
            34.7,
            135.5,
            10,
        );
        let mut f_ad = c_ad.clone();
        f_ad.name = "f-station".into();
        let mk = |unit| {
            Schema::new(vec![
                Field::with_unit("temperature", AttrType::Float, unit),
                Field::new("station", AttrType::Str),
            ])
            .unwrap()
            .into_ref()
        };
        c_ad.schema = mk(Unit::Celsius);
        f_ad.schema = mk(Unit::Fahrenheit);
        let celsius_only = SubscriptionFilter::any().require_unit("temperature", Unit::Celsius);
        assert!(celsius_only.matches(&c_ad));
        assert!(!celsius_only.matches(&f_ad));
        // An unannotated attribute never satisfies a unit requirement.
        let plain = ad(
            "p",
            "weather/temperature",
            SensorKind::Physical,
            34.7,
            135.5,
            10,
        );
        assert!(!celsius_only.matches(&plain));
        // Covering: the unit-free filter covers the constrained one.
        assert!(SubscriptionFilter::any().covers(&celsius_only));
        assert!(!celsius_only.covers(&SubscriptionFilter::any()));
        assert!(!celsius_only.is_any());
        assert!(celsius_only
            .to_string()
            .contains("unit temperature=celsius"));
    }

    #[test]
    fn display_lists_constraints() {
        let f = SubscriptionFilter::any()
            .with_theme(Theme::new("weather").unwrap())
            .with_kind(SensorKind::Physical);
        let s = f.to_string();
        assert!(s.contains("theme=weather") && s.contains("kind=physical"));
        assert_eq!(SubscriptionFilter::any().to_string(), "any");
    }
}
