//! The sensor directory: publication, discovery queries, and the
//! organisation criteria the GUI offers.
//!
//! "Sensors can be organized according to different criteria
//! (temporal/spatial, type/location) in order to facilitate the
//! specification of dataflows" (paper §2) — [`SensorRegistry::group_by`]
//! implements those groupings.

use crate::filter::SubscriptionFilter;
use crate::message::{SensorAdvertisement, SensorKind};
use crate::PubSubError;
use sl_netsim::NodeId;
use sl_stt::{SensorId, SpatialGranularity, SpatialGranule};
use std::collections::BTreeMap;

/// Criteria for organising the sensor directory in the discovery UI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupCriterion {
    /// By root theme segment (weather, social, traffic, ...).
    ThemeRoot,
    /// By sensor kind (physical / social).
    Kind,
    /// By hosting network node.
    Node,
    /// By spatial grid cell at the given granularity (sensors without a
    /// position group under the key `"unlocated"`).
    SpatialCell(SpatialGranularity),
    /// By order of magnitude of the generation period (sub-second, second,
    /// minute, hour+).
    PeriodBand,
}

/// The sensor directory.
#[derive(Debug, Default)]
pub struct SensorRegistry {
    sensors: BTreeMap<u64, SensorAdvertisement>,
    next_id: u64,
}

impl SensorRegistry {
    /// Empty registry.
    pub fn new() -> SensorRegistry {
        SensorRegistry::default()
    }

    /// Allocate a fresh sensor id (callers may also bring their own ids via
    /// [`publish`]; allocation just avoids collisions).
    ///
    /// [`publish`]: SensorRegistry::publish
    pub fn allocate_id(&mut self) -> SensorId {
        let id = self.next_id;
        self.next_id += 1;
        SensorId(id)
    }

    /// Publish a sensor. Fails if the id is already present.
    pub fn publish(&mut self, ad: SensorAdvertisement) -> Result<(), PubSubError> {
        let id = ad.id.0;
        if self.sensors.contains_key(&id) {
            return Err(PubSubError::DuplicateSensor(id));
        }
        self.next_id = self.next_id.max(id + 1);
        self.sensors.insert(id, ad);
        Ok(())
    }

    /// Remove a sensor (it left the network), returning its advertisement.
    pub fn unpublish(&mut self, id: SensorId) -> Result<SensorAdvertisement, PubSubError> {
        self.sensors
            .remove(&id.0)
            .ok_or(PubSubError::UnknownSensor(id.0))
    }

    /// The advertisement of a published sensor.
    pub fn get(&self, id: SensorId) -> Result<&SensorAdvertisement, PubSubError> {
        self.sensors
            .get(&id.0)
            .ok_or(PubSubError::UnknownSensor(id.0))
    }

    /// True if the sensor is currently published.
    pub fn contains(&self, id: SensorId) -> bool {
        self.sensors.contains_key(&id.0)
    }

    /// Number of published sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// True if no sensors are published.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// All advertisements, in id order (deterministic).
    pub fn all(&self) -> impl Iterator<Item = &SensorAdvertisement> {
        self.sensors.values()
    }

    /// Discovery: all sensors matching `filter`, in id order.
    pub fn discover<'a>(
        &'a self,
        filter: &'a SubscriptionFilter,
    ) -> impl Iterator<Item = &'a SensorAdvertisement> + 'a {
        self.sensors.values().filter(move |ad| filter.matches(ad))
    }

    /// Sensors hosted on a given network node.
    pub fn on_node(&self, node: NodeId) -> impl Iterator<Item = &SensorAdvertisement> {
        self.sensors.values().filter(move |ad| ad.node == node)
    }

    /// Organise the directory under `criterion`: returns group label →
    /// sensor ids, labels sorted.
    pub fn group_by(&self, criterion: GroupCriterion) -> BTreeMap<String, Vec<SensorId>> {
        let mut groups: BTreeMap<String, Vec<SensorId>> = BTreeMap::new();
        for ad in self.sensors.values() {
            let key = match criterion {
                GroupCriterion::ThemeRoot => ad
                    .theme
                    .segments()
                    .next()
                    .unwrap_or("unclassified")
                    .to_string(),
                GroupCriterion::Kind => ad.kind.to_string(),
                GroupCriterion::Node => ad.node.to_string(),
                GroupCriterion::SpatialCell(g) => match ad.location {
                    Some(p) => g.granule_of(&p).to_string(),
                    None => "unlocated".to_string(),
                },
                GroupCriterion::PeriodBand => {
                    let ms = ad.period.as_millis();
                    if ms < 1000 {
                        "sub-second".to_string()
                    } else if ms < 60_000 {
                        "seconds".to_string()
                    } else if ms < 3_600_000 {
                        "minutes".to_string()
                    } else {
                        "hours+".to_string()
                    }
                }
            };
            groups.entry(key).or_default().push(ad.id);
        }
        groups
    }

    /// The spatial granule of each located sensor at granularity `g`
    /// (used by the warehouse and by discovery heat-maps).
    pub fn spatial_index(&self, g: SpatialGranularity) -> BTreeMap<u64, SpatialGranule> {
        self.sensors
            .iter()
            .filter_map(|(id, ad)| ad.location.map(|p| (*id, g.granule_of(&p))))
            .collect()
    }

    /// Candidate replacements for a departed sensor: published sensors whose
    /// schema subsumes the departed schema, same theme subtree, nearest
    /// first (demo P3: react "when sensors ... are modified on the fly").
    pub fn replacements_for(&self, departed: &SensorAdvertisement) -> Vec<&SensorAdvertisement> {
        let mut candidates: Vec<&SensorAdvertisement> = self
            .sensors
            .values()
            .filter(|ad| ad.id != departed.id)
            .filter(|ad| ad.theme.is_a(&departed.theme) || departed.theme.is_a(&ad.theme))
            .filter(|ad| departed.schema.subsumed_by(&ad.schema))
            .collect();
        candidates.sort_by(|a, b| {
            let da = distance_or_max(departed, a);
            let db = distance_or_max(departed, b);
            da.total_cmp(&db).then_with(|| a.id.cmp(&b.id))
        });
        candidates
    }
}

fn distance_or_max(from: &SensorAdvertisement, to: &SensorAdvertisement) -> f64 {
    match (from.location, to.location) {
        (Some(a), Some(b)) => a.haversine_distance_m(&b),
        _ => f64::MAX,
    }
}

/// Convenience: count matching sensors per kind (used in the demo output).
pub fn census(registry: &SensorRegistry) -> (usize, usize) {
    let mut physical = 0;
    let mut social = 0;
    for ad in registry.all() {
        match ad.kind {
            SensorKind::Physical => physical += 1,
            SensorKind::Social => social += 1,
        }
    }
    (physical, social)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_stt::{AttrType, Duration, Field, GeoPoint, Schema, Theme};

    fn make_ad(
        id: u64,
        name: &str,
        theme: &str,
        kind: SensorKind,
        node: u32,
        lat: f64,
    ) -> SensorAdvertisement {
        SensorAdvertisement {
            id: SensorId(id),
            name: name.into(),
            kind,
            schema: Schema::new(vec![Field::new("v", AttrType::Float)])
                .unwrap()
                .into_ref(),
            theme: Theme::new(theme).unwrap(),
            period: Duration::from_secs(id.max(1)),
            location: Some(GeoPoint::new_unchecked(lat, 135.5)),
            node: NodeId(node),
        }
    }

    fn populated() -> SensorRegistry {
        let mut r = SensorRegistry::new();
        r.publish(make_ad(
            0,
            "osaka-temp-0",
            "weather/temperature",
            SensorKind::Physical,
            0,
            34.69,
        ))
        .unwrap();
        r.publish(make_ad(
            1,
            "osaka-rain-0",
            "weather/rain",
            SensorKind::Physical,
            0,
            34.70,
        ))
        .unwrap();
        r.publish(make_ad(
            2,
            "osaka-tweet-0",
            "social/tweet",
            SensorKind::Social,
            1,
            34.68,
        ))
        .unwrap();
        r.publish(make_ad(
            3,
            "kyoto-temp-0",
            "weather/temperature",
            SensorKind::Physical,
            2,
            35.01,
        ))
        .unwrap();
        r
    }

    #[test]
    fn publish_unpublish_cycle() {
        let mut r = populated();
        assert_eq!(r.len(), 4);
        assert!(r.contains(SensorId(2)));
        // Duplicate rejected.
        assert!(matches!(
            r.publish(make_ad(2, "dup", "weather", SensorKind::Physical, 0, 34.0)),
            Err(PubSubError::DuplicateSensor(2))
        ));
        let gone = r.unpublish(SensorId(2)).unwrap();
        assert_eq!(gone.name, "osaka-tweet-0");
        assert!(!r.contains(SensorId(2)));
        assert!(r.unpublish(SensorId(2)).is_err());
        assert!(r.get(SensorId(2)).is_err());
    }

    #[test]
    fn allocate_avoids_collisions() {
        let mut r = populated();
        let id = r.allocate_id();
        assert!(id.0 >= 4);
        // Publishing a high id bumps the allocator.
        r.publish(make_ad(100, "x", "weather", SensorKind::Physical, 0, 34.0))
            .unwrap();
        assert!(r.allocate_id().0 > 100);
    }

    #[test]
    fn discovery_by_filter() {
        let r = populated();
        let weather = SubscriptionFilter::any().with_theme(Theme::new("weather").unwrap());
        let found: Vec<_> = r.discover(&weather).map(|a| a.id.0).collect();
        assert_eq!(found, vec![0, 1, 3]);
        let social = SubscriptionFilter::any().with_kind(SensorKind::Social);
        assert_eq!(r.discover(&social).count(), 1);
    }

    #[test]
    fn groupings() {
        let r = populated();
        let by_theme = r.group_by(GroupCriterion::ThemeRoot);
        assert_eq!(by_theme["weather"].len(), 3);
        assert_eq!(by_theme["social"].len(), 1);
        let by_kind = r.group_by(GroupCriterion::Kind);
        assert_eq!(by_kind["physical"].len(), 3);
        let by_node = r.group_by(GroupCriterion::Node);
        assert_eq!(by_node["node#0"].len(), 2);
        let by_cell = r.group_by(GroupCriterion::SpatialCell(SpatialGranularity::grid(2)));
        // Osaka sensors (lat ~34.7) share a 0.25°-cell; Kyoto (35.01) differs.
        assert_eq!(by_cell.len(), 2);
        let by_period = r.group_by(GroupCriterion::PeriodBand);
        assert!(by_period.contains_key("seconds"));
    }

    #[test]
    fn on_node_listing() {
        let r = populated();
        assert_eq!(r.on_node(NodeId(0)).count(), 2);
        assert_eq!(r.on_node(NodeId(9)).count(), 0);
    }

    #[test]
    fn replacement_candidates_nearest_first() {
        let r = populated();
        let departed = r.get(SensorId(0)).unwrap().clone();
        let reps = r.replacements_for(&departed);
        // Only the other temperature sensor qualifies by theme subtree.
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].id, SensorId(3));
    }

    #[test]
    fn census_counts() {
        let r = populated();
        assert_eq!(census(&r), (3, 1));
    }

    #[test]
    fn spatial_index_skips_unlocated() {
        let mut r = populated();
        let mut ad = make_ad(10, "nowhere", "weather", SensorKind::Physical, 0, 34.0);
        ad.location = None;
        r.publish(ad).unwrap();
        let idx = r.spatial_index(SpatialGranularity::grid(4));
        assert_eq!(idx.len(), 4); // the located ones only
        assert!(!idx.contains_key(&10));
    }
}
