//! Credit-based flow control between the engine and sensor drivers.
//!
//! In `Block` overflow mode the engine never sheds: instead it *revokes
//! credit* for sensors feeding a saturated operator, and the broker carries
//! that signal back to the drivers, which pause tuple generation until the
//! credit is re-granted. A [`CreditTable`] is the broker-side ledger:
//! default-granted (sensors unknown to the table may emit freely), with only
//! the revoked set stored, so the table stays empty in the common un-loaded
//! case.

use sl_stt::SensorId;
use std::collections::BTreeSet;

/// The broker's credit ledger: which sensors may currently generate tuples.
///
/// Only revocations are stored; every sensor is granted by default.
/// Transitions are counted so observability can report how often
/// backpressure engaged without scanning the table.
#[derive(Debug, Default)]
pub struct CreditTable {
    revoked: BTreeSet<u64>,
    grants: u64,
    revokes: u64,
}

impl CreditTable {
    /// An empty (all-granted) ledger.
    pub fn new() -> CreditTable {
        CreditTable::default()
    }

    /// True if the sensor may generate tuples right now.
    pub fn granted(&self, id: SensorId) -> bool {
        !self.revoked.contains(&id.0)
    }

    /// Set the sensor's credit; returns true if this *changed* the state
    /// (re-granting a granted sensor is a no-op and is not counted).
    pub fn set(&mut self, id: SensorId, granted: bool) -> bool {
        let changed = if granted {
            self.revoked.remove(&id.0)
        } else {
            self.revoked.insert(id.0)
        };
        if changed {
            if granted {
                self.grants += 1;
            } else {
                self.revokes += 1;
            }
        }
        changed
    }

    /// Number of sensors currently throttled.
    pub fn revoked_count(&self) -> usize {
        self.revoked.len()
    }

    /// Sensors currently throttled, in id order.
    pub fn revoked(&self) -> impl Iterator<Item = SensorId> + '_ {
        self.revoked.iter().map(|id| SensorId(*id))
    }

    /// Lifetime count of grant transitions (revoked → granted).
    pub fn grant_transitions(&self) -> u64 {
        self.grants
    }

    /// Lifetime count of revoke transitions (granted → revoked).
    pub fn revoke_transitions(&self) -> u64 {
        self.revokes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_granted() {
        let t = CreditTable::new();
        assert!(t.granted(SensorId(7)));
        assert_eq!(t.revoked_count(), 0);
    }

    #[test]
    fn revoke_and_regrant() {
        let mut t = CreditTable::new();
        assert!(t.set(SensorId(1), false));
        assert!(!t.granted(SensorId(1)));
        assert!(t.granted(SensorId(2)));
        assert_eq!(t.revoked_count(), 1);
        assert!(t.set(SensorId(1), true));
        assert!(t.granted(SensorId(1)));
        assert_eq!(t.revoked_count(), 0);
        assert_eq!(t.grant_transitions(), 1);
        assert_eq!(t.revoke_transitions(), 1);
    }

    #[test]
    fn idempotent_transitions_are_not_counted() {
        let mut t = CreditTable::new();
        assert!(!t.set(SensorId(1), true)); // already granted
        t.set(SensorId(1), false);
        assert!(!t.set(SensorId(1), false)); // already revoked
        assert_eq!(t.grant_transitions(), 0);
        assert_eq!(t.revoke_transitions(), 1);
    }

    #[test]
    fn revoked_iterates_in_id_order() {
        let mut t = CreditTable::new();
        t.set(SensorId(9), false);
        t.set(SensorId(2), false);
        t.set(SensorId(5), false);
        let ids: Vec<u64> = t.revoked().map(|s| s.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }
}
