//! Property test: DSN print → parse round-trips (demo P2's translation
//! must be loss-free).

use proptest::prelude::*;
use sl_dsn::{
    parse_document, print_document, ChannelDecl, DsnDocument, ServiceDecl, SinkDecl, SinkKind,
    SourceDecl, SourceMode,
};
use sl_netsim::QosSpec;
use sl_ops::{AggFunc, OpSpec};
use sl_pubsub::{SensorKind, SubscriptionFilter};
use sl_stt::{AttrType, BoundingBox, Duration, GeoPoint, Theme, TimeInterval, Timestamp};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_map(|s| s)
}

fn arb_theme() -> impl Strategy<Value = Theme> {
    prop_oneof![
        Just(Theme::new("weather/temperature").unwrap()),
        Just(Theme::new("weather/rain").unwrap()),
        Just(Theme::new("social/tweet").unwrap()),
        Just(Theme::new("traffic").unwrap()),
    ]
}

fn arb_box() -> impl Strategy<Value = BoundingBox> {
    (-80.0f64..80.0, -170.0f64..170.0, 0.01f64..5.0, 0.01f64..5.0).prop_map(|(lat, lon, dl, dn)| {
        BoundingBox::from_corners(
            GeoPoint::new_unchecked(lat, lon),
            GeoPoint::new_unchecked((lat + dl).min(90.0), (lon + dn).min(180.0)),
        )
    })
}

fn arb_filter() -> impl Strategy<Value = SubscriptionFilter> {
    (
        proptest::option::of(arb_theme()),
        proptest::option::of(arb_box()),
        proptest::option::of(prop_oneof![
            Just(SensorKind::Physical),
            Just(SensorKind::Social)
        ]),
        proptest::collection::vec(("[a-z]{1,6}", 0usize..6), 0..3),
        proptest::option::of("[a-z*?]{1,8}"),
        proptest::option::of(1u64..100_000),
        proptest::collection::vec(("[a-z]{1,6}", 0usize..4), 0..2),
    )
        .prop_map(|(theme, area, kind, attrs, glob, period, units)| {
            let mut f = SubscriptionFilter::any();
            f.theme = theme;
            f.area = area;
            f.kind = kind;
            for (name, ti) in attrs {
                f.required_attrs.push((name, AttrType::ALL[ti]));
            }
            f.name_glob = glob;
            f.max_period = period.map(Duration::from_millis);
            for (name, ui) in units {
                f.required_units.push((name, sl_stt::Unit::ALL[ui]));
            }
            f
        })
}

fn arb_expr_text() -> impl Strategy<Value = String> {
    // Conditions round-trip through the expr printer elsewhere; here we use
    // canonical-form predicates (including quotes needing escape).
    prop_oneof![
        Just("temperature > 25".to_string()),
        Just("a = 'it''s'".to_string()),
        Just("rain > 10 and station != 'x'".to_string()),
        Just("not (a or b)".to_string()),
    ]
}

fn arb_spec() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        arb_expr_text().prop_map(|condition| OpSpec::Filter { condition }),
        (ident(), arb_expr_text()).prop_map(|(a, e)| OpSpec::Transform {
            assignments: vec![(a, e)]
        }),
        (ident(), arb_expr_text()).prop_map(|(p, s)| OpSpec::VirtualProperty {
            property: p,
            spec: s
        }),
        (0i64..1000, 1i64..1000, 1u64..100).prop_map(|(s, d, rate)| OpSpec::CullTime {
            interval: TimeInterval::new(Timestamp::from_millis(s), Timestamp::from_millis(s + d)),
            rate,
        }),
        (arb_box(), 1u64..100).prop_map(|(area, rate)| OpSpec::CullSpace { area, rate }),
        (
            1u64..10_000_000,
            proptest::collection::vec(ident(), 0..3),
            0usize..5,
            proptest::option::of(ident()),
            proptest::option::of(1u64..10_000_000),
        )
            .prop_map(|(p, group_by, fi, attr, sliding)| {
                let func = AggFunc::ALL[fi];
                // COUNT may omit attr; others need one.
                let attr = if func == AggFunc::Count {
                    attr
                } else {
                    Some(attr.unwrap_or_else(|| "v".into()))
                };
                OpSpec::Aggregate {
                    period: Duration::from_millis(p),
                    group_by,
                    func,
                    attr,
                    sliding: sliding.map(Duration::from_millis),
                }
            }),
        (1u64..10_000_000, arb_expr_text()).prop_map(|(p, predicate)| OpSpec::Join {
            period: Duration::from_millis(p),
            predicate
        }),
        (
            1u64..10_000_000,
            arb_expr_text(),
            proptest::collection::vec(ident(), 1..3)
        )
            .prop_map(|(p, condition, targets)| OpSpec::TriggerOn {
                period: Duration::from_millis(p),
                condition,
                targets,
            }),
        (
            1u64..10_000_000,
            arb_expr_text(),
            proptest::collection::vec(ident(), 1..3)
        )
            .prop_map(|(p, condition, targets)| OpSpec::TriggerOff {
                period: Duration::from_millis(p),
                condition,
                targets,
            }),
    ]
}

fn arb_qos() -> impl Strategy<Value = QosSpec> {
    (
        proptest::option::of(1u64..10_000),
        proptest::option::of(1u64..1_000_000_000),
    )
        .prop_map(|(lat, bw)| QosSpec {
            max_latency: lat.map(Duration::from_millis),
            min_bandwidth_bps: bw,
        })
}

/// Documents here need not be *valid* (round-trip is purely syntactic);
/// names are made unique by suffixing.
fn arb_document() -> impl Strategy<Value = DsnDocument> {
    (
        "[a-z][a-z ]{0,12}",
        proptest::collection::vec((arb_filter(), any::<bool>()), 1..4),
        proptest::collection::vec((arb_spec(), proptest::collection::vec(ident(), 1..3)), 0..4),
        proptest::collection::vec(
            (
                prop_oneof![
                    Just(SinkKind::Warehouse),
                    Just(SinkKind::Console),
                    Just(SinkKind::Visualization)
                ],
                ident(),
            ),
            0..2,
        ),
        proptest::collection::vec((ident(), ident(), arb_qos()), 0..3),
    )
        .prop_map(|(name, sources, services, sinks, channels)| {
            let mut d = DsnDocument::new(&name);
            for (i, (filter, active)) in sources.into_iter().enumerate() {
                d.sources.push(SourceDecl {
                    name: format!("src{i}"),
                    filter,
                    mode: if active {
                        SourceMode::Active
                    } else {
                        SourceMode::Gated
                    },
                });
            }
            for (i, (spec, mut inputs)) in services.into_iter().enumerate() {
                inputs.truncate(spec.input_ports());
                while inputs.len() < spec.input_ports() {
                    inputs.push("src0".into());
                }
                d.services.push(ServiceDecl {
                    name: format!("svc{i}"),
                    spec,
                    inputs,
                });
            }
            for (i, (kind, input)) in sinks.into_iter().enumerate() {
                d.sinks.push(SinkDecl {
                    name: format!("sink{i}"),
                    kind,
                    inputs: vec![input],
                });
            }
            for (from, to, qos) in channels {
                d.channels.push(ChannelDecl { from, to, qos });
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse → print is a fixpoint, and the reparsed document is
    /// structurally identical.
    #[test]
    fn dsn_print_parse_round_trip(doc in arb_document()) {
        let text1 = print_document(&doc);
        let parsed = parse_document(&text1)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- document ---\n{text1}"));
        let text2 = print_document(&parsed);
        prop_assert_eq!(&text1, &text2, "printer not canonical");
        // Structural spot-checks.
        prop_assert_eq!(doc.name, parsed.name);
        prop_assert_eq!(doc.sources.len(), parsed.sources.len());
        prop_assert_eq!(doc.services.len(), parsed.services.len());
        for (a, b) in doc.services.iter().zip(&parsed.services) {
            prop_assert_eq!(a, b);
        }
        for (a, b) in doc.channels.iter().zip(&parsed.channels) {
            prop_assert_eq!(a, b);
        }
        for (a, b) in doc.sources.iter().zip(&parsed.sources) {
            prop_assert_eq!(a.mode, b.mode);
        }
    }
}
