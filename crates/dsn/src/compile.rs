//! Lowering DSN documents into SCN command sequences.
//!
//! "The network control protocol stack interprets the DSN description and
//! dynamically coordinates the network configurations" (paper §2). The
//! output of [`compile`] is the ordered list of [`ScnCommand`]s the
//! execution engine performs against the network substrate: bind sources to
//! sensors through the pub/sub layer, spawn one process per service, install
//! flows with the declared QoS, wire sinks, and gate dormant sources.

use crate::ast::{DsnDocument, SinkKind, SourceMode};
use crate::error::DsnError;
use crate::validate::validate;
use sl_netsim::QosSpec;
use sl_ops::OpSpec;
use sl_pubsub::SubscriptionFilter;
use std::fmt;

/// One actuation step on the programmable network.
#[derive(Debug, Clone)]
pub enum ScnCommand {
    /// Subscribe the named source to matching sensors.
    BindSource {
        /// Source name.
        source: String,
        /// Sensor filter.
        filter: SubscriptionFilter,
        /// False for gated sources (deployed dormant).
        active: bool,
    },
    /// Spawn an operator process for a service (placement is decided by the
    /// engine's placement policy at execution time).
    SpawnProcess {
        /// Service name.
        service: String,
        /// Operation it runs.
        spec: OpSpec,
        /// Producer names, in port order.
        inputs: Vec<String>,
    },
    /// Install a data flow between two deployed endpoints.
    InstallFlow {
        /// Producer name.
        from: String,
        /// Consumer name.
        to: String,
        /// Consumer input port.
        port: usize,
        /// Requested QoS.
        qos: QosSpec,
    },
    /// Configure a sink endpoint.
    ConfigureSink {
        /// Sink name.
        sink: String,
        /// Destination kind.
        kind: SinkKind,
    },
}

impl fmt::Display for ScnCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScnCommand::BindSource {
                source,
                filter,
                active,
            } => {
                write!(
                    f,
                    "BIND {source} <- [{filter}] {}",
                    if *active { "ACTIVE" } else { "GATED" }
                )
            }
            ScnCommand::SpawnProcess { service, spec, .. } => {
                write!(f, "SPAWN {service} := {spec}")
            }
            ScnCommand::InstallFlow {
                from,
                to,
                port,
                qos,
            } => {
                write!(f, "FLOW {from} -> {to}:{port} [{qos}]")
            }
            ScnCommand::ConfigureSink { sink, kind } => write!(f, "SINK {sink} ({kind})"),
        }
    }
}

/// A compiled SCN program.
#[derive(Debug, Clone, Default)]
pub struct ScnProgram {
    /// Dataflow name.
    pub name: String,
    /// Commands in execution order.
    pub commands: Vec<ScnCommand>,
}

impl ScnProgram {
    /// Render the program as the text shown in the demo's P2 step.
    pub fn listing(&self) -> String {
        let mut out = format!("scn program \"{}\"\n", self.name);
        for (i, c) in self.commands.iter().enumerate() {
            out.push_str(&format!("  {i:>3}. {c}\n"));
        }
        out
    }

    /// Count commands of each kind `(binds, spawns, flows, sinks)`.
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for c in &self.commands {
            match c {
                ScnCommand::BindSource { .. } => counts.0 += 1,
                ScnCommand::SpawnProcess { .. } => counts.1 += 1,
                ScnCommand::InstallFlow { .. } => counts.2 += 1,
                ScnCommand::ConfigureSink { .. } => counts.3 += 1,
            }
        }
        counts
    }
}

/// Compile a document: validate, then emit commands in dependency order
/// (sources → services in topological order → sinks → flows).
pub fn compile(doc: &DsnDocument) -> Result<ScnProgram, DsnError> {
    let topo = validate(doc)?;
    let mut commands = Vec::new();
    for src in &doc.sources {
        commands.push(ScnCommand::BindSource {
            source: src.name.clone(),
            filter: src.filter.clone(),
            active: src.mode == SourceMode::Active,
        });
    }
    for name in &topo {
        let svc = doc.service(name).expect("validated");
        commands.push(ScnCommand::SpawnProcess {
            service: svc.name.clone(),
            spec: svc.spec.clone(),
            inputs: svc.inputs.clone(),
        });
    }
    for sink in &doc.sinks {
        commands.push(ScnCommand::ConfigureSink {
            sink: sink.name.clone(),
            kind: sink.kind,
        });
    }
    for (from, to, port) in doc.edges() {
        commands.push(ScnCommand::InstallFlow {
            qos: doc.qos_for(&from, &to),
            from,
            to,
            port,
        });
    }
    Ok(ScnProgram {
        name: doc.name.clone(),
        commands,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ServiceDecl, SinkDecl, SourceDecl};
    use sl_stt::Duration;

    fn doc() -> DsnDocument {
        let mut d = DsnDocument::new("scenario");
        d.sources.push(SourceDecl {
            name: "temp".into(),
            filter: SubscriptionFilter::any(),
            mode: SourceMode::Active,
        });
        d.sources.push(SourceDecl {
            name: "rain".into(),
            filter: SubscriptionFilter::any(),
            mode: SourceMode::Gated,
        });
        d.services.push(ServiceDecl {
            name: "trig".into(),
            spec: OpSpec::TriggerOn {
                period: Duration::from_secs(60),
                condition: "true".into(),
                targets: vec!["rain".into()],
            },
            inputs: vec!["agg".into()],
        });
        d.services.push(ServiceDecl {
            name: "agg".into(),
            spec: OpSpec::Aggregate {
                period: Duration::from_secs(60),
                group_by: vec![],
                func: sl_ops::AggFunc::Count,
                attr: None,
                sliding: None,
            },
            inputs: vec!["temp".into()],
        });
        d.sinks.push(SinkDecl {
            name: "edw".into(),
            kind: SinkKind::Warehouse,
            inputs: vec!["trig".into()],
        });
        d
    }

    #[test]
    fn compiles_in_dependency_order() {
        let prog = compile(&doc()).unwrap();
        assert_eq!(prog.name, "scenario");
        let kinds: Vec<&str> = prog
            .commands
            .iter()
            .map(|c| match c {
                ScnCommand::BindSource { .. } => "bind",
                ScnCommand::SpawnProcess { .. } => "spawn",
                ScnCommand::InstallFlow { .. } => "flow",
                ScnCommand::ConfigureSink { .. } => "sink",
            })
            .collect();
        // binds, then spawns, then sink configs, then flows.
        assert_eq!(
            kinds,
            vec!["bind", "bind", "spawn", "spawn", "sink", "flow", "flow", "flow"]
        );
        // Declaration order `trig, agg` is corrected to topological `agg, trig`.
        let spawns: Vec<&str> = prog
            .commands
            .iter()
            .filter_map(|c| match c {
                ScnCommand::SpawnProcess { service, .. } => Some(service.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(spawns, vec!["agg", "trig"]);
        assert_eq!(prog.census(), (2, 2, 3, 1));
    }

    #[test]
    fn gated_source_binds_inactive() {
        let prog = compile(&doc()).unwrap();
        let rain_bind = prog
            .commands
            .iter()
            .find_map(|c| match c {
                ScnCommand::BindSource { source, active, .. } if source == "rain" => Some(*active),
                _ => None,
            })
            .unwrap();
        assert!(!rain_bind);
    }

    #[test]
    fn invalid_document_fails_compile() {
        let mut d = doc();
        d.services[0].inputs = vec!["ghost".into()];
        assert!(compile(&d).is_err());
    }

    #[test]
    fn listing_is_readable() {
        let prog = compile(&doc()).unwrap();
        let listing = prog.listing();
        assert!(listing.contains("scn program \"scenario\""));
        assert!(listing.contains("BIND temp"));
        assert!(listing.contains("SPAWN agg"));
        assert!(listing.contains("SINK edw (warehouse)"));
        assert!(listing.contains("FLOW"));
    }
}
