//! Canonical pretty-printer for DSN documents.
//!
//! The printer defines the *canonical form*: `parse(print(doc))` must yield
//! a structurally identical document (property-tested in
//! `tests/roundtrip.rs`). Expressions are embedded as single-quoted strings
//! using the expression language's own `''` escaping.

use crate::ast::{ChannelDecl, DsnDocument, ServiceDecl, SinkDecl, SourceDecl};
use sl_netsim::QosSpec;
use sl_ops::OpSpec;
use sl_pubsub::SubscriptionFilter;
use std::fmt::Write as _;

/// Render a document in canonical form.
pub fn print_document(doc: &DsnDocument) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dsn \"{}\" {{", escape_dq(&doc.name));
    for s in &doc.sources {
        print_source(&mut out, s);
    }
    for s in &doc.services {
        print_service(&mut out, s);
    }
    for s in &doc.sinks {
        print_sink(&mut out, s);
    }
    for c in &doc.channels {
        print_channel(&mut out, c);
    }
    out.push_str("}\n");
    out
}

fn escape_dq(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Quote an expression / free text as a single-quoted DSN string.
fn q(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

fn print_source(out: &mut String, s: &SourceDecl) {
    let _ = writeln!(out, "  source {} {{", s.name);
    let _ = writeln!(out, "    filter: {};", print_filter(&s.filter));
    let _ = writeln!(out, "    mode: {};", s.mode);
    out.push_str("  }\n");
}

/// Render a subscription filter in DSN syntax.
pub fn print_filter(f: &SubscriptionFilter) -> String {
    if f.is_any() {
        return "any".into();
    }
    let mut parts: Vec<String> = Vec::new();
    if let Some(t) = &f.theme {
        parts.push(format!("theme={t}"));
    }
    if let Some(a) = &f.area {
        parts.push(format!(
            "area=({}, {})..({}, {})",
            a.min.lat, a.min.lon, a.max.lat, a.max.lon
        ));
    }
    if let Some(k) = f.kind {
        parts.push(format!("kind={k}"));
    }
    for (n, t) in &f.required_attrs {
        parts.push(format!("has {n}:{t}"));
    }
    if let Some(g) = &f.name_glob {
        parts.push(format!("name~{g}"));
    }
    if let Some(p) = f.max_period {
        parts.push(format!("period<={}", p.as_millis()));
    }
    for (n, u) in &f.required_units {
        parts.push(format!("unit {n}={u}"));
    }
    parts.join(" & ")
}

fn print_service(out: &mut String, s: &ServiceDecl) {
    let _ = writeln!(out, "  service {} {{", s.name);
    match &s.spec {
        OpSpec::Filter { condition } => {
            let _ = writeln!(out, "    op: filter;");
            let _ = writeln!(out, "    condition: {};", q(condition));
        }
        OpSpec::Transform { assignments } => {
            let _ = writeln!(out, "    op: transform;");
            let rendered: Vec<String> = assignments
                .iter()
                .map(|(a, e)| format!("{a} := {}", q(e)))
                .collect();
            let _ = writeln!(out, "    assign: {};", rendered.join(", "));
        }
        OpSpec::VirtualProperty { property, spec } => {
            let _ = writeln!(out, "    op: virtual_property;");
            let _ = writeln!(out, "    property: {property};");
            let _ = writeln!(out, "    spec: {};", q(spec));
        }
        OpSpec::CullTime { interval, rate } => {
            let _ = writeln!(out, "    op: cull_time;");
            let _ = writeln!(
                out,
                "    interval: {}..{};",
                interval.start.as_millis(),
                interval.end.as_millis()
            );
            let _ = writeln!(out, "    rate: {rate};");
        }
        OpSpec::CullSpace { area, rate } => {
            let _ = writeln!(out, "    op: cull_space;");
            let _ = writeln!(
                out,
                "    area: ({}, {})..({}, {});",
                area.min.lat, area.min.lon, area.max.lat, area.max.lon
            );
            let _ = writeln!(out, "    rate: {rate};");
        }
        OpSpec::Aggregate {
            period,
            group_by,
            func,
            attr,
            sliding,
        } => {
            let _ = writeln!(out, "    op: aggregate;");
            let _ = writeln!(out, "    period: {};", period.as_millis());
            if let Some(span) = sliding {
                let _ = writeln!(out, "    sliding: {};", span.as_millis());
            }
            if !group_by.is_empty() {
                let _ = writeln!(out, "    group_by: {};", group_by.join(", "));
            }
            let _ = writeln!(out, "    func: {func};");
            if let Some(a) = attr {
                let _ = writeln!(out, "    attr: {a};");
            }
        }
        OpSpec::Join { period, predicate } => {
            let _ = writeln!(out, "    op: join;");
            let _ = writeln!(out, "    period: {};", period.as_millis());
            let _ = writeln!(out, "    predicate: {};", q(predicate));
        }
        OpSpec::TriggerOn {
            period,
            condition,
            targets,
        } => {
            let _ = writeln!(out, "    op: trigger_on;");
            let _ = writeln!(out, "    period: {};", period.as_millis());
            let _ = writeln!(out, "    condition: {};", q(condition));
            let _ = writeln!(out, "    targets: {};", targets.join(", "));
        }
        OpSpec::TriggerOff {
            period,
            condition,
            targets,
        } => {
            let _ = writeln!(out, "    op: trigger_off;");
            let _ = writeln!(out, "    period: {};", period.as_millis());
            let _ = writeln!(out, "    condition: {};", q(condition));
            let _ = writeln!(out, "    targets: {};", targets.join(", "));
        }
    }
    let _ = writeln!(out, "    inputs: {};", s.inputs.join(", "));
    out.push_str("  }\n");
}

fn print_sink(out: &mut String, s: &SinkDecl) {
    let _ = writeln!(out, "  sink {} {{", s.name);
    let _ = writeln!(out, "    kind: {};", s.kind);
    let _ = writeln!(out, "    inputs: {};", s.inputs.join(", "));
    out.push_str("  }\n");
}

fn print_channel(out: &mut String, c: &ChannelDecl) {
    let _ = writeln!(out, "  channel {} -> {} {{", c.from, c.to);
    let _ = writeln!(out, "    qos: {};", print_qos(&c.qos));
    out.push_str("  }\n");
}

/// Render a QoS spec in DSN syntax.
pub fn print_qos(q: &QosSpec) -> String {
    if q.is_best_effort() {
        return "best-effort".into();
    }
    let mut parts = Vec::new();
    if let Some(l) = q.max_latency {
        parts.push(format!("latency<={}", l.as_millis()));
    }
    if let Some(b) = q.min_bandwidth_bps {
        parts.push(format!("bandwidth>={b}"));
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SinkKind, SourceMode};
    use sl_stt::{Duration, Theme};

    #[test]
    fn prints_scenario_shaped_document() {
        let mut d = DsnDocument::new("osaka");
        d.sources.push(SourceDecl {
            name: "temperature".into(),
            filter: SubscriptionFilter::any()
                .with_theme(Theme::new("weather/temperature").unwrap()),
            mode: SourceMode::Active,
        });
        d.services.push(ServiceDecl {
            name: "hourly".into(),
            spec: OpSpec::Aggregate {
                period: Duration::from_hours(1),
                group_by: vec![],
                func: sl_ops::AggFunc::Avg,
                attr: Some("temperature".into()),
                sliding: None,
            },
            inputs: vec!["temperature".into()],
        });
        d.sinks.push(SinkDecl {
            name: "edw".into(),
            kind: SinkKind::Warehouse,
            inputs: vec!["hourly".into()],
        });
        let text = print_document(&d);
        assert!(text.starts_with("dsn \"osaka\" {"));
        assert!(text.contains("source temperature {"));
        assert!(text.contains("filter: theme=weather/temperature;"));
        assert!(text.contains("op: aggregate;"));
        assert!(text.contains("period: 3600000;"));
        assert!(text.contains("func: avg;"));
        assert!(text.contains("kind: warehouse;"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn quoting_escapes_single_quotes() {
        assert_eq!(q("a = 'x'"), "'a = ''x'''");
    }

    #[test]
    fn qos_rendering() {
        assert_eq!(print_qos(&QosSpec::best_effort()), "best-effort");
        let q = QosSpec::best_effort()
            .with_max_latency(Duration::from_millis(50))
            .with_min_bandwidth(1000);
        assert_eq!(print_qos(&q), "latency<=50, bandwidth>=1000");
    }
}
