//! Structural validation of DSN documents.
//!
//! These are the document-level halves of the "different checks in order to
//! draw only dataflows that can be soundly translated" (paper §3); the
//! schema-level checks live in `sl-dataflow::validate`, which runs *before*
//! translation. Validation here is what the SCN side re-checks on receipt
//! of a document (defence in depth: documents can also be authored by hand).
//!
//! Validation *accumulates*: [`validate_full`] runs every check and returns
//! all structural problems at once, so a designer fixing a hand-authored
//! document sees the complete picture rather than one error per round trip.
//! [`validate`] keeps the original fail-fast contract (first error wins) on
//! top of the same machinery.

use crate::ast::{DsnDocument, SourceMode};
use crate::error::DsnError;
use std::collections::{HashMap, HashSet};

/// The full outcome of structural validation: every problem found, plus the
/// topological service order when the dependency graph is well-formed.
#[derive(Debug, Clone, Default)]
pub struct DsnValidation {
    /// Every structural problem, in check order (names, inputs, arity,
    /// triggers, gating, channels, cycles).
    pub errors: Vec<DsnError>,
    /// Service names in a valid execution order; `None` when a cycle (or a
    /// dependency problem that prevents ordering) was found.
    pub topo_order: Option<Vec<String>>,
}

impl DsnValidation {
    /// True when no structural problem was found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// The first (worst) error, mirroring the historical fail-fast result.
    pub fn worst(&self) -> Option<&DsnError> {
        self.errors.first()
    }
}

/// Validate a document's structure. Returns the service names in a valid
/// topological execution order, or the first structural error found.
pub fn validate(doc: &DsnDocument) -> Result<Vec<String>, DsnError> {
    let mut full = validate_full(doc);
    if full.errors.is_empty() {
        Ok(full.topo_order.take().unwrap_or_default())
    } else {
        Err(full.errors.remove(0))
    }
}

/// Run every structural check and collect all diagnostics.
pub fn validate_full(doc: &DsnDocument) -> DsnValidation {
    let mut errors = Vec::new();

    // 1. Unique names.
    let mut seen = HashSet::new();
    for name in doc.names() {
        if !seen.insert(name) {
            errors.push(DsnError::DuplicateName(name.to_string()));
        }
    }

    // 2. Every input references a declared source or service (not a sink).
    let producers: HashSet<&str> = doc
        .sources
        .iter()
        .map(|s| s.name.as_str())
        .chain(doc.services.iter().map(|s| s.name.as_str()))
        .collect();
    for svc in &doc.services {
        for input in &svc.inputs {
            if !producers.contains(input.as_str()) {
                errors.push(DsnError::UnknownInput {
                    consumer: svc.name.clone(),
                    input: input.clone(),
                });
            }
        }
        // 3. Arity.
        let expected = svc.spec.input_ports();
        if svc.inputs.len() != expected {
            errors.push(DsnError::WrongArity {
                service: svc.name.clone(),
                expected,
                found: svc.inputs.len(),
            });
        }
    }
    for sink in &doc.sinks {
        if sink.inputs.is_empty() {
            errors.push(DsnError::Invalid(format!(
                "sink `{}` has no inputs",
                sink.name
            )));
        }
        for input in &sink.inputs {
            if !producers.contains(input.as_str()) {
                errors.push(DsnError::UnknownInput {
                    consumer: sink.name.clone(),
                    input: input.clone(),
                });
            }
        }
    }

    // 4. Trigger targets reference declared sources.
    let source_names: HashSet<&str> = doc.sources.iter().map(|s| s.name.as_str()).collect();
    for svc in &doc.services {
        if let Some(targets) = svc.spec.trigger_targets() {
            for t in targets {
                if !source_names.contains(t.as_str()) {
                    errors.push(DsnError::UnknownTriggerTarget {
                        service: svc.name.clone(),
                        target: t.clone(),
                    });
                }
            }
        }
    }

    // 5. Gated sources must be targeted by some Trigger-On, otherwise they
    //    can never produce data.
    let mut activated: HashSet<&str> = HashSet::new();
    for svc in &doc.services {
        if let sl_ops::OpSpec::TriggerOn { targets, .. } = &svc.spec {
            for t in targets {
                activated.insert(t.as_str());
            }
        }
    }
    for src in &doc.sources {
        if src.mode == SourceMode::Gated && !activated.contains(src.name.as_str()) {
            errors.push(DsnError::Invalid(format!(
                "gated source `{}` is never activated by a trigger",
                src.name
            )));
        }
    }

    // 6. Channels connect declared names that form an actual edge.
    let edges: HashSet<(String, String)> = doc
        .edges()
        .into_iter()
        .map(|(from, to, _)| (from, to))
        .collect();
    for ch in &doc.channels {
        if !producers.contains(ch.from.as_str()) && doc.sink(&ch.from).is_none() {
            errors.push(DsnError::UnknownChannelEndpoint(ch.from.clone()));
        }
        if doc.service(&ch.to).is_none() && doc.sink(&ch.to).is_none() {
            errors.push(DsnError::UnknownChannelEndpoint(ch.to.clone()));
        } else if !edges.contains(&(ch.from.clone(), ch.to.clone())) {
            errors.push(DsnError::Invalid(format!(
                "channel {} -> {} does not correspond to a dataflow edge",
                ch.from, ch.to
            )));
        }
    }

    // 7. Acyclicity + topological order of services (Kahn's algorithm over
    //    service-to-service dependencies).
    let service_idx: HashMap<&str, usize> = doc
        .services
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i))
        .collect();
    let n = doc.services.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, svc) in doc.services.iter().enumerate() {
        for input in &svc.inputs {
            if let Some(&j) = service_idx.get(input.as_str()) {
                dependents[j].push(i);
                indegree[i] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|i| indegree[*i] == 0).collect();
    queue.sort_unstable();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        order.push(doc.services[i].name.clone());
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(d);
            }
        }
    }
    let topo_order = if order.len() == n {
        Some(order)
    } else {
        let witness = doc
            .services
            .iter()
            .enumerate()
            .find(|(i, _)| indegree[*i] > 0)
            .map(|(_, s)| s.name.clone())
            .unwrap_or_default();
        errors.push(DsnError::Cycle { witness });
        None
    };

    DsnValidation { errors, topo_order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ServiceDecl, SinkDecl, SinkKind, SourceDecl};
    use sl_ops::OpSpec;
    use sl_pubsub::SubscriptionFilter;
    use sl_stt::Duration;

    fn source(name: &str, mode: SourceMode) -> SourceDecl {
        SourceDecl {
            name: name.into(),
            filter: SubscriptionFilter::any(),
            mode,
        }
    }

    fn filter_svc(name: &str, input: &str) -> ServiceDecl {
        ServiceDecl {
            name: name.into(),
            spec: OpSpec::Filter {
                condition: "true".into(),
            },
            inputs: vec![input.into()],
        }
    }

    fn valid_doc() -> DsnDocument {
        let mut d = DsnDocument::new("t");
        d.sources.push(source("a", SourceMode::Active));
        d.services.push(filter_svc("f1", "a"));
        d.services.push(filter_svc("f2", "f1"));
        d.sinks.push(SinkDecl {
            name: "out".into(),
            kind: SinkKind::Console,
            inputs: vec!["f2".into()],
        });
        d
    }

    #[test]
    fn valid_document_passes_with_topo_order() {
        let order = validate(&valid_doc()).unwrap();
        assert_eq!(order, vec!["f1".to_string(), "f2".to_string()]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = valid_doc();
        d.sources.push(source("f1", SourceMode::Active));
        assert!(matches!(validate(&d), Err(DsnError::DuplicateName(_))));
    }

    #[test]
    fn unknown_input_rejected() {
        let mut d = valid_doc();
        d.services.push(filter_svc("f3", "ghost"));
        assert!(matches!(validate(&d), Err(DsnError::UnknownInput { .. })));
    }

    #[test]
    fn sink_cannot_feed_service() {
        let mut d = valid_doc();
        d.services.push(filter_svc("f3", "out"));
        assert!(matches!(validate(&d), Err(DsnError::UnknownInput { .. })));
    }

    #[test]
    fn join_arity_enforced() {
        let mut d = valid_doc();
        d.services.push(ServiceDecl {
            name: "j".into(),
            spec: OpSpec::Join {
                period: Duration::from_secs(1),
                predicate: "true".into(),
            },
            inputs: vec!["a".into()],
        });
        assert!(matches!(
            validate(&d),
            Err(DsnError::WrongArity {
                expected: 2,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut d = DsnDocument::new("c");
        d.sources.push(source("a", SourceMode::Active));
        d.services.push(ServiceDecl {
            name: "x".into(),
            spec: OpSpec::Join {
                period: Duration::from_secs(1),
                predicate: "true".into(),
            },
            inputs: vec!["a".into(), "y".into()],
        });
        d.services.push(filter_svc("y", "x"));
        assert!(matches!(validate(&d), Err(DsnError::Cycle { .. })));
    }

    #[test]
    fn trigger_target_must_be_source() {
        let mut d = valid_doc();
        d.services.push(ServiceDecl {
            name: "t".into(),
            spec: OpSpec::TriggerOn {
                period: Duration::from_secs(1),
                condition: "true".into(),
                targets: vec!["f1".into()], // service, not source
            },
            inputs: vec!["a".into()],
        });
        assert!(matches!(
            validate(&d),
            Err(DsnError::UnknownTriggerTarget { .. })
        ));
    }

    #[test]
    fn gated_source_needs_activator() {
        let mut d = valid_doc();
        d.sources.push(source("dormant", SourceMode::Gated));
        assert!(matches!(validate(&d), Err(DsnError::Invalid(_))));
        // Adding a Trigger-On naming it fixes the document.
        d.services.push(ServiceDecl {
            name: "trig".into(),
            spec: OpSpec::TriggerOn {
                period: Duration::from_secs(1),
                condition: "true".into(),
                targets: vec!["dormant".into()],
            },
            inputs: vec!["a".into()],
        });
        // `dormant` feeds nothing, which is allowed (acquisition only).
        assert!(validate(&d).is_ok());
    }

    #[test]
    fn channel_must_match_edge() {
        let mut d = valid_doc();
        d.channels.push(crate::ast::ChannelDecl {
            from: "a".into(),
            to: "f2".into(), // a feeds f1, not f2
            qos: Default::default(),
        });
        assert!(matches!(validate(&d), Err(DsnError::Invalid(_))));
        let mut d = valid_doc();
        d.channels.push(crate::ast::ChannelDecl {
            from: "ghost".into(),
            to: "f1".into(),
            qos: Default::default(),
        });
        assert!(matches!(
            validate(&d),
            Err(DsnError::UnknownChannelEndpoint(_))
        ));
    }

    #[test]
    fn empty_sink_rejected() {
        let mut d = valid_doc();
        d.sinks.push(SinkDecl {
            name: "empty".into(),
            kind: SinkKind::Console,
            inputs: vec![],
        });
        assert!(matches!(validate(&d), Err(DsnError::Invalid(_))));
    }

    #[test]
    fn validate_full_accumulates_every_problem() {
        let mut d = valid_doc();
        d.sources.push(source("f1", SourceMode::Active)); // duplicate name
        d.services.push(filter_svc("f3", "ghost")); // unknown input
        d.sinks.push(SinkDecl {
            name: "empty".into(),
            kind: SinkKind::Console,
            inputs: vec![],
        });
        let full = validate_full(&d);
        assert!(!full.is_clean());
        assert!(
            full.errors.len() >= 3,
            "expected 3+ accumulated errors, got {:?}",
            full.errors
        );
        assert!(full
            .errors
            .iter()
            .any(|e| matches!(e, DsnError::DuplicateName(_))));
        assert!(full
            .errors
            .iter()
            .any(|e| matches!(e, DsnError::UnknownInput { .. })));
        assert!(full
            .errors
            .iter()
            .any(|e| matches!(e, DsnError::Invalid(_))));
        // The fail-fast API surfaces the first of them.
        assert!(matches!(validate(&d), Err(DsnError::DuplicateName(_))));
        // Ordering survives independent problems elsewhere in the document.
        assert!(full.topo_order.is_some());
    }

    #[test]
    fn validate_full_clean_document_reports_nothing() {
        let full = validate_full(&valid_doc());
        assert!(full.is_clean());
        assert!(full.worst().is_none());
        assert_eq!(
            full.topo_order.as_deref(),
            Some(&["f1".to_string(), "f2".to_string()][..])
        );
    }
}
