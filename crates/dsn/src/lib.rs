//! # sl-dsn — the DSN/SCN declarative networking language
//!
//! StreamLoader translates the conceptual dataflow into "DSN/SCN" — the
//! Declarative Service Networking description and the Service-Controlled
//! Networking commands that actuate it: "DSN provides a method to model and
//! describe a high-level network of information services for an application
//! [...]. The network control protocol stack interprets the DSN description
//! and dynamically coordinates the network configurations, such as data
//! flows, segmentations, and QoS parameters" (paper §2, after reference 8).
//!
//! NICT's language is not fully public, so this crate defines a DSN dialect
//! covering exactly the constructs the paper names:
//!
//! * **sources** bound by content-based sensor filters, with an
//!   active/gated acquisition mode (gated sources wait for a Trigger-On),
//! * **services** — one per Table-1 operation instance,
//! * **sinks** — warehouse / console / visualisation,
//! * **channels** with QoS parameters (latency bound, bandwidth
//!   reservation),
//!
//! plus the machinery around it:
//!
//! * [`parser`] / [`printer`] — a canonical textual form with a
//!   print→parse round-trip guarantee (property-tested),
//! * [`validate()`] — structural soundness checks,
//! * [`compile()`] — lowering to [`ScnCommand`]s executed by the
//!   engine against the network substrate.
//!
//! ## Example document
//!
//! ```text
//! dsn "osaka-hot-weather" {
//!   source temperature {
//!     filter: theme=weather/temperature & area=(34.5, 135.3)..(34.9, 135.7);
//!     mode: active;
//!   }
//!   service hourly_avg {
//!     op: aggregate; period: 3600000; group_by: station;
//!     func: avg; attr: temperature;
//!     inputs: temperature;
//!   }
//!   service hot {
//!     op: trigger_on; period: 3600000;
//!     condition: 'avg_temperature > 25';
//!     targets: rain, tweets, traffic;
//!     inputs: hourly_avg;
//!   }
//!   sink edw { kind: warehouse; inputs: hot; }
//!   channel temperature -> hourly_avg { qos: latency<=50, bandwidth>=100000; }
//! }
//! ```

pub mod ast;
pub mod compile;
pub mod error;
pub mod parser;
pub mod printer;
pub mod validate;

pub use ast::{ChannelDecl, DsnDocument, ServiceDecl, SinkDecl, SinkKind, SourceDecl, SourceMode};
pub use compile::{compile, ScnCommand, ScnProgram};
pub use error::DsnError;
pub use parser::parse_document;
pub use printer::print_document;
pub use validate::{validate, validate_full, DsnValidation};
