//! DSN-layer errors.

use std::fmt;

/// Errors from parsing, validating or compiling DSN documents.
#[derive(Debug, Clone, PartialEq)]
pub enum DsnError {
    /// Textual parse error.
    Parse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A declaration name is used twice.
    DuplicateName(String),
    /// An `inputs:` entry references a name that is not a source or service.
    UnknownInput {
        /// The referencing service/sink.
        consumer: String,
        /// The missing producer name.
        input: String,
    },
    /// A service has the wrong number of inputs for its operation.
    WrongArity {
        /// The service.
        service: String,
        /// Expected input count.
        expected: usize,
        /// Declared input count.
        found: usize,
    },
    /// The service graph contains a cycle.
    Cycle {
        /// A name on the cycle.
        witness: String,
    },
    /// A trigger names a target that is not a declared source.
    UnknownTriggerTarget {
        /// The trigger service.
        service: String,
        /// The missing target.
        target: String,
    },
    /// A channel endpoint does not exist.
    UnknownChannelEndpoint(String),
    /// A declaration is structurally invalid (bad operator parameters, ...).
    Invalid(String),
}

impl fmt::Display for DsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsnError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            DsnError::DuplicateName(n) => write!(f, "duplicate declaration name `{n}`"),
            DsnError::UnknownInput { consumer, input } => {
                write!(f, "`{consumer}` reads from unknown stream `{input}`")
            }
            DsnError::WrongArity {
                service,
                expected,
                found,
            } => {
                write!(
                    f,
                    "service `{service}` needs {expected} input(s), has {found}"
                )
            }
            DsnError::Cycle { witness } => {
                write!(f, "service graph has a cycle through `{witness}`")
            }
            DsnError::UnknownTriggerTarget { service, target } => {
                write!(f, "trigger `{service}` targets unknown source `{target}`")
            }
            DsnError::UnknownChannelEndpoint(n) => {
                write!(f, "channel endpoint `{n}` does not exist")
            }
            DsnError::Invalid(msg) => write!(f, "invalid document: {msg}"),
        }
    }
}

impl std::error::Error for DsnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = DsnError::Parse {
            line: 3,
            message: "expected `{`".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = DsnError::WrongArity {
            service: "j".into(),
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains('j'));
    }
}
