//! The DSN document model.

use sl_netsim::QosSpec;
use sl_ops::OpSpec;
use sl_pubsub::SubscriptionFilter;
use std::fmt;

/// Whether a source acquires from the start or waits for a Trigger-On.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceMode {
    /// Acquiring from deployment.
    #[default]
    Active,
    /// Deployed but dormant until a Trigger-On activates it ("the
    /// computation and acquisition ... can be triggered", paper §2).
    Gated,
}

impl fmt::Display for SourceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceMode::Active => write!(f, "active"),
            SourceMode::Gated => write!(f, "gated"),
        }
    }
}

/// A dataflow source: a content-based sensor binding.
#[derive(Debug, Clone)]
pub struct SourceDecl {
    /// Stream name referenced by services and triggers.
    pub name: String,
    /// Which sensors feed this stream.
    pub filter: SubscriptionFilter,
    /// Initial acquisition mode.
    pub mode: SourceMode,
}

/// A service: one Table-1 operation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDecl {
    /// Service name.
    pub name: String,
    /// The operation it runs.
    pub spec: OpSpec,
    /// Producer names, in port order (two for Join).
    pub inputs: Vec<String>,
}

/// Where a sink delivers its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// The Event Data Warehouse (paper reference 6).
    Warehouse,
    /// Log to the monitoring console.
    Console,
    /// A visualisation tool (the paper demos Sticker, reference 11).
    Visualization,
}

impl SinkKind {
    /// Canonical identifier.
    pub fn name(self) -> &'static str {
        match self {
            SinkKind::Warehouse => "warehouse",
            SinkKind::Console => "console",
            SinkKind::Visualization => "visualization",
        }
    }

    /// Parse the identifier.
    pub fn parse(s: &str) -> Option<SinkKind> {
        match s.trim() {
            "warehouse" => Some(SinkKind::Warehouse),
            "console" => Some(SinkKind::Console),
            "visualization" => Some(SinkKind::Visualization),
            _ => None,
        }
    }
}

impl fmt::Display for SinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A sink declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkDecl {
    /// Sink name.
    pub name: String,
    /// Destination kind.
    pub kind: SinkKind,
    /// Producer names feeding the sink.
    pub inputs: Vec<String>,
}

/// A channel with QoS requirements between two declared endpoints.
/// Channels are optional: edges without a channel declaration default to
/// best-effort.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelDecl {
    /// Producer name.
    pub from: String,
    /// Consumer name.
    pub to: String,
    /// Requested QoS.
    pub qos: QosSpec,
}

/// A complete DSN document.
#[derive(Debug, Clone, Default)]
pub struct DsnDocument {
    /// Dataflow name.
    pub name: String,
    /// Source declarations.
    pub sources: Vec<SourceDecl>,
    /// Service declarations.
    pub services: Vec<ServiceDecl>,
    /// Sink declarations.
    pub sinks: Vec<SinkDecl>,
    /// Channel declarations.
    pub channels: Vec<ChannelDecl>,
}

impl DsnDocument {
    /// An empty document with the given name.
    pub fn new(name: &str) -> DsnDocument {
        DsnDocument {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Look up a source by name.
    pub fn source(&self, name: &str) -> Option<&SourceDecl> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// Look up a service by name.
    pub fn service(&self, name: &str) -> Option<&ServiceDecl> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Look up a sink by name.
    pub fn sink(&self, name: &str) -> Option<&SinkDecl> {
        self.sinks.iter().find(|s| s.name == name)
    }

    /// The QoS declared for edge `from → to`, or best-effort.
    pub fn qos_for(&self, from: &str, to: &str) -> QosSpec {
        self.channels
            .iter()
            .find(|c| c.from == from && c.to == to)
            .map(|c| c.qos)
            .unwrap_or_default()
    }

    /// Every declared name, in declaration order (sources, services, sinks).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sources
            .iter()
            .map(|s| s.name.as_str())
            .chain(self.services.iter().map(|s| s.name.as_str()))
            .chain(self.sinks.iter().map(|s| s.name.as_str()))
    }

    /// All dataflow edges `(from, to, port)` implied by `inputs:` clauses.
    pub fn edges(&self) -> Vec<(String, String, usize)> {
        let mut edges = Vec::new();
        for svc in &self.services {
            for (port, input) in svc.inputs.iter().enumerate() {
                edges.push((input.clone(), svc.name.clone(), port));
            }
        }
        for sink in &self.sinks {
            for (port, input) in sink.inputs.iter().enumerate() {
                edges.push((input.clone(), sink.name.clone(), port));
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_stt::Duration;

    fn doc() -> DsnDocument {
        let mut d = DsnDocument::new("test");
        d.sources.push(SourceDecl {
            name: "temp".into(),
            filter: SubscriptionFilter::any(),
            mode: SourceMode::Active,
        });
        d.services.push(ServiceDecl {
            name: "f".into(),
            spec: OpSpec::Filter {
                condition: "v > 1".into(),
            },
            inputs: vec!["temp".into()],
        });
        d.sinks.push(SinkDecl {
            name: "out".into(),
            kind: SinkKind::Console,
            inputs: vec!["f".into()],
        });
        d.channels.push(ChannelDecl {
            from: "temp".into(),
            to: "f".into(),
            qos: QosSpec::best_effort().with_max_latency(Duration::from_millis(10)),
        });
        d
    }

    #[test]
    fn lookups() {
        let d = doc();
        assert!(d.source("temp").is_some());
        assert!(d.service("f").is_some());
        assert!(d.sink("out").is_some());
        assert!(d.source("nope").is_none());
        assert_eq!(d.names().count(), 3);
    }

    #[test]
    fn qos_lookup_defaults_to_best_effort() {
        let d = doc();
        assert!(!d.qos_for("temp", "f").is_best_effort());
        assert!(d.qos_for("f", "out").is_best_effort());
    }

    #[test]
    fn edges_enumerate_ports() {
        let d = doc();
        let e = d.edges();
        assert_eq!(e.len(), 2);
        assert!(e.contains(&("temp".into(), "f".into(), 0)));
        assert!(e.contains(&("f".into(), "out".into(), 0)));
    }

    #[test]
    fn sink_kind_round_trip() {
        for k in [
            SinkKind::Warehouse,
            SinkKind::Console,
            SinkKind::Visualization,
        ] {
            assert_eq!(SinkKind::parse(k.name()), Some(k));
        }
        assert_eq!(SinkKind::parse("printer"), None);
    }
}
