//! Parser for the canonical DSN textual form (see [`crate::printer`]).
//!
//! Hand-rolled cursor parser with line tracking; `#` starts a line comment.

use crate::ast::{
    ChannelDecl, DsnDocument, ServiceDecl, SinkDecl, SinkKind, SourceDecl, SourceMode,
};
use crate::error::DsnError;
use sl_netsim::QosSpec;
use sl_ops::{AggFunc, OpSpec};
use sl_pubsub::{SensorKind, SubscriptionFilter};
use sl_stt::{AttrType, BoundingBox, Duration, GeoPoint, Theme, TimeInterval, Timestamp};

/// Parse a DSN document from text.
pub fn parse_document(src: &str) -> Result<DsnDocument, DsnError> {
    let mut c = Cursor::new(src);
    c.skip_ws();
    c.expect_word("dsn")?;
    let name = c.read_dq_string()?;
    c.expect_char('{')?;
    let mut doc = DsnDocument::new(&name);
    loop {
        c.skip_ws();
        if c.try_char('}') {
            break;
        }
        let kw = c.read_ident()?;
        match kw.as_str() {
            "source" => {
                let name = c.read_ident()?;
                let props = c.read_block()?;
                doc.sources.push(build_source(&name, props, c.line)?);
            }
            "service" => {
                let name = c.read_ident()?;
                let props = c.read_block()?;
                doc.services.push(build_service(&name, props, c.line)?);
            }
            "sink" => {
                let name = c.read_ident()?;
                let props = c.read_block()?;
                doc.sinks.push(build_sink(&name, props, c.line)?);
            }
            "channel" => {
                let from = c.read_ident()?;
                c.expect_word("->")?;
                let to = c.read_ident()?;
                let props = c.read_block()?;
                doc.channels.push(build_channel(&from, &to, props, c.line)?);
            }
            other => {
                return Err(c.err(format!(
                    "expected source/service/sink/channel, found `{other}`"
                )));
            }
        }
    }
    c.skip_ws();
    if !c.at_end() {
        return Err(c.err("trailing content after closing `}`".into()));
    }
    Ok(doc)
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
}

type Props = Vec<(String, String, usize)>; // key, raw value, line

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor {
            src: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: String) -> DsnError {
        DsnError::Parse {
            line: self.line,
            message,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn try_char(&mut self, ch: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(ch as u8) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, ch: char) -> Result<(), DsnError> {
        if self.try_char(ch) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{ch}`")))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), DsnError> {
        self.skip_ws();
        if self.text[self.pos..].starts_with(word) {
            for _ in 0..word.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn read_ident(&mut self) -> Result<String, DsnError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'/' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected an identifier".into()));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn read_dq_string(&mut self) -> Result<String, DsnError> {
        self.skip_ws();
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a double-quoted string".into()));
        }
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string".into())),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b) => {
                        out.push('\\');
                        out.push(b as char);
                    }
                    None => return Err(self.err("unterminated escape".into())),
                },
                Some(b'"') => break,
                Some(_) => {
                    // Re-read the full UTF-8 character.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.bump();
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
            }
        }
        Ok(out)
    }

    /// Read a `{ key: value; ... }` block, values raw (quotes respected).
    fn read_block(&mut self) -> Result<Props, DsnError> {
        self.expect_char('{')?;
        let mut props = Vec::new();
        loop {
            self.skip_ws();
            if self.try_char('}') {
                break;
            }
            let key = self.read_ident()?;
            self.expect_char(':')?;
            let line = self.line;
            let value = self.read_raw_value()?;
            props.push((key, value, line));
        }
        Ok(props)
    }

    /// Raw property value: everything up to the terminating `;`, skipping
    /// over single-quoted segments (with `''` escaping).
    fn read_raw_value(&mut self) -> Result<String, DsnError> {
        self.skip_ws();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated property (missing `;`)".into())),
                Some(b';') => {
                    let raw = self.text[start..self.pos].trim().to_string();
                    self.bump();
                    return Ok(raw);
                }
                Some(b'\'') => {
                    self.bump();
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated quoted value".into())),
                            Some(b'\'') => {
                                if self.peek() == Some(b'\'') {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                            Some(_) => {}
                        }
                    }
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Declaration builders
// ---------------------------------------------------------------------------

fn perr(line: usize, message: String) -> DsnError {
    DsnError::Parse { line, message }
}

fn take<'p>(props: &'p Props, key: &str) -> Option<&'p (String, String, usize)> {
    props.iter().find(|(k, _, _)| k == key)
}

fn require<'p>(props: &'p Props, key: &str, line: usize) -> Result<&'p str, DsnError> {
    take(props, key)
        .map(|(_, v, _)| v.as_str())
        .ok_or_else(|| perr(line, format!("missing required property `{key}`")))
}

/// Strip single quotes from a quoted value (or return it raw).
fn unquote(v: &str) -> String {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('\'') && v.ends_with('\'') {
        v[1..v.len() - 1].replace("''", "'")
    } else {
        v.to_string()
    }
}

/// Split on top-level commas, respecting single quotes.
fn split_commas(v: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_q = false;
    let mut chars = v.chars().peekable();
    while let Some(ch) = chars.next() {
        match ch {
            '\'' => {
                if in_q && chars.peek() == Some(&'\'') {
                    cur.push('\'');
                    cur.push(chars.next().expect("peeked"));
                } else {
                    in_q = !in_q;
                    cur.push('\'');
                }
            }
            ',' if !in_q => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

fn parse_u64(v: &str, what: &str, line: usize) -> Result<u64, DsnError> {
    v.trim()
        .parse::<u64>()
        .map_err(|_| perr(line, format!("`{v}` is not a valid {what}")))
}

fn parse_f64(v: &str, what: &str, line: usize) -> Result<f64, DsnError> {
    v.trim()
        .parse::<f64>()
        .map_err(|_| perr(line, format!("`{v}` is not a valid {what}")))
}

/// Parse `(lat, lon)..(lat, lon)` into a bounding box.
fn parse_box(v: &str, line: usize) -> Result<BoundingBox, DsnError> {
    let parts: Vec<&str> = v.split("..").collect();
    if parts.len() != 2 {
        return Err(perr(
            line,
            format!("`{v}` is not a `(lat, lon)..(lat, lon)` box"),
        ));
    }
    let mut corners = Vec::with_capacity(2);
    for p in parts {
        let p = p.trim();
        let inner = p
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| perr(line, format!("`{p}` is not a `(lat, lon)` pair")))?;
        let nums: Vec<&str> = inner.split(',').collect();
        if nums.len() != 2 {
            return Err(perr(line, format!("`{p}` is not a `(lat, lon)` pair")));
        }
        let lat = parse_f64(nums[0], "latitude", line)?;
        let lon = parse_f64(nums[1], "longitude", line)?;
        corners.push(GeoPoint::new(lat, lon).map_err(|e| perr(line, e.to_string()))?);
    }
    Ok(BoundingBox::from_corners(corners[0], corners[1]))
}

/// Parse a DSN filter expression (the inverse of
/// [`crate::printer::print_filter`]).
pub fn parse_filter(v: &str, line: usize) -> Result<SubscriptionFilter, DsnError> {
    let v = v.trim();
    if v == "any" {
        return Ok(SubscriptionFilter::any());
    }
    let mut f = SubscriptionFilter::any();
    for part in v.split('&') {
        let part = part.trim();
        if let Some(theme) = part.strip_prefix("theme=") {
            f.theme = Some(Theme::new(theme).map_err(|e| perr(line, e.to_string()))?);
        } else if let Some(area) = part.strip_prefix("area=") {
            f.area = Some(parse_box(area, line)?);
        } else if let Some(kind) = part.strip_prefix("kind=") {
            f.kind = Some(match kind.trim() {
                "physical" => SensorKind::Physical,
                "social" => SensorKind::Social,
                other => return Err(perr(line, format!("unknown sensor kind `{other}`"))),
            });
        } else if let Some(req) = part.strip_prefix("has ") {
            let (name, ty) = req
                .split_once(':')
                .ok_or_else(|| perr(line, format!("`{req}` is not `name:type`")))?;
            let ty = AttrType::parse(ty).map_err(|e| perr(line, e.to_string()))?;
            f.required_attrs.push((name.trim().to_string(), ty));
        } else if let Some(glob) = part.strip_prefix("name~") {
            f.name_glob = Some(glob.trim().to_string());
        } else if let Some(p) = part.strip_prefix("period<=") {
            f.max_period = Some(Duration::from_millis(parse_u64(p, "period", line)?));
        } else if let Some(req) = part.strip_prefix("unit ") {
            let (name, unit) = req
                .split_once('=')
                .ok_or_else(|| perr(line, format!("`{req}` is not `attr=unit`")))?;
            let unit = sl_stt::Unit::parse(unit).map_err(|e| perr(line, e.to_string()))?;
            f.required_units.push((name.trim().to_string(), unit));
        } else {
            return Err(perr(line, format!("unknown filter constraint `{part}`")));
        }
    }
    Ok(f)
}

/// Parse a QoS value (the inverse of [`crate::printer::print_qos`]).
pub fn parse_qos(v: &str, line: usize) -> Result<QosSpec, DsnError> {
    let v = v.trim();
    if v == "best-effort" {
        return Ok(QosSpec::best_effort());
    }
    let mut q = QosSpec::best_effort();
    for part in v.split(',') {
        let part = part.trim();
        if let Some(l) = part.strip_prefix("latency<=") {
            q.max_latency = Some(Duration::from_millis(parse_u64(l, "latency", line)?));
        } else if let Some(b) = part.strip_prefix("bandwidth>=") {
            q.min_bandwidth_bps = Some(parse_u64(b, "bandwidth", line)?);
        } else {
            return Err(perr(line, format!("unknown QoS constraint `{part}`")));
        }
    }
    Ok(q)
}

fn build_source(name: &str, props: Props, line: usize) -> Result<SourceDecl, DsnError> {
    let filter = parse_filter(require(&props, "filter", line)?, line)?;
    let mode = match take(&props, "mode").map(|(_, v, _)| v.as_str()) {
        None | Some("active") => SourceMode::Active,
        Some("gated") => SourceMode::Gated,
        Some(other) => return Err(perr(line, format!("unknown source mode `{other}`"))),
    };
    Ok(SourceDecl {
        name: name.to_string(),
        filter,
        mode,
    })
}

fn parse_names(v: &str) -> Vec<String> {
    split_commas(v)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect()
}

fn build_service(name: &str, props: Props, line: usize) -> Result<ServiceDecl, DsnError> {
    let op = require(&props, "op", line)?;
    let period = |key: &str| -> Result<Duration, DsnError> {
        Ok(Duration::from_millis(parse_u64(
            require(&props, key, line)?,
            "period",
            line,
        )?))
    };
    let spec = match op {
        "filter" => OpSpec::Filter {
            condition: unquote(require(&props, "condition", line)?),
        },
        "transform" => {
            let raw = require(&props, "assign", line)?;
            let mut assignments = Vec::new();
            for part in split_commas(raw) {
                let (attr, expr) = part
                    .split_once(":=")
                    .ok_or_else(|| perr(line, format!("`{part}` is not `attr := 'expr'`")))?;
                assignments.push((attr.trim().to_string(), unquote(expr)));
            }
            OpSpec::Transform { assignments }
        }
        "virtual_property" => OpSpec::VirtualProperty {
            property: require(&props, "property", line)?.to_string(),
            spec: unquote(require(&props, "spec", line)?),
        },
        "cull_time" => {
            let raw = require(&props, "interval", line)?;
            let (a, b) = raw
                .split_once("..")
                .ok_or_else(|| perr(line, format!("`{raw}` is not `start..end`")))?;
            let start = a
                .trim()
                .parse::<i64>()
                .map_err(|_| perr(line, format!("bad interval start `{a}`")))?;
            let end = b
                .trim()
                .parse::<i64>()
                .map_err(|_| perr(line, format!("bad interval end `{b}`")))?;
            if end < start {
                return Err(perr(line, "interval end before start".into()));
            }
            OpSpec::CullTime {
                interval: TimeInterval::new(
                    Timestamp::from_millis(start),
                    Timestamp::from_millis(end),
                ),
                rate: parse_u64(require(&props, "rate", line)?, "rate", line)?,
            }
        }
        "cull_space" => OpSpec::CullSpace {
            area: parse_box(require(&props, "area", line)?, line)?,
            rate: parse_u64(require(&props, "rate", line)?, "rate", line)?,
        },
        "aggregate" => OpSpec::Aggregate {
            period: period("period")?,
            group_by: take(&props, "group_by")
                .map(|(_, v, _)| parse_names(v))
                .unwrap_or_default(),
            func: AggFunc::parse(require(&props, "func", line)?)
                .map_err(|e| perr(line, e.to_string()))?,
            attr: take(&props, "attr").map(|(_, v, _)| v.to_string()),
            sliding: match take(&props, "sliding") {
                Some((_, v, l)) => Some(Duration::from_millis(parse_u64(v, "sliding span", *l)?)),
                None => None,
            },
        },
        "join" => OpSpec::Join {
            period: period("period")?,
            predicate: unquote(require(&props, "predicate", line)?),
        },
        "trigger_on" => OpSpec::TriggerOn {
            period: period("period")?,
            condition: unquote(require(&props, "condition", line)?),
            targets: parse_names(require(&props, "targets", line)?),
        },
        "trigger_off" => OpSpec::TriggerOff {
            period: period("period")?,
            condition: unquote(require(&props, "condition", line)?),
            targets: parse_names(require(&props, "targets", line)?),
        },
        other => return Err(perr(line, format!("unknown operation `{other}`"))),
    };
    let inputs = parse_names(require(&props, "inputs", line)?);
    Ok(ServiceDecl {
        name: name.to_string(),
        spec,
        inputs,
    })
}

fn build_sink(name: &str, props: Props, line: usize) -> Result<SinkDecl, DsnError> {
    let kind = SinkKind::parse(require(&props, "kind", line)?)
        .ok_or_else(|| perr(line, "unknown sink kind".into()))?;
    let inputs = parse_names(require(&props, "inputs", line)?);
    Ok(SinkDecl {
        name: name.to_string(),
        kind,
        inputs,
    })
}

fn build_channel(from: &str, to: &str, props: Props, line: usize) -> Result<ChannelDecl, DsnError> {
    let qos = parse_qos(require(&props, "qos", line)?, line)?;
    Ok(ChannelDecl {
        from: from.to_string(),
        to: to.to_string(),
        qos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = r#"
dsn "osaka-hot-weather" {
  # Osaka-area temperature sensors.
  source temperature {
    filter: theme=weather/temperature & area=(34.5, 135.3)..(34.9, 135.7);
    mode: active;
  }
  source rain {
    filter: theme=weather/rain & kind=physical;
    mode: gated;
  }
  service hourly_avg {
    op: aggregate; period: 3600000;
    group_by: station;
    func: avg; attr: temperature;
    inputs: temperature;
  }
  service hot {
    op: trigger_on; period: 3600000;
    condition: 'avg_temperature > 25';
    targets: rain;
    inputs: hourly_avg;
  }
  service heavy {
    op: filter;
    condition: 'rain > 10 and station != ''broken''';
    inputs: rain;
  }
  sink edw { kind: warehouse; inputs: heavy; }
  channel temperature -> hourly_avg { qos: latency<=50, bandwidth>=100000; }
  channel rain -> heavy { qos: best-effort; }
}
"#;

    #[test]
    fn parses_scenario_document() {
        let doc = parse_document(SCENARIO).unwrap();
        assert_eq!(doc.name, "osaka-hot-weather");
        assert_eq!(doc.sources.len(), 2);
        assert_eq!(doc.services.len(), 3);
        assert_eq!(doc.sinks.len(), 1);
        assert_eq!(doc.channels.len(), 2);

        let temp = doc.source("temperature").unwrap();
        assert_eq!(temp.mode, SourceMode::Active);
        assert_eq!(
            temp.filter.theme.as_ref().unwrap().as_str(),
            "weather/temperature"
        );
        assert!(temp.filter.area.is_some());

        let rain = doc.source("rain").unwrap();
        assert_eq!(rain.mode, SourceMode::Gated);
        assert_eq!(rain.filter.kind, Some(SensorKind::Physical));

        let agg = doc.service("hourly_avg").unwrap();
        match &agg.spec {
            OpSpec::Aggregate {
                period,
                group_by,
                func,
                attr,
                sliding,
            } => {
                assert_eq!(*sliding, None);
                assert_eq!(*period, Duration::from_hours(1));
                assert_eq!(group_by, &["station".to_string()]);
                assert_eq!(*func, AggFunc::Avg);
                assert_eq!(attr.as_deref(), Some("temperature"));
            }
            other => panic!("{other:?}"),
        }

        let hot = doc.service("hot").unwrap();
        match &hot.spec {
            OpSpec::TriggerOn {
                condition, targets, ..
            } => {
                assert_eq!(condition, "avg_temperature > 25");
                assert_eq!(targets, &["rain".to_string()]);
            }
            other => panic!("{other:?}"),
        }

        // Quote escaping survived.
        let heavy = doc.service("heavy").unwrap();
        match &heavy.spec {
            OpSpec::Filter { condition } => {
                assert_eq!(condition, "rain > 10 and station != 'broken'");
            }
            other => panic!("{other:?}"),
        }

        let qos = doc.qos_for("temperature", "hourly_avg");
        assert_eq!(qos.max_latency, Some(Duration::from_millis(50)));
        assert_eq!(qos.min_bandwidth_bps, Some(100000));
        assert!(doc.qos_for("rain", "heavy").is_best_effort());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "dsn \"x\" {\n  source s {\n    filter: theme=;\n  }\n}";
        match parse_document(bad) {
            Err(DsnError::Parse { line, .. }) => assert!(line >= 3, "line {line}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sliding_aggregate_round_trips() {
        let text = "dsn \"x\" { service s { op: aggregate; period: 60000; sliding: 3600000; func: avg; attr: temperature; inputs: a; } }";
        let doc = parse_document(text).unwrap();
        match &doc.service("s").unwrap().spec {
            OpSpec::Aggregate { sliding, .. } => {
                assert_eq!(*sliding, Some(Duration::from_hours(1)));
            }
            other => panic!("{other:?}"),
        }
        let printed = crate::printer::print_document(&doc);
        assert!(printed.contains("sliding: 3600000;"));
        let again = parse_document(&printed).unwrap();
        assert_eq!(crate::printer::print_document(&again), printed);
    }

    #[test]
    fn rejects_unknown_keyword() {
        assert!(parse_document("dsn \"x\" { gizmo g { } }").is_err());
    }

    #[test]
    fn rejects_missing_required_props() {
        assert!(parse_document("dsn \"x\" { source s { mode: active; } }").is_err());
        assert!(parse_document("dsn \"x\" { service s { op: filter; inputs: a; } }").is_err());
        assert!(parse_document("dsn \"x\" { sink s { inputs: a; } }").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_document("dsn \"x\" { } extra").is_err());
    }

    #[test]
    fn rejects_bad_interval_and_rate() {
        let doc = |body: &str| format!("dsn \"x\" {{ service s {{ {body} inputs: a; }} }}");
        assert!(parse_document(&doc("op: cull_time; interval: 500..100; rate: 2;")).is_err());
        assert!(parse_document(&doc("op: cull_time; interval: abc..100; rate: 2;")).is_err());
        assert!(parse_document(&doc("op: cull_time; interval: 1..100; rate: x;")).is_err());
    }

    #[test]
    fn empty_document_parses() {
        let doc = parse_document("dsn \"empty\" { }").unwrap();
        assert!(doc.sources.is_empty());
        assert!(doc.names().next().is_none());
    }

    #[test]
    fn comments_are_skipped() {
        let doc = parse_document("# heading\ndsn \"x\" { # inline\n }").unwrap();
        assert_eq!(doc.name, "x");
    }

    #[test]
    fn split_commas_respects_quotes() {
        let parts = split_commas("a := 'f(x, y)', b := '1,2'");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], "a := 'f(x, y)'");
    }

    #[test]
    fn filter_round_trip_via_printer() {
        use crate::printer::print_filter;
        let filters = [
            "any",
            "theme=weather/rain",
            "theme=weather & kind=social",
            "area=(34.5, 135.3)..(34.9, 135.7)",
            "has temperature:float & has station:str",
            "name~osaka-* & period<=30000",
            "theme=weather/temperature & unit temperature=celsius",
        ];
        for src in filters {
            let f = parse_filter(src, 1).unwrap();
            let printed = print_filter(&f);
            let f2 = parse_filter(&printed, 1).unwrap();
            assert_eq!(print_filter(&f2), printed, "for `{src}`");
        }
    }
}
