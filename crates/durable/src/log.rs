//! The append-only segment log.
//!
//! A log directory holds numbered segment files (`seg-000001.slg`, ...).
//! Each segment starts with an 8-byte header (`b"SLDUR"`, the codec
//! version, two reserved bytes) followed by checksummed frames (see
//! [`crate::codec`]). The last segment is *active*: appends go there until
//! it reaches [`DurableConfig::segment_max_bytes`], at which point it is
//! sealed (fsynced) and a fresh segment is started — sealed segments are
//! never written again, which is what makes them safe cold storage for
//! [`crate::DurableWarehouse`]'s spilled events.
//!
//! # Generations
//!
//! Compaction (see [`crate::compact`]) merges a run of sealed segments into
//! one *generation-N* segment named `seg-AAAAAA-BBBBBB-gN.slg`, covering
//! the original numbers `AAAAAA..=BBBBBB`. Its frames are renumbered
//! `0..n` and positions within it use the first covered number, so
//! [`LogPos`] order still equals append order across the whole log.
//! Generation ≥ 1 segments carry a per-block [`ThemeFilter`] zone index,
//! persisted in a checksummed `.szi` sidecar next to the segment; the
//! recovery scan rebuilds and verifies it, rewriting a missing or stale
//! sidecar in place.
//!
//! The replacement itself is crash-safe: the product and its sidecar are
//! written under temporary names, fsynced, renamed into place, and only
//! then are the input segments deleted. [`SegmentLog::open`] finishes
//! whatever a crash interrupted — stray `.tmp` files are removed, and when
//! both a product and its inputs survive, the product wins if it verifies
//! end-to-end, otherwise the inputs do.
//!
//! # Recovery
//!
//! [`SegmentLog::open`] scans every segment front to back, verifying each
//! frame's checksum. At the first incomplete or corrupt frame it truncates
//! the file right there and — because a corrupt *middle* segment means
//! everything after it is of unknown provenance — deletes any later
//! segments. Everything before the cut is returned to the caller; the
//! [`RecoveryReport`] accounts for everything after it. A torn or missing
//! header truncates the segment to empty. This is the standard
//! truncate-on-recovery discipline of log-structured stores: an fsynced
//! frame is never lost, an unsynced tail is *visibly* dropped, and no
//! half-written bytes are ever decoded.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `Always` makes every
//! append crash-safe, `EveryN` bounds the loss window to n-1 records,
//! `OnSeal` only guarantees sealed segments. The fsync latency histogram
//! and byte counters are exported through [`SegmentLog::metrics_snapshot`].

use crate::cache::{BlockCache, BlockKey};
use crate::codec::{frame, read_frame, FrameRead, Record, CODEC_VERSION};
use crate::compact::{CompactionPolicy, SegmentMeta};
use crate::error::DurableError;
use crate::index::{decode_sidecar, encode_sidecar, Pruner, Sidecar, ThemeFilter, ZoneEntry};
use sl_obs::{Metrics, MetricsSnapshot, Stopwatch};
use sl_stt::{Theme, TimeInterval};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every segment file.
const MAGIC: &[u8; 5] = b"SLDUR";
/// Full header: magic, codec version, two reserved bytes.
const HEADER_LEN: u64 = 8;

/// When to force written frames onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append — every acked record survives any crash.
    Always,
    /// fsync after every `n` appends — bounds loss to the last `n-1` records.
    EveryN(u32),
    /// fsync only when a segment seals (and on explicit [`SegmentLog::sync`]).
    OnSeal,
}

/// Configuration of a durable log directory.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Durability/throughput trade-off.
    pub fsync: FsyncPolicy,
    /// Seal the active segment when it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Sparse time index stride: one index block per this many frames.
    pub index_every: u32,
    /// Background storage maintenance: when and what to compact.
    pub compaction: CompactionPolicy,
    /// Capacity of the decoded-block LRU cache fronting cold reads
    /// (0 disables caching).
    pub cache_blocks: usize,
}

impl DurableConfig {
    /// Defaults rooted at `dir`: fsync every write (the safe default),
    /// 1 MiB segments, an index block every 64 frames, compaction off,
    /// a 64-block cache.
    pub fn at(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_max_bytes: 1024 * 1024,
            index_every: 64,
            compaction: CompactionPolicy::default(),
            cache_blocks: 64,
        }
    }

    /// Replace the fsync policy.
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> DurableConfig {
        self.fsync = policy;
        self
    }

    /// Replace the segment size bound.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> DurableConfig {
        self.segment_max_bytes = bytes.max(HEADER_LEN + 1);
        self
    }

    /// Replace the compaction policy.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> DurableConfig {
        self.compaction = policy;
        self
    }

    /// Replace the block-cache capacity (0 disables caching).
    pub fn with_cache_blocks(mut self, blocks: usize) -> DurableConfig {
        self.cache_blocks = blocks;
        self
    }
}

/// Position of a frame in the log: (segment number, frame index within it).
/// Ordered by log append order. A compacted segment covering numbers
/// `first..=last` uses `first` as its segment number, so order is preserved
/// across compactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogPos {
    /// Segment number (the `NNNNNN` in `seg-NNNNNN.slg`; the first covered
    /// number for a compacted segment).
    pub segment: u32,
    /// Zero-based frame index within the segment.
    pub frame: u32,
}

/// What [`SegmentLog::open`] found — and what it had to cut.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Event records recovered.
    pub events: u64,
    /// Checkpoint records recovered.
    pub checkpoints: u64,
    /// Horizon markers recovered.
    pub horizons: u64,
    /// Bytes removed by torn-tail truncation (including any dropped
    /// segments' payload bytes).
    pub truncated_bytes: u64,
    /// Whole later segments deleted because an earlier one was corrupt.
    pub dropped_segments: u64,
    /// Segments deleted while finishing an interrupted compaction (either
    /// inputs superseded by a verified product, or a damaged product
    /// superseded by its surviving inputs). Not data loss.
    pub superseded_segments: u64,
    /// Zone-index sidecars rewritten because they were missing or stale.
    pub sidecars_rebuilt: u64,
    /// Wall-clock recovery time in microseconds.
    pub duration_us: u64,
}

impl RecoveryReport {
    /// Total records recovered.
    pub fn records(&self) -> u64 {
        self.events + self.checkpoints + self.horizons
    }

    /// True if recovery had to cut anything (torn tail or dropped segments).
    pub fn lossy(&self) -> bool {
        self.truncated_bytes > 0 || self.dropped_segments > 0
    }
}

/// One index block: `frames` consecutive frames starting at byte `offset`,
/// with the time bounds of the *event* records among them and, for
/// generation ≥ 1 segments, a theme-prefix summary of those events.
#[derive(Debug, Clone)]
struct IndexBlock {
    offset: u64,
    frames: u32,
    /// Minimum `interval.start` over events in the block (ms); `i64::MAX`
    /// when the block holds no events.
    min_start: i64,
    /// Maximum `interval.end` over events in the block (ms); `i64::MIN`
    /// when the block holds no events.
    max_end: i64,
    /// Theme summary (generation ≥ 1 segments only).
    filter: Option<ThemeFilter>,
}

impl IndexBlock {
    fn at(offset: u64, with_filter: bool) -> IndexBlock {
        IndexBlock {
            offset,
            frames: 0,
            min_start: i64::MAX,
            max_end: i64::MIN,
            filter: with_filter.then(ThemeFilter::new),
        }
    }

    /// Can any event in this block overlap `range`? (No events → no.)
    fn may_overlap(&self, range: &TimeInterval) -> bool {
        self.min_start < range.end.as_millis() && range.start.as_millis() < self.max_end
    }

    /// Can any event in this block satisfy every constraint in `pruner`?
    /// With no constraints, always true (full scans read everything).
    fn may_match(&self, pruner: &Pruner) -> bool {
        let constrained = pruner.time.is_some() || pruner.theme.is_some();
        if constrained && self.min_start == i64::MAX {
            return false; // no events in the block
        }
        if let Some(range) = &pruner.time {
            if !self.may_overlap(range) {
                return false;
            }
        }
        if let (Some(theme), Some(filter)) = (&pruner.theme, &self.filter) {
            if !filter.may_contain(theme) {
                return false;
            }
        }
        true
    }
}

/// In-memory state of one on-disk segment. The sparse index is rebuilt from
/// the file on open — only the frames (and, for compacted segments, the
/// `.szi` sidecar) live on disk.
#[derive(Debug)]
struct Segment {
    /// First covered segment number: the segment's identity and the
    /// `segment` field of every position within it.
    number: u32,
    /// Last covered segment number (`== number` for generation 0).
    last: u32,
    /// Compaction generation (0 = written by the appender).
    generation: u32,
    path: PathBuf,
    /// Current file length in bytes (header included).
    bytes: u64,
    frames: u32,
    blocks: Vec<IndexBlock>,
}

impl Segment {
    fn fresh(number: u32, path: PathBuf) -> Segment {
        Segment::fresh_span(number, number, 0, path)
    }

    fn fresh_span(number: u32, last: u32, generation: u32, path: PathBuf) -> Segment {
        Segment {
            number,
            last,
            generation,
            path,
            bytes: HEADER_LEN,
            frames: 0,
            blocks: Vec::new(),
        }
    }

    /// Record one appended frame in the sparse index.
    fn note_frame(
        &mut self,
        consumed: u64,
        time: Option<(i64, i64)>,
        theme: Option<&Theme>,
        index_every: u32,
    ) {
        if self.frames.is_multiple_of(index_every.max(1)) {
            self.blocks
                .push(IndexBlock::at(self.bytes, self.generation > 0));
        }
        if let Some(block) = self.blocks.last_mut() {
            block.frames += 1;
            if let Some((start, end)) = time {
                block.min_start = block.min_start.min(start);
                block.max_end = block.max_end.max(end);
            }
            if let (Some(theme), Some(filter)) = (theme, block.filter.as_mut()) {
                filter.insert(theme);
            }
        }
        self.frames += 1;
        self.bytes += consumed;
    }

    /// May any block in the segment match the pruner's constraints?
    fn may_match(&self, pruner: &Pruner) -> bool {
        self.blocks.iter().any(|b| b.may_match(pruner))
    }

    fn meta(&self) -> SegmentMeta {
        SegmentMeta {
            first: self.number,
            last: self.last,
            generation: self.generation,
            bytes: self.bytes,
            frames: self.frames,
        }
    }

    /// The zone index this segment's sidecar should contain.
    fn sidecar(&self) -> Sidecar {
        Sidecar {
            frames: self.frames,
            bytes: self.bytes,
            entries: self
                .blocks
                .iter()
                .map(|b| ZoneEntry {
                    offset: b.offset,
                    frames: b.frames,
                    min_start: b.min_start,
                    max_end: b.max_end,
                    filter: b.filter.unwrap_or_default(),
                })
                .collect(),
        }
    }
}

fn segment_path(dir: &Path, number: u32) -> PathBuf {
    dir.join(format!("seg-{number:06}.slg"))
}

/// File name of a compacted segment covering `first..=last` at `generation`.
fn gen_segment_path(dir: &Path, first: u32, last: u32, generation: u32) -> PathBuf {
    dir.join(format!("seg-{first:06}-{last:06}-g{generation}.slg"))
}

/// The `.szi` sidecar path of a segment file.
fn sidecar_path(segment: &Path) -> PathBuf {
    segment.with_extension("szi")
}

/// The temporary name a file is written under before its publishing rename.
fn tmp_path(target: &Path) -> PathBuf {
    let mut name = target.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

fn header_bytes() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..MAGIC.len()].copy_from_slice(MAGIC);
    h[MAGIC.len()] = CODEC_VERSION;
    h
}

/// The event time bounds of a record, if it is an event.
fn record_time(rec: &Record) -> Option<(i64, i64)> {
    match rec {
        Record::Event(e) => {
            let iv = e.time_interval();
            Some((iv.start.as_millis(), iv.end.as_millis()))
        }
        _ => None,
    }
}

/// The theme of a record, if it is an event.
fn record_theme(rec: &Record) -> Option<&Theme> {
    match rec {
        Record::Event(e) => Some(&e.theme),
        _ => None,
    }
}

/// A checksummed, rotating, crash-recoverable record log.
pub struct SegmentLog {
    config: DurableConfig,
    segments: Vec<Segment>,
    /// Append handle on the last (active) segment.
    active: File,
    /// Appends since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    /// Last position known to be on stable storage.
    synced_pos: Option<LogPos>,
    last_pos: Option<LogPos>,
    report: RecoveryReport,
    cache: BlockCache,
    metrics: Metrics,
}

impl SegmentLog {
    /// Open (or create) the log at `config.dir`, scanning and repairing
    /// every segment. Returns the log, every surviving record in append
    /// order with its position, and the recovery report.
    #[allow(clippy::type_complexity)]
    pub fn open(
        config: DurableConfig,
    ) -> Result<(SegmentLog, Vec<(LogPos, Record)>, RecoveryReport), DurableError> {
        let sw = Stopwatch::start();
        fs::create_dir_all(&config.dir)?;
        remove_tmp_files(&config.dir)?;

        let mut report = RecoveryReport::default();
        let mut refs = list_segment_refs(&config.dir)?;
        resolve_shadows(&mut refs, &mut report)?;
        if refs.is_empty() {
            let path = create_segment(&config.dir, 1)?;
            refs.push(SegRef {
                first: 1,
                last: 1,
                generation: 0,
                path,
            });
        }

        let mut records = Vec::new();
        let mut segments = Vec::new();
        let mut corrupted_at: Option<usize> = None;

        for (i, r) in refs.iter().enumerate() {
            let (seg, recs, clean) = recover_segment(r, &config, &mut report)?;
            for rec in recs {
                match &rec.1 {
                    Record::Event(_) => report.events += 1,
                    Record::Checkpoint { .. } => report.checkpoints += 1,
                    Record::Horizon(_) => report.horizons += 1,
                }
                records.push(rec);
            }
            segments.push(seg);
            if !clean {
                corrupted_at = Some(i);
                break;
            }
        }

        // A corrupt middle segment poisons everything after it: later
        // segments were written after the damage and cannot be trusted to
        // follow it. Delete them and account for every byte.
        if let Some(cut) = corrupted_at {
            for r in &refs[cut + 1..] {
                let len = fs::metadata(&r.path).map(|m| m.len()).unwrap_or(0);
                report.truncated_bytes += len.saturating_sub(HEADER_LEN);
                report.dropped_segments += 1;
                remove_segment_files(&r.path)?;
            }
        }

        // A compacted segment is sealed forever: if it ended up last (its
        // former followers were all merged into it, or dropped), appends
        // need a fresh generation-0 segment after it.
        if segments.last().is_some_and(|s| s.generation > 0) {
            let number = segments.last().map_or(1, |s| s.last + 1);
            let path = create_segment(&config.dir, number)?;
            segments.push(Segment::fresh(number, path));
        }

        let mut metrics = Metrics::new();
        let last = segments.last().ok_or_else(|| {
            // Unreachable: we always have at least one segment by now.
            DurableError::corrupt("no segments after recovery")
        })?;
        let active = OpenOptions::new().append(true).open(&last.path)?;
        report.duration_us = sw.elapsed_us();

        let last_pos = segments
            .iter()
            .rev()
            .find(|s| s.frames > 0)
            .map(|s| LogPos {
                segment: s.number,
                frame: s.frames - 1,
            });

        metrics.gauge("segments").set(segments.len() as i64);
        metrics.counter("recovered_records").add(report.records());
        metrics
            .counter("recovery/truncated_bytes")
            .add(report.truncated_bytes);
        metrics
            .counter("recovery/dropped_segments")
            .add(report.dropped_segments);
        metrics
            .counter("recovery/superseded_segments")
            .add(report.superseded_segments);
        metrics
            .counter("index/sidecars_rebuilt")
            .add(report.sidecars_rebuilt);
        metrics.hist("recovery_us").record(report.duration_us);

        let cache = BlockCache::new(config.cache_blocks);
        let log = SegmentLog {
            config,
            segments,
            active,
            unsynced: 0,
            // Everything recovered is on disk by definition.
            synced_pos: last_pos,
            last_pos,
            report,
            cache,
            metrics,
        };
        Ok((log, records, report))
    }

    /// The configuration.
    pub fn config(&self) -> &DurableConfig {
        &self.config
    }

    /// The report from the open-time recovery scan.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    /// Number of segments currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The last appended position, if any record exists.
    pub fn last_pos(&self) -> Option<LogPos> {
        self.last_pos
    }

    /// The last position guaranteed to be on stable storage.
    pub fn synced_pos(&self) -> Option<LogPos> {
        self.synced_pos
    }

    /// Metadata of every sealed segment, in log order (what compaction
    /// planning sees — the active segment is excluded).
    pub fn sealed_metas(&self) -> Vec<SegmentMeta> {
        let sealed = self.segments.len().saturating_sub(1);
        self.segments[..sealed].iter().map(Segment::meta).collect()
    }

    /// Append one record, rotating and fsyncing per policy. Returns the
    /// record's position.
    pub fn append(&mut self, rec: &Record) -> Result<LogPos, DurableError> {
        let payload = rec.encode();
        let framed = frame(&payload);

        // Rotate *before* writing if the active segment is full (never leave
        // a frame straddling the size bound mid-write).
        let seal = {
            let seg = self.active_segment()?;
            seg.frames > 0 && seg.bytes + framed.len() as u64 > self.config.segment_max_bytes
        };
        if seal {
            self.seal_active()?;
        }

        self.active.write_all(&framed)?;
        let index_every = self.config.index_every;
        let time = record_time(rec);
        let pos = {
            let seg = self.active_segment()?;
            let pos = LogPos {
                segment: seg.number,
                frame: seg.frames,
            };
            // The active segment is generation 0, so no theme filter is
            // maintained here: summaries are computed at compaction time,
            // off the append path.
            seg.note_frame(framed.len() as u64, time, None, index_every);
            pos
        };
        self.last_pos = Some(pos);
        self.metrics.counter("frames_appended").inc();
        self.metrics
            .counter("bytes_written")
            .add(framed.len() as u64);

        self.unsynced += 1;
        let due = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::OnSeal => false,
        };
        if due {
            self.sync()?;
        }
        Ok(pos)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.unsynced == 0 && self.synced_pos == self.last_pos {
            return Ok(());
        }
        let sw = Stopwatch::start();
        self.active.sync_data()?;
        self.metrics.hist("fsync_us").record(sw.elapsed_us());
        self.metrics.counter("fsyncs").inc();
        self.unsynced = 0;
        self.synced_pos = self.last_pos;
        Ok(())
    }

    /// Seal the active segment (fsync it, it is never written again) and
    /// start a fresh one.
    fn seal_active(&mut self) -> Result<(), DurableError> {
        let sw = Stopwatch::start();
        self.active.sync_data()?;
        self.metrics.hist("fsync_us").record(sw.elapsed_us());
        self.metrics.counter("fsyncs").inc();
        self.unsynced = 0;
        self.synced_pos = self.last_pos;

        let next = self.active_segment()?.last + 1;
        let path = create_segment(&self.config.dir, next)?;
        self.active = OpenOptions::new().append(true).open(&path)?;
        self.segments.push(Segment::fresh(next, path));
        self.metrics.counter("segments_sealed").inc();
        self.metrics
            .gauge("segments")
            .set(self.segments.len() as i64);
        Ok(())
    }

    fn active_segment(&mut self) -> Result<&mut Segment, DurableError> {
        self.segments
            .last_mut()
            .ok_or_else(|| DurableError::corrupt("log has no active segment"))
    }

    /// Scan the whole log, decoding every record in append order. This is
    /// the brute-force reference reader: no index, no pruning.
    pub fn scan(&mut self) -> Result<Vec<(LogPos, Record)>, DurableError> {
        self.scan_pruned(&Pruner::keep_all())
    }

    /// Scan only records that may be events overlapping `range`, using the
    /// sparse per-segment time index to skip whole segments and blocks.
    /// With `None`, every record is returned (same as [`SegmentLog::scan`]).
    pub fn scan_overlapping(
        &mut self,
        range: Option<&TimeInterval>,
    ) -> Result<Vec<(LogPos, Record)>, DurableError> {
        self.scan_pruned(&Pruner {
            time: range.cloned(),
            theme: None,
        })
    }

    /// Scan the log under `pruner`'s constraints: whole segments and index
    /// blocks whose zone index proves they cannot hold a matching event are
    /// skipped without touching the disk, and decoded blocks of sealed
    /// segments are served from (and fill) the LRU block cache. The result
    /// is a superset of the matching events, in append order — exactly the
    /// records a full scan would return from the blocks that survived
    /// pruning.
    pub fn scan_pruned(&mut self, pruner: &Pruner) -> Result<Vec<(LogPos, Record)>, DurableError> {
        // Unsynced frames are in the OS page cache, readable by a fresh
        // handle, so no sync is needed for read-your-writes here.
        let mut out = Vec::new();
        let mut bytes_read = 0u64;
        let mut scanned = 0u64;
        let mut pruned = 0u64;
        let constrained = pruner.time.is_some() || pruner.theme.is_some();
        let active_idx = self.segments.len().saturating_sub(1);
        let (hits0, misses0) = (self.cache.hits(), self.cache.misses());
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.frames == 0 {
                continue;
            }
            if constrained && !seg.may_match(pruner) {
                pruned += 1;
                continue;
            }
            bytes_read += scan_segment(seg, pruner, i != active_idx, &mut self.cache, &mut out)?;
            scanned += 1;
        }
        self.metrics.counter("bytes_read").add(bytes_read);
        if constrained {
            self.metrics.counter("cold/segments_scanned").add(scanned);
            self.metrics.counter("cold/segments_pruned").add(pruned);
        }
        self.metrics
            .counter("cache/hits")
            .add(self.cache.hits() - hits0);
        self.metrics
            .counter("cache/misses")
            .add(self.cache.misses() - misses0);
        self.metrics
            .gauge("cache/hit_rate")
            .set(self.cache.hit_rate_pct());
        Ok(out)
    }

    /// Decode every record of the segments covering numbers
    /// `first..=last`, in append order (the read half of compaction).
    pub(crate) fn read_range(
        &mut self,
        first: u32,
        last: u32,
    ) -> Result<Vec<(LogPos, Record)>, DurableError> {
        let mut out = Vec::new();
        let keep = Pruner::keep_all();
        let active_idx = self.segments.len().saturating_sub(1);
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.number >= first && seg.last <= last {
                scan_segment(seg, &keep, i != active_idx, &mut self.cache, &mut out)?;
            }
        }
        Ok(out)
    }

    /// On-disk bytes of the segments covering numbers `first..=last`.
    pub(crate) fn bytes_in_range(&self, first: u32, last: u32) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.number >= first && s.last <= last)
            .map(|s| s.bytes)
            .sum()
    }

    /// Atomically replace the sealed segments covering `first..=last` with
    /// one generation-`generation` segment holding `records` (renumbered
    /// `0..n`). Crash-safe: the product and its zone-index sidecar are
    /// written under temporary names, fsynced, renamed into place, and only
    /// then are the inputs deleted — [`SegmentLog::open`] finishes either
    /// half of an interrupted replacement. Returns the product's size in
    /// bytes.
    pub(crate) fn replace_segments(
        &mut self,
        first: u32,
        last: u32,
        generation: u32,
        records: &[Record],
    ) -> Result<u64, DurableError> {
        let start = self
            .segments
            .iter()
            .position(|s| s.number == first)
            .ok_or_else(|| {
                DurableError::corrupt(format!("replace: no segment starts at {first}"))
            })?;
        let end = self
            .segments
            .iter()
            .position(|s| s.last == last)
            .ok_or_else(|| DurableError::corrupt(format!("replace: no segment ends at {last}")))?;
        if end < start || end + 1 >= self.segments.len() {
            return Err(DurableError::corrupt(
                "replace: range must cover sealed segments only",
            ));
        }

        // Encode the product and build its index in one pass.
        let path = gen_segment_path(&self.config.dir, first, last, generation);
        let mut seg = Segment::fresh_span(first, last, generation, path.clone());
        let mut buf: Vec<u8> = header_bytes().to_vec();
        for rec in records {
            let framed = frame(&rec.encode());
            seg.note_frame(
                framed.len() as u64,
                record_time(rec),
                record_theme(rec),
                self.config.index_every,
            );
            buf.extend_from_slice(&framed);
        }

        // 1. Write product + sidecar under temporary names, fsynced.
        let product_tmp = tmp_path(&path);
        write_file_synced(&product_tmp, &buf)?;
        let scar = sidecar_path(&path);
        let scar_tmp = tmp_path(&scar);
        write_file_synced(&scar_tmp, &encode_sidecar(&seg.sidecar()))?;

        // 2. Publish: rename into place, persist the directory entries.
        fs::rename(&product_tmp, &path)?;
        fs::rename(&scar_tmp, &scar)?;
        sync_dir(&self.config.dir);

        // 3. Retire the inputs (recovery resolves the overlap if we crash
        // between these deletions).
        for old in &self.segments[start..=end] {
            remove_segment_files(&old.path)?;
        }
        sync_dir(&self.config.dir);

        let bytes_after = seg.bytes;
        self.segments.splice(start..=end, std::iter::once(seg));
        self.metrics
            .gauge("segments")
            .set(self.segments.len() as i64);

        // Positions in the replaced range no longer exist; if the log's
        // newest (or newest-synced) record lived there, recompute it from
        // the surviving segments. Everything sealed is on stable storage.
        let in_range = |p: &LogPos| p.segment >= first && p.segment <= last;
        if self.last_pos.as_ref().is_some_and(in_range) {
            self.last_pos = self
                .segments
                .iter()
                .rev()
                .find(|s| s.frames > 0)
                .map(|s| LogPos {
                    segment: s.number,
                    frame: s.frames - 1,
                });
        }
        if self.synced_pos.as_ref().is_some_and(in_range) {
            let sealed = self.segments.len().saturating_sub(1);
            self.synced_pos = self.segments[..sealed]
                .iter()
                .rev()
                .find(|s| s.frames > 0)
                .map(|s| LogPos {
                    segment: s.number,
                    frame: s.frames - 1,
                });
        }
        Ok(bytes_after)
    }

    /// Freeze the log's instruments into a snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Total bytes currently on disk across all segments (headers included).
    pub fn disk_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }
}

/// Read one segment, skipping index blocks that cannot match `pruner` and
/// serving sealed blocks from the cache. Returns how many bytes were read
/// from disk.
fn scan_segment(
    seg: &Segment,
    pruner: &Pruner,
    sealed: bool,
    cache: &mut BlockCache,
    out: &mut Vec<(LogPos, Record)>,
) -> Result<u64, DurableError> {
    if seg.frames == 0 {
        return Ok(0);
    }
    let constrained = pruner.time.is_some() || pruner.theme.is_some();
    let mut file: Option<File> = None;
    let mut frame_idx: u32 = 0;
    let mut bytes_read = 0u64;
    for (bi, block) in seg.blocks.iter().enumerate() {
        if constrained && !block.may_match(pruner) {
            frame_idx += block.frames;
            continue;
        }
        let key = BlockKey {
            segment: seg.number,
            generation: seg.generation,
            offset: block.offset,
        };
        if sealed {
            if let Some(cached) = cache.get(key) {
                for (fi, rec) in cached {
                    out.push((
                        LogPos {
                            segment: seg.number,
                            frame: *fi,
                        },
                        rec.clone(),
                    ));
                }
                frame_idx += block.frames;
                continue;
            }
        }
        let end_offset = seg.blocks.get(bi + 1).map_or(seg.bytes, |next| next.offset);
        let len = (end_offset - block.offset) as usize;
        if file.is_none() {
            file = Some(File::open(&seg.path)?);
        }
        let f = file
            .as_mut()
            .ok_or_else(|| DurableError::corrupt("segment file just opened is gone"))?;
        f.seek(SeekFrom::Start(block.offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        bytes_read += len as u64;
        let mut at = 0usize;
        let mut decoded: Vec<(u32, Record)> = Vec::with_capacity(block.frames as usize);
        for _ in 0..block.frames {
            match read_frame(&buf[at..]) {
                FrameRead::Ok { payload, consumed } => {
                    at += consumed;
                    let rec = Record::decode(&payload)?;
                    decoded.push((frame_idx, rec));
                    frame_idx += 1;
                }
                // The in-memory index said a frame is here; the disk
                // disagrees. Surface it — this is post-recovery damage, not
                // a torn tail.
                FrameRead::Torn { why } => {
                    return Err(DurableError::corrupt(format!(
                        "{}: frame {frame_idx}: {why}",
                        seg.path.display()
                    )))
                }
                FrameRead::End => {
                    return Err(DurableError::corrupt(format!(
                        "{}: unexpected end at frame {frame_idx}",
                        seg.path.display()
                    )))
                }
            }
        }
        for (fi, rec) in &decoded {
            out.push((
                LogPos {
                    segment: seg.number,
                    frame: *fi,
                },
                rec.clone(),
            ));
        }
        if sealed {
            cache.put(key, decoded);
        }
    }
    Ok(bytes_read)
}

/// One segment file present in the directory, as named.
#[derive(Debug, Clone)]
struct SegRef {
    first: u32,
    last: u32,
    generation: u32,
    path: PathBuf,
}

/// Parse `seg-NNNNNN.slg` or `seg-AAAAAA-BBBBBB-gG.slg`.
fn parse_segment_name(name: &str) -> Option<(u32, u32, u32)> {
    let stem = name.strip_prefix("seg-")?.strip_suffix(".slg")?;
    if let Ok(n) = stem.parse::<u32>() {
        return Some((n, n, 0));
    }
    let mut parts = stem.split('-');
    let first: u32 = parts.next()?.parse().ok()?;
    let last: u32 = parts.next()?.parse().ok()?;
    let generation: u32 = parts.next()?.strip_prefix('g')?.parse().ok()?;
    if parts.next().is_some() || last < first || generation == 0 {
        return None;
    }
    Some((first, last, generation))
}

/// Segment files present in `dir`, sorted by covered range then generation.
fn list_segment_refs(dir: &Path) -> Result<Vec<SegRef>, DurableError> {
    let mut refs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some((first, last, generation)) = parse_segment_name(&name.to_string_lossy()) {
            refs.push(SegRef {
                first,
                last,
                generation,
                path: entry.path(),
            });
        }
    }
    refs.sort_by_key(|r| (r.first, r.generation));
    Ok(refs)
}

/// Delete every `*.tmp` file in `dir` (half-written compaction products).
fn remove_tmp_files(dir: &Path) -> Result<(), DurableError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Delete a segment file and its sidecar, if any.
fn remove_segment_files(segment: &Path) -> Result<(), DurableError> {
    fs::remove_file(segment)?;
    match fs::remove_file(sidecar_path(segment)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Persist the directory entry (best-effort: not all platforms allow fsync
/// on directories).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Write `bytes` to a fresh file at `path`, fsynced.
fn write_file_synced(path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Resolve overlaps left by an interrupted compaction: when a generation-N
/// product and (some of) its inputs are both on disk, the crash hit between
/// the publishing rename and the input deletion. The product wins if it
/// verifies end-to-end; otherwise the inputs win if they still fully cover
/// its range. Either way the losers are deleted, so the remaining refs
/// cover disjoint ranges.
fn resolve_shadows(
    refs: &mut Vec<SegRef>,
    report: &mut RecoveryReport,
) -> Result<(), DurableError> {
    let mut order: Vec<usize> = (0..refs.len()).collect();
    order.sort_by(|&a, &b| refs[b].generation.cmp(&refs[a].generation));
    let mut removed = vec![false; refs.len()];
    for &ti in &order {
        if removed[ti] || refs[ti].generation == 0 {
            continue;
        }
        let (first, last, generation) = (refs[ti].first, refs[ti].last, refs[ti].generation);
        let shadowed: Vec<usize> = (0..refs.len())
            .filter(|&si| {
                si != ti
                    && !removed[si]
                    && refs[si].generation < generation
                    && first <= refs[si].first
                    && refs[si].last <= last
            })
            .collect();
        if shadowed.is_empty() {
            continue;
        }
        let product_clean = verify_segment(&refs[ti].path)?;
        let span = (last - first) as u64 + 1;
        let inputs_cover = span <= (1 << 20) && {
            let mut covered = vec![false; span as usize];
            for &si in &shadowed {
                for n in refs[si].first..=refs[si].last {
                    covered[(n - first) as usize] = true;
                }
            }
            covered.iter().all(|&c| c)
        };
        if product_clean || !inputs_cover {
            for &si in &shadowed {
                remove_segment_files(&refs[si].path)?;
                removed[si] = true;
                report.superseded_segments += 1;
            }
        } else {
            remove_segment_files(&refs[ti].path)?;
            removed[ti] = true;
            report.superseded_segments += 1;
        }
    }
    let mut kept = Vec::with_capacity(refs.len());
    for (i, r) in refs.drain(..).enumerate() {
        if !removed[i] {
            kept.push(r);
        }
    }
    for pair in kept.windows(2) {
        if pair[1].first <= pair[0].last {
            return Err(DurableError::corrupt(format!(
                "overlapping segments {} and {}",
                pair[0].path.display(),
                pair[1].path.display()
            )));
        }
    }
    *refs = kept;
    Ok(())
}

/// Read-only integrity walk: true iff the header is valid and every byte of
/// the file belongs to a well-formed, checksummed, decodable frame.
fn verify_segment(path: &Path) -> Result<bool, DurableError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(_) => return Ok(false),
    };
    if bytes.len() < HEADER_LEN as usize
        || &bytes[..MAGIC.len()] != MAGIC
        || bytes[MAGIC.len()] != CODEC_VERSION
    {
        return Ok(false);
    }
    let mut offset = HEADER_LEN as usize;
    while offset < bytes.len() {
        match read_frame(&bytes[offset..]) {
            FrameRead::Ok { payload, consumed } => {
                if Record::decode(&payload).is_err() {
                    return Ok(false);
                }
                offset += consumed;
            }
            FrameRead::Torn { .. } => return Ok(false),
            FrameRead::End => break,
        }
    }
    Ok(offset == bytes.len())
}

/// Create a fresh segment file with a valid header, fsynced, and fsync the
/// directory so the new name itself survives a crash.
fn create_segment(dir: &Path, number: u32) -> Result<PathBuf, DurableError> {
    let path = segment_path(dir, number);
    let mut f = File::create(&path)?;
    f.write_all(&header_bytes())?;
    f.sync_all()?;
    sync_dir(dir);
    Ok(path)
}

/// One recovered segment: the rebuilt in-memory state, its surviving
/// records, and whether the file was clean (no truncation needed).
type RecoveredSegment = (Segment, Vec<(LogPos, Record)>, bool);

/// Scan one segment file, truncating at the first torn or corrupt frame.
/// For compacted segments the zone-index sidecar is verified against the
/// rebuilt index and rewritten if missing or stale.
fn recover_segment(
    r: &SegRef,
    config: &DurableConfig,
    report: &mut RecoveryReport,
) -> Result<RecoveredSegment, DurableError> {
    let bytes = fs::read(&r.path)?;

    // Header check: a torn or alien header means nothing in the file can be
    // trusted; reset it to an empty, valid segment.
    let header_ok = bytes.len() >= HEADER_LEN as usize
        && &bytes[..MAGIC.len()] == MAGIC
        && bytes[MAGIC.len()] == CODEC_VERSION;
    if !header_ok {
        report.truncated_bytes += bytes.len() as u64;
        let mut f = File::create(&r.path)?;
        f.write_all(&header_bytes())?;
        f.sync_all()?;
        let seg = Segment::fresh_span(r.first, r.last, r.generation, r.path.clone());
        heal_sidecar(&seg, report)?;
        return Ok((seg, Vec::new(), false));
    }

    let mut seg = Segment::fresh_span(r.first, r.last, r.generation, r.path.clone());
    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut clean = true;

    while offset < bytes.len() {
        match read_frame(&bytes[offset..]) {
            FrameRead::Ok { payload, consumed } => {
                match Record::decode(&payload) {
                    Ok(rec) => {
                        let pos = LogPos {
                            segment: r.first,
                            frame: seg.frames,
                        };
                        seg.note_frame(
                            consumed as u64,
                            record_time(&rec),
                            record_theme(&rec),
                            config.index_every,
                        );
                        records.push((pos, rec));
                        offset += consumed;
                    }
                    // Checksum fine but grammar broken: corruption (or a
                    // future codec). Cut here like any torn tail.
                    Err(_) => {
                        clean = false;
                        break;
                    }
                }
            }
            FrameRead::Torn { .. } => {
                clean = false;
                break;
            }
            FrameRead::End => break,
        }
    }

    if !clean || offset < bytes.len() {
        report.truncated_bytes += (bytes.len() - offset) as u64;
        clean = false;
        let f = OpenOptions::new().write(true).open(&r.path)?;
        f.set_len(offset as u64)?;
        f.sync_all()?;
    }
    heal_sidecar(&seg, report)?;
    Ok((seg, records, clean))
}

/// Verify a compacted segment's `.szi` sidecar against the index just
/// rebuilt from the recovery scan, rewriting it when missing or stale
/// (e.g. after a truncation). Generation-0 segments carry no sidecar.
fn heal_sidecar(seg: &Segment, report: &mut RecoveryReport) -> Result<(), DurableError> {
    if seg.generation == 0 {
        return Ok(());
    }
    let expected = seg.sidecar();
    let scar = sidecar_path(&seg.path);
    let current = fs::read(&scar).ok().and_then(|b| decode_sidecar(&b).ok());
    if current.as_ref() == Some(&expected) {
        return Ok(());
    }
    let tmp = tmp_path(&scar);
    write_file_synced(&tmp, &encode_sidecar(&expected))?;
    fs::rename(&tmp, &scar)?;
    report.sidecars_rebuilt += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;
    use crate::tmp::TempDir;
    use sl_stt::{Event, SpatialGranule, TemporalGranularity, Theme, Timestamp, Value};

    fn event(minute: i64) -> Record {
        themed_event(minute, "weather")
    }

    fn themed_event(minute: i64, theme: &str) -> Record {
        Record::Event(Event::new(
            Value::Int(minute),
            TemporalGranularity::Minute,
            minute,
            SpatialGranule::World,
            Theme::new(theme).unwrap(),
        ))
    }

    fn cfg(dir: &TempDir) -> DurableConfig {
        DurableConfig::at(dir.path())
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = TempDir::new("log-roundtrip").unwrap();
        {
            let (mut log, recs, report) = SegmentLog::open(cfg(&dir)).unwrap();
            assert!(recs.is_empty());
            assert!(!report.lossy());
            for m in 0..20 {
                log.append(&event(m)).unwrap();
            }
            assert_eq!(log.last_pos(), log.synced_pos()); // Always policy
        }
        let (mut log, recs, report) = SegmentLog::open(cfg(&dir)).unwrap();
        assert_eq!(recs.len(), 20);
        assert_eq!(report.events, 20);
        assert!(!report.lossy());
        // Positions are strictly increasing.
        let positions: Vec<LogPos> = recs.iter().map(|(p, _)| *p).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted);
        assert_eq!(log.scan().unwrap().len(), 20);
    }

    #[test]
    fn rotation_seals_segments() {
        let dir = TempDir::new("log-rotate").unwrap();
        let config = cfg(&dir).with_segment_max_bytes(256);
        let (mut log, _, _) = SegmentLog::open(config.clone()).unwrap();
        for m in 0..50 {
            log.append(&event(m)).unwrap();
        }
        assert!(log.segment_count() > 1, "256-byte cap must rotate");
        drop(log);
        let (log, recs, report) = SegmentLog::open(config).unwrap();
        assert_eq!(recs.len(), 50);
        assert!(!report.lossy());
        assert!(log.segment_count() > 1);
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let dir = TempDir::new("log-torn").unwrap();
        {
            let (mut log, _, _) = SegmentLog::open(cfg(&dir)).unwrap();
            for m in 0..10 {
                log.append(&event(m)).unwrap();
            }
        }
        // Chop 3 bytes off the active segment: the last frame is now torn.
        let path = segment_path(dir.path(), 1);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let (log, recs, report) = SegmentLog::open(cfg(&dir)).unwrap();
        assert_eq!(recs.len(), 9, "only the torn last frame is lost");
        assert!(report.lossy());
        assert!(report.truncated_bytes > 0);
        // The log is immediately appendable again.
        drop(log);
        let (mut log, _, _) = SegmentLog::open(cfg(&dir)).unwrap();
        log.append(&event(99)).unwrap();
        drop(log);
        let (_, recs, _) = SegmentLog::open(cfg(&dir)).unwrap();
        assert_eq!(recs.len(), 10);
    }

    #[test]
    fn corrupt_middle_segment_drops_later_ones() {
        let dir = TempDir::new("log-poison").unwrap();
        let config = cfg(&dir).with_segment_max_bytes(256);
        {
            let (mut log, _, _) = SegmentLog::open(config.clone()).unwrap();
            for m in 0..50 {
                log.append(&event(m)).unwrap();
            }
            assert!(log.segment_count() >= 3);
        }
        // Flip a byte in the middle of segment 1's first frame payload.
        let path = segment_path(dir.path(), 1);
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 6] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (log, recs, report) = SegmentLog::open(config).unwrap();
        assert_eq!(recs.len(), 0, "corruption at the first frame drops all");
        assert!(report.dropped_segments >= 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(log.segment_count(), 1);
    }

    #[test]
    fn time_pruned_scan_matches_full_scan() {
        let dir = TempDir::new("log-index").unwrap();
        let config = DurableConfig {
            index_every: 4,
            ..cfg(&dir).with_segment_max_bytes(512)
        };
        let (mut log, _, _) = SegmentLog::open(config).unwrap();
        for m in 0..200 {
            log.append(&event(m)).unwrap();
        }
        let range = TimeInterval::new(
            Timestamp::from_millis(50 * 60_000),
            Timestamp::from_millis(60 * 60_000),
        );
        let full: Vec<i64> = log
            .scan()
            .unwrap()
            .into_iter()
            .filter_map(|(_, r)| match r {
                Record::Event(e) if e.time_interval().overlaps(&range) => Some(e.tgranule),
                _ => None,
            })
            .collect();
        let pruned: Vec<i64> = log
            .scan_overlapping(Some(&range))
            .unwrap()
            .into_iter()
            .filter_map(|(_, r)| match r {
                Record::Event(e) if e.time_interval().overlaps(&range) => Some(e.tgranule),
                _ => None,
            })
            .collect();
        assert_eq!(full, pruned);
        assert_eq!(full.len(), 10);
    }

    #[test]
    fn fsync_policies_track_synced_pos() {
        let dir = TempDir::new("log-fsync").unwrap();
        let config = cfg(&dir).with_fsync(FsyncPolicy::EveryN(5));
        let (mut log, _, _) = SegmentLog::open(config).unwrap();
        for m in 0..4 {
            log.append(&event(m)).unwrap();
        }
        assert_ne!(log.synced_pos(), log.last_pos(), "4 < 5: not yet synced");
        log.append(&event(4)).unwrap();
        assert_eq!(log.synced_pos(), log.last_pos(), "5th append syncs");
        log.append(&event(5)).unwrap();
        assert_ne!(log.synced_pos(), log.last_pos());
        log.sync().unwrap();
        assert_eq!(log.synced_pos(), log.last_pos());
        let snap = log.metrics_snapshot();
        assert!(snap.counters["fsyncs"] >= 2);
        assert!(snap.counters["bytes_written"] > 0);
    }

    #[test]
    fn segment_names_parse_both_forms() {
        assert_eq!(parse_segment_name("seg-000042.slg"), Some((42, 42, 0)));
        assert_eq!(
            parse_segment_name("seg-000003-000009-g2.slg"),
            Some((3, 9, 2))
        );
        assert_eq!(parse_segment_name("seg-000009-000003-g2.slg"), None);
        assert_eq!(parse_segment_name("seg-000003-000009-g0.slg"), None);
        assert_eq!(parse_segment_name("seg-xyz.slg"), None);
        assert_eq!(parse_segment_name("other.slg"), None);
        assert_eq!(parse_segment_name("seg-000001.slg.tmp"), None);
    }

    #[test]
    fn replace_segments_round_trips_and_prunes_by_theme() {
        let dir = TempDir::new("log-replace").unwrap();
        let config = DurableConfig {
            index_every: 4,
            ..cfg(&dir).with_segment_max_bytes(400)
        };
        let (mut log, _, _) = SegmentLog::open(config.clone()).unwrap();
        for m in 0..60 {
            let theme = if m % 2 == 0 {
                "weather/rain"
            } else {
                "social/tweet"
            };
            log.append(&themed_event(m, theme)).unwrap();
        }
        let sealed = log.sealed_metas();
        assert!(sealed.len() >= 2);
        let before: Vec<String> = log
            .scan()
            .unwrap()
            .iter()
            .map(|(_, r)| format!("{r:?}"))
            .collect();

        // Merge all sealed segments, keeping every record.
        let (first, last) = (sealed[0].first, sealed[sealed.len() - 1].last);
        let merged: Vec<Record> = log
            .read_range(first, last)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        log.replace_segments(first, last, 1, &merged).unwrap();

        let after: Vec<String> = log
            .scan()
            .unwrap()
            .iter()
            .map(|(_, r)| format!("{r:?}"))
            .collect();
        assert_eq!(before, after, "record sequence survives the merge");

        // Theme pruning: a scan for an absent theme skips every block of
        // the compacted segment. The generation-0 active segment carries no
        // filter, so its events still come back (pruning is a superset).
        let absent = Pruner {
            time: None,
            theme: Some(Theme::new("traffic").unwrap()),
        };
        let pruned = log.scan_pruned(&absent).unwrap();
        assert!(
            pruned
                .iter()
                .all(|(pos, r)| !matches!(r, Record::Event(_)) || pos.segment > last),
            "bloom filter excludes the absent subtree from the compacted range"
        );
        let present = Pruner {
            time: None,
            theme: Some(Theme::new("weather").unwrap()),
        };
        let kept_events = log
            .scan_pruned(&present)
            .unwrap()
            .into_iter()
            .filter(|(pos, r)| matches!(r, Record::Event(_)) && pos.segment <= last)
            .count();
        assert!(kept_events > 0, "present theme survives pruning");

        // Reopen: the compacted segment and its sidecar survive verbatim.
        drop(log);
        let (mut log, recs, report) = SegmentLog::open(config).unwrap();
        assert!(!report.lossy());
        assert_eq!(report.sidecars_rebuilt, 0, "sidecar verified as-is");
        assert_eq!(recs.len(), 60);
        let reopened: Vec<String> = log
            .scan()
            .unwrap()
            .iter()
            .map(|(_, r)| format!("{r:?}"))
            .collect();
        assert_eq!(before, reopened);
    }

    #[test]
    fn missing_sidecar_is_rebuilt_on_open() {
        let dir = TempDir::new("log-sidecar").unwrap();
        let config = cfg(&dir).with_segment_max_bytes(300);
        let (mut log, _, _) = SegmentLog::open(config.clone()).unwrap();
        for m in 0..30 {
            log.append(&event(m)).unwrap();
        }
        let sealed = log.sealed_metas();
        let (first, last) = (sealed[0].first, sealed[sealed.len() - 1].last);
        let merged: Vec<Record> = log
            .read_range(first, last)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        log.replace_segments(first, last, 1, &merged).unwrap();
        drop(log);

        let scar = sidecar_path(&gen_segment_path(dir.path(), first, last, 1));
        assert!(scar.exists());
        fs::remove_file(&scar).unwrap();

        let (_, recs, report) = SegmentLog::open(config.clone()).unwrap();
        assert_eq!(recs.len(), 30);
        assert_eq!(report.sidecars_rebuilt, 1);
        assert!(scar.exists(), "sidecar self-healed");

        // A corrupted sidecar is also healed.
        let mut bytes = fs::read(&scar).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&scar, &bytes).unwrap();
        let (_, _, report) = SegmentLog::open(config).unwrap();
        assert_eq!(report.sidecars_rebuilt, 1);
    }

    #[test]
    fn interrupted_compaction_resolves_to_product_or_inputs() {
        let dir = TempDir::new("log-shadow").unwrap();
        let config = cfg(&dir).with_segment_max_bytes(300);
        let (mut log, _, _) = SegmentLog::open(config.clone()).unwrap();
        for m in 0..30 {
            log.append(&event(m)).unwrap();
        }
        let sealed = log.sealed_metas();
        let (first, last) = (sealed[0].first, sealed[sealed.len() - 1].last);

        // Back the inputs up, compact, then restore them: both the product
        // and its inputs are now on disk, as after a crash between the
        // publishing rename and the input deletion.
        let mut backups = Vec::new();
        for meta in &sealed {
            let p = segment_path(dir.path(), meta.first);
            backups.push((p.clone(), fs::read(&p).unwrap()));
        }
        let merged: Vec<Record> = log
            .read_range(first, last)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        log.replace_segments(first, last, 1, &merged).unwrap();
        drop(log);
        for (p, bytes) in &backups {
            fs::write(p, bytes).unwrap();
        }

        // Clean product: it wins, the restored inputs are superseded.
        let (_, recs, report) = SegmentLog::open(config.clone()).unwrap();
        assert_eq!(recs.len(), 30);
        assert_eq!(report.superseded_segments, backups.len() as u64);
        assert!(!report.lossy());

        // Damaged product alongside full inputs: the inputs win.
        for (p, bytes) in &backups {
            fs::write(p, bytes).unwrap();
        }
        let product = gen_segment_path(dir.path(), first, last, 1);
        let mut bytes = fs::read(&product).unwrap();
        bytes[HEADER_LEN as usize + 3] ^= 0xFF;
        fs::write(&product, &bytes).unwrap();
        let (_, recs, report) = SegmentLog::open(config).unwrap();
        assert_eq!(recs.len(), 30, "no acknowledged record lost");
        assert_eq!(report.superseded_segments, 1, "the damaged product");
        assert!(!product.exists());
    }
}
