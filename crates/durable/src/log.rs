//! The append-only segment log.
//!
//! A log directory holds numbered segment files (`seg-000001.slg`, ...).
//! Each segment starts with an 8-byte header (`b"SLDUR"`, the codec
//! version, two reserved bytes) followed by checksummed frames (see
//! [`crate::codec`]). The last segment is *active*: appends go there until
//! it reaches [`DurableConfig::segment_max_bytes`], at which point it is
//! sealed (fsynced) and a fresh segment is started — sealed segments are
//! never written again, which is what makes them safe cold storage for
//! [`crate::DurableWarehouse`]'s spilled events.
//!
//! # Recovery
//!
//! [`SegmentLog::open`] scans every segment front to back, verifying each
//! frame's checksum. At the first incomplete or corrupt frame it truncates
//! the file right there and — because a corrupt *middle* segment means
//! everything after it is of unknown provenance — deletes any later
//! segments. Everything before the cut is returned to the caller; the
//! [`RecoveryReport`] accounts for everything after it. A torn or missing
//! header truncates the segment to empty. This is the standard
//! truncate-on-recovery discipline of log-structured stores: an fsynced
//! frame is never lost, an unsynced tail is *visibly* dropped, and no
//! half-written bytes are ever decoded.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `Always` makes every
//! append crash-safe, `EveryN` bounds the loss window to n-1 records,
//! `OnSeal` only guarantees sealed segments. The fsync latency histogram
//! and byte counters are exported through [`SegmentLog::metrics_snapshot`].

use crate::codec::{frame, read_frame, FrameRead, Record, CODEC_VERSION};
use crate::error::DurableError;
use sl_obs::{Metrics, MetricsSnapshot, Stopwatch};
use sl_stt::TimeInterval;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every segment file.
const MAGIC: &[u8; 5] = b"SLDUR";
/// Full header: magic, codec version, two reserved bytes.
const HEADER_LEN: u64 = 8;

/// When to force written frames onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append — every acked record survives any crash.
    Always,
    /// fsync after every `n` appends — bounds loss to the last `n-1` records.
    EveryN(u32),
    /// fsync only when a segment seals (and on explicit [`SegmentLog::sync`]).
    OnSeal,
}

/// Configuration of a durable log directory.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Durability/throughput trade-off.
    pub fsync: FsyncPolicy,
    /// Seal the active segment when it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Sparse time index stride: one index block per this many frames.
    pub index_every: u32,
}

impl DurableConfig {
    /// Defaults rooted at `dir`: fsync every write (the safe default),
    /// 1 MiB segments, an index block every 64 frames.
    pub fn at(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_max_bytes: 1024 * 1024,
            index_every: 64,
        }
    }

    /// Replace the fsync policy.
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> DurableConfig {
        self.fsync = policy;
        self
    }

    /// Replace the segment size bound.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> DurableConfig {
        self.segment_max_bytes = bytes.max(HEADER_LEN + 1);
        self
    }
}

/// Position of a frame in the log: (segment number, frame index within it).
/// Ordered by log append order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogPos {
    /// Segment number (the `NNNNNN` in `seg-NNNNNN.slg`).
    pub segment: u32,
    /// Zero-based frame index within the segment.
    pub frame: u32,
}

/// What [`SegmentLog::open`] found — and what it had to cut.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Event records recovered.
    pub events: u64,
    /// Checkpoint records recovered.
    pub checkpoints: u64,
    /// Horizon markers recovered.
    pub horizons: u64,
    /// Bytes removed by torn-tail truncation (including any dropped
    /// segments' payload bytes).
    pub truncated_bytes: u64,
    /// Whole later segments deleted because an earlier one was corrupt.
    pub dropped_segments: u64,
    /// Wall-clock recovery time in microseconds.
    pub duration_us: u64,
}

impl RecoveryReport {
    /// Total records recovered.
    pub fn records(&self) -> u64 {
        self.events + self.checkpoints + self.horizons
    }

    /// True if recovery had to cut anything (torn tail or dropped segments).
    pub fn lossy(&self) -> bool {
        self.truncated_bytes > 0 || self.dropped_segments > 0
    }
}

/// One index block: `frames` consecutive frames starting at byte `offset`,
/// with the time bounds of the *event* records among them.
#[derive(Debug, Clone, Copy)]
struct IndexBlock {
    offset: u64,
    frames: u32,
    /// Minimum `interval.start` over events in the block (ms); `i64::MAX`
    /// when the block holds no events.
    min_start: i64,
    /// Maximum `interval.end` over events in the block (ms); `i64::MIN`
    /// when the block holds no events.
    max_end: i64,
}

impl IndexBlock {
    fn at(offset: u64) -> IndexBlock {
        IndexBlock {
            offset,
            frames: 0,
            min_start: i64::MAX,
            max_end: i64::MIN,
        }
    }

    /// Can any event in this block overlap `range`? (No events → no.)
    fn may_overlap(&self, range: &TimeInterval) -> bool {
        self.min_start < range.end.as_millis() && range.start.as_millis() < self.max_end
    }
}

/// In-memory state of one on-disk segment. The sparse index is rebuilt from
/// the file on open — only the frames live on disk.
#[derive(Debug)]
struct Segment {
    number: u32,
    path: PathBuf,
    /// Current file length in bytes (header included).
    bytes: u64,
    frames: u32,
    blocks: Vec<IndexBlock>,
}

impl Segment {
    fn fresh(number: u32, path: PathBuf) -> Segment {
        Segment {
            number,
            path,
            bytes: HEADER_LEN,
            frames: 0,
            blocks: Vec::new(),
        }
    }

    /// Record one appended frame in the sparse index.
    fn note_frame(&mut self, consumed: u64, time: Option<(i64, i64)>, index_every: u32) {
        if self.frames.is_multiple_of(index_every.max(1)) {
            self.blocks.push(IndexBlock::at(self.bytes));
        }
        if let Some(last) = self.blocks.last_mut() {
            last.frames += 1;
            if let Some((start, end)) = time {
                last.min_start = last.min_start.min(start);
                last.max_end = last.max_end.max(end);
            }
        }
        self.frames += 1;
        self.bytes += consumed;
    }

    /// May any event in the whole segment overlap `range`?
    fn may_overlap(&self, range: &TimeInterval) -> bool {
        self.blocks.iter().any(|b| b.may_overlap(range))
    }
}

fn segment_path(dir: &Path, number: u32) -> PathBuf {
    dir.join(format!("seg-{number:06}.slg"))
}

fn header_bytes() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..MAGIC.len()].copy_from_slice(MAGIC);
    h[MAGIC.len()] = CODEC_VERSION;
    h
}

/// The event time bounds of a record, if it is an event.
fn record_time(rec: &Record) -> Option<(i64, i64)> {
    match rec {
        Record::Event(e) => {
            let iv = e.time_interval();
            Some((iv.start.as_millis(), iv.end.as_millis()))
        }
        _ => None,
    }
}

/// A checksummed, rotating, crash-recoverable record log.
pub struct SegmentLog {
    config: DurableConfig,
    segments: Vec<Segment>,
    /// Append handle on the last (active) segment.
    active: File,
    /// Appends since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    /// Last position known to be on stable storage.
    synced_pos: Option<LogPos>,
    last_pos: Option<LogPos>,
    report: RecoveryReport,
    metrics: Metrics,
}

impl SegmentLog {
    /// Open (or create) the log at `config.dir`, scanning and repairing
    /// every segment. Returns the log, every surviving record in append
    /// order with its position, and the recovery report.
    #[allow(clippy::type_complexity)]
    pub fn open(
        config: DurableConfig,
    ) -> Result<(SegmentLog, Vec<(LogPos, Record)>, RecoveryReport), DurableError> {
        let sw = Stopwatch::start();
        fs::create_dir_all(&config.dir)?;

        let mut numbers = existing_segment_numbers(&config.dir)?;
        if numbers.is_empty() {
            numbers.push(1);
            create_segment(&config.dir, 1)?;
        }

        let mut report = RecoveryReport::default();
        let mut records = Vec::new();
        let mut segments = Vec::new();
        let mut corrupted_at: Option<usize> = None;

        for (i, &number) in numbers.iter().enumerate() {
            let path = segment_path(&config.dir, number);
            let (seg, recs, clean) = recover_segment(number, &path, &config, &mut report)?;
            for rec in recs {
                match &rec.1 {
                    Record::Event(_) => report.events += 1,
                    Record::Checkpoint { .. } => report.checkpoints += 1,
                    Record::Horizon(_) => report.horizons += 1,
                }
                records.push(rec);
            }
            segments.push(seg);
            if !clean {
                corrupted_at = Some(i);
                break;
            }
        }

        // A corrupt middle segment poisons everything after it: later
        // segments were written after the damage and cannot be trusted to
        // follow it. Delete them and account for every byte.
        if let Some(cut) = corrupted_at {
            for &number in &numbers[cut + 1..] {
                let path = segment_path(&config.dir, number);
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                report.truncated_bytes += len.saturating_sub(HEADER_LEN);
                report.dropped_segments += 1;
                fs::remove_file(&path)?;
            }
        }

        let mut metrics = Metrics::new();
        let last = segments.last().ok_or_else(|| {
            // Unreachable: we always have at least one segment by now.
            DurableError::corrupt("no segments after recovery")
        })?;
        let active = OpenOptions::new().append(true).open(&last.path)?;
        report.duration_us = sw.elapsed_us();

        let last_pos = segments
            .iter()
            .rev()
            .find(|s| s.frames > 0)
            .map(|s| LogPos {
                segment: s.number,
                frame: s.frames - 1,
            });

        metrics.gauge("segments").set(segments.len() as i64);
        metrics.counter("recovered_records").add(report.records());
        metrics
            .counter("recovery/truncated_bytes")
            .add(report.truncated_bytes);
        metrics
            .counter("recovery/dropped_segments")
            .add(report.dropped_segments);
        metrics.hist("recovery_us").record(report.duration_us);

        let log = SegmentLog {
            config,
            segments,
            active,
            unsynced: 0,
            // Everything recovered is on disk by definition.
            synced_pos: last_pos,
            last_pos,
            report,
            metrics,
        };
        Ok((log, records, report))
    }

    /// The configuration.
    pub fn config(&self) -> &DurableConfig {
        &self.config
    }

    /// The report from the open-time recovery scan.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    /// Number of segments currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The last appended position, if any record exists.
    pub fn last_pos(&self) -> Option<LogPos> {
        self.last_pos
    }

    /// The last position guaranteed to be on stable storage.
    pub fn synced_pos(&self) -> Option<LogPos> {
        self.synced_pos
    }

    /// Append one record, rotating and fsyncing per policy. Returns the
    /// record's position.
    pub fn append(&mut self, rec: &Record) -> Result<LogPos, DurableError> {
        let payload = rec.encode();
        let framed = frame(&payload);

        // Rotate *before* writing if the active segment is full (never leave
        // a frame straddling the size bound mid-write).
        let seal = {
            let seg = self.active_segment()?;
            seg.frames > 0 && seg.bytes + framed.len() as u64 > self.config.segment_max_bytes
        };
        if seal {
            self.seal_active()?;
        }

        self.active.write_all(&framed)?;
        let index_every = self.config.index_every;
        let time = record_time(rec);
        let seg = self.active_segment()?;
        let pos = LogPos {
            segment: seg.number,
            frame: seg.frames,
        };
        seg.note_frame(framed.len() as u64, time, index_every);
        self.last_pos = Some(pos);
        self.metrics.counter("frames_appended").inc();
        self.metrics
            .counter("bytes_written")
            .add(framed.len() as u64);

        self.unsynced += 1;
        let due = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::OnSeal => false,
        };
        if due {
            self.sync()?;
        }
        Ok(pos)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.unsynced == 0 && self.synced_pos == self.last_pos {
            return Ok(());
        }
        let sw = Stopwatch::start();
        self.active.sync_data()?;
        self.metrics.hist("fsync_us").record(sw.elapsed_us());
        self.metrics.counter("fsyncs").inc();
        self.unsynced = 0;
        self.synced_pos = self.last_pos;
        Ok(())
    }

    /// Seal the active segment (fsync it, it is never written again) and
    /// start a fresh one.
    fn seal_active(&mut self) -> Result<(), DurableError> {
        let sw = Stopwatch::start();
        self.active.sync_data()?;
        self.metrics.hist("fsync_us").record(sw.elapsed_us());
        self.metrics.counter("fsyncs").inc();
        self.unsynced = 0;
        self.synced_pos = self.last_pos;

        let next = self.active_segment()?.number + 1;
        let path = create_segment(&self.config.dir, next)?;
        self.active = OpenOptions::new().append(true).open(&path)?;
        self.segments.push(Segment::fresh(next, path));
        self.metrics.counter("segments_sealed").inc();
        self.metrics
            .gauge("segments")
            .set(self.segments.len() as i64);
        Ok(())
    }

    fn active_segment(&mut self) -> Result<&mut Segment, DurableError> {
        self.segments
            .last_mut()
            .ok_or_else(|| DurableError::corrupt("log has no active segment"))
    }

    /// Scan the whole log, decoding every record in append order. This is
    /// the brute-force reference reader: no index, no pruning.
    pub fn scan(&mut self) -> Result<Vec<(LogPos, Record)>, DurableError> {
        self.scan_overlapping(None)
    }

    /// Scan only records that may be events overlapping `range`, using the
    /// sparse per-segment time index to skip whole segments and blocks.
    /// With `None`, every record is returned (same as [`SegmentLog::scan`]).
    pub fn scan_overlapping(
        &mut self,
        range: Option<&TimeInterval>,
    ) -> Result<Vec<(LogPos, Record)>, DurableError> {
        // Unsynced frames are in the OS page cache, readable by a fresh
        // handle, so no sync is needed for read-your-writes here.
        let mut out = Vec::new();
        let mut bytes_read = 0u64;
        for seg in &self.segments {
            if let Some(r) = range {
                if seg.frames == 0 || !seg.may_overlap(r) {
                    continue;
                }
            }
            bytes_read += scan_segment(seg, range, &mut out)?;
        }
        self.metrics.counter("bytes_read").add(bytes_read);
        Ok(out)
    }

    /// Freeze the log's instruments into a snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Total bytes currently on disk across all segments (headers included).
    pub fn disk_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }
}

/// Read one segment, skipping index blocks that cannot contain events
/// overlapping `range`. Returns how many bytes were read from disk.
fn scan_segment(
    seg: &Segment,
    range: Option<&TimeInterval>,
    out: &mut Vec<(LogPos, Record)>,
) -> Result<u64, DurableError> {
    if seg.frames == 0 {
        return Ok(0);
    }
    let mut file = File::open(&seg.path)?;
    let mut frame_idx: u32 = 0;
    let mut bytes_read = 0u64;
    for (bi, block) in seg.blocks.iter().enumerate() {
        if range.is_some_and(|r| !block.may_overlap(r)) {
            frame_idx += block.frames;
            continue;
        }
        let end_offset = seg.blocks.get(bi + 1).map_or(seg.bytes, |next| next.offset);
        let len = (end_offset - block.offset) as usize;
        file.seek(SeekFrom::Start(block.offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        bytes_read += len as u64;
        let mut at = 0usize;
        for _ in 0..block.frames {
            match read_frame(&buf[at..]) {
                FrameRead::Ok { payload, consumed } => {
                    at += consumed;
                    let rec = Record::decode(&payload)?;
                    out.push((
                        LogPos {
                            segment: seg.number,
                            frame: frame_idx,
                        },
                        rec,
                    ));
                    frame_idx += 1;
                }
                // The in-memory index said a frame is here; the disk
                // disagrees. Surface it — this is post-recovery damage, not
                // a torn tail.
                FrameRead::Torn { why } => {
                    return Err(DurableError::corrupt(format!(
                        "{}: frame {frame_idx}: {why}",
                        seg.path.display()
                    )))
                }
                FrameRead::End => {
                    return Err(DurableError::corrupt(format!(
                        "{}: unexpected end at frame {frame_idx}",
                        seg.path.display()
                    )))
                }
            }
        }
    }
    Ok(bytes_read)
}

/// Numerically-sorted segment numbers present in `dir`.
fn existing_segment_numbers(dir: &Path) -> Result<Vec<u32>, DurableError> {
    let mut numbers = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".slg"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            numbers.push(num);
        }
    }
    numbers.sort_unstable();
    Ok(numbers)
}

/// Create a fresh segment file with a valid header, fsynced, and fsync the
/// directory so the new name itself survives a crash.
fn create_segment(dir: &Path, number: u32) -> Result<PathBuf, DurableError> {
    let path = segment_path(dir, number);
    let mut f = File::create(&path)?;
    f.write_all(&header_bytes())?;
    f.sync_all()?;
    // Persist the directory entry (best-effort: not all platforms allow
    // fsync on directories).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// One recovered segment: the rebuilt in-memory state, its surviving
/// records, and whether the file was clean (no truncation needed).
type RecoveredSegment = (Segment, Vec<(LogPos, Record)>, bool);

/// Scan one segment file, truncating at the first torn or corrupt frame.
fn recover_segment(
    number: u32,
    path: &Path,
    config: &DurableConfig,
    report: &mut RecoveryReport,
) -> Result<RecoveredSegment, DurableError> {
    let bytes = fs::read(path)?;

    // Header check: a torn or alien header means nothing in the file can be
    // trusted; reset it to an empty, valid segment.
    let header_ok = bytes.len() >= HEADER_LEN as usize
        && &bytes[..MAGIC.len()] == MAGIC
        && bytes[MAGIC.len()] == CODEC_VERSION;
    if !header_ok {
        report.truncated_bytes += bytes.len() as u64;
        let mut f = File::create(path)?;
        f.write_all(&header_bytes())?;
        f.sync_all()?;
        return Ok((
            Segment::fresh(number, path.to_path_buf()),
            Vec::new(),
            false,
        ));
    }

    let mut seg = Segment::fresh(number, path.to_path_buf());
    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut clean = true;

    while offset < bytes.len() {
        match read_frame(&bytes[offset..]) {
            FrameRead::Ok { payload, consumed } => {
                match Record::decode(&payload) {
                    Ok(rec) => {
                        let pos = LogPos {
                            segment: number,
                            frame: seg.frames,
                        };
                        seg.note_frame(consumed as u64, record_time(&rec), config.index_every);
                        records.push((pos, rec));
                        offset += consumed;
                    }
                    // Checksum fine but grammar broken: corruption (or a
                    // future codec). Cut here like any torn tail.
                    Err(_) => {
                        clean = false;
                        break;
                    }
                }
            }
            FrameRead::Torn { .. } => {
                clean = false;
                break;
            }
            FrameRead::End => break,
        }
    }

    if !clean || offset < bytes.len() {
        report.truncated_bytes += (bytes.len() - offset) as u64;
        clean = false;
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(offset as u64)?;
        f.sync_all()?;
    }
    Ok((seg, records, clean))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;
    use crate::tmp::TempDir;
    use sl_stt::{Event, SpatialGranule, TemporalGranularity, Theme, Timestamp, Value};

    fn event(minute: i64) -> Record {
        Record::Event(Event::new(
            Value::Int(minute),
            TemporalGranularity::Minute,
            minute,
            SpatialGranule::World,
            Theme::new("weather").unwrap(),
        ))
    }

    fn cfg(dir: &TempDir) -> DurableConfig {
        DurableConfig::at(dir.path())
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = TempDir::new("log-roundtrip").unwrap();
        {
            let (mut log, recs, report) = SegmentLog::open(cfg(&dir)).unwrap();
            assert!(recs.is_empty());
            assert!(!report.lossy());
            for m in 0..20 {
                log.append(&event(m)).unwrap();
            }
            assert_eq!(log.last_pos(), log.synced_pos()); // Always policy
        }
        let (mut log, recs, report) = SegmentLog::open(cfg(&dir)).unwrap();
        assert_eq!(recs.len(), 20);
        assert_eq!(report.events, 20);
        assert!(!report.lossy());
        // Positions are strictly increasing.
        let positions: Vec<LogPos> = recs.iter().map(|(p, _)| *p).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted);
        assert_eq!(log.scan().unwrap().len(), 20);
    }

    #[test]
    fn rotation_seals_segments() {
        let dir = TempDir::new("log-rotate").unwrap();
        let config = cfg(&dir).with_segment_max_bytes(256);
        let (mut log, _, _) = SegmentLog::open(config.clone()).unwrap();
        for m in 0..50 {
            log.append(&event(m)).unwrap();
        }
        assert!(log.segment_count() > 1, "256-byte cap must rotate");
        drop(log);
        let (log, recs, report) = SegmentLog::open(config).unwrap();
        assert_eq!(recs.len(), 50);
        assert!(!report.lossy());
        assert!(log.segment_count() > 1);
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let dir = TempDir::new("log-torn").unwrap();
        {
            let (mut log, _, _) = SegmentLog::open(cfg(&dir)).unwrap();
            for m in 0..10 {
                log.append(&event(m)).unwrap();
            }
        }
        // Chop 3 bytes off the active segment: the last frame is now torn.
        let path = segment_path(dir.path(), 1);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let (log, recs, report) = SegmentLog::open(cfg(&dir)).unwrap();
        assert_eq!(recs.len(), 9, "only the torn last frame is lost");
        assert!(report.lossy());
        assert!(report.truncated_bytes > 0);
        // The log is immediately appendable again.
        drop(log);
        let (mut log, _, _) = SegmentLog::open(cfg(&dir)).unwrap();
        log.append(&event(99)).unwrap();
        drop(log);
        let (_, recs, _) = SegmentLog::open(cfg(&dir)).unwrap();
        assert_eq!(recs.len(), 10);
    }

    #[test]
    fn corrupt_middle_segment_drops_later_ones() {
        let dir = TempDir::new("log-poison").unwrap();
        let config = cfg(&dir).with_segment_max_bytes(256);
        {
            let (mut log, _, _) = SegmentLog::open(config.clone()).unwrap();
            for m in 0..50 {
                log.append(&event(m)).unwrap();
            }
            assert!(log.segment_count() >= 3);
        }
        // Flip a byte in the middle of segment 1's first frame payload.
        let path = segment_path(dir.path(), 1);
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 6] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (log, recs, report) = SegmentLog::open(config).unwrap();
        assert_eq!(recs.len(), 0, "corruption at the first frame drops all");
        assert!(report.dropped_segments >= 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(log.segment_count(), 1);
    }

    #[test]
    fn time_pruned_scan_matches_full_scan() {
        let dir = TempDir::new("log-index").unwrap();
        let config = DurableConfig {
            index_every: 4,
            ..cfg(&dir).with_segment_max_bytes(512)
        };
        let (mut log, _, _) = SegmentLog::open(config).unwrap();
        for m in 0..200 {
            log.append(&event(m)).unwrap();
        }
        let range = TimeInterval::new(
            Timestamp::from_millis(50 * 60_000),
            Timestamp::from_millis(60 * 60_000),
        );
        let full: Vec<i64> = log
            .scan()
            .unwrap()
            .into_iter()
            .filter_map(|(_, r)| match r {
                Record::Event(e) if e.time_interval().overlaps(&range) => Some(e.tgranule),
                _ => None,
            })
            .collect();
        let pruned: Vec<i64> = log
            .scan_overlapping(Some(&range))
            .unwrap()
            .into_iter()
            .filter_map(|(_, r)| match r {
                Record::Event(e) if e.time_interval().overlaps(&range) => Some(e.tgranule),
                _ => None,
            })
            .collect();
        assert_eq!(full, pruned);
        assert_eq!(full.len(), 10);
    }

    #[test]
    fn fsync_policies_track_synced_pos() {
        let dir = TempDir::new("log-fsync").unwrap();
        let config = cfg(&dir).with_fsync(FsyncPolicy::EveryN(5));
        let (mut log, _, _) = SegmentLog::open(config).unwrap();
        for m in 0..4 {
            log.append(&event(m)).unwrap();
        }
        assert_ne!(log.synced_pos(), log.last_pos(), "4 < 5: not yet synced");
        log.append(&event(4)).unwrap();
        assert_eq!(log.synced_pos(), log.last_pos(), "5th append syncs");
        log.append(&event(5)).unwrap();
        assert_ne!(log.synced_pos(), log.last_pos());
        log.sync().unwrap();
        assert_eq!(log.synced_pos(), log.last_pos());
        let snap = log.metrics_snapshot();
        assert!(snap.counters["fsyncs"] >= 2);
        assert!(snap.counters["bytes_written"] > 0);
    }
}
