//! The durable Event Data Warehouse: hot in-memory indexes over the recent
//! tail, cold checksummed segments for everything evicted.
//!
//! Every ingested event is appended to the [`SegmentLog`] *before* it
//! becomes visible in the hot [`EventWarehouse`] (write-ahead discipline),
//! so the hot store is always reconstructible from disk. Retention flips
//! from *discard* to *spill*: [`DurableWarehouse::evict_before`] removes old
//! events from the hot indexes exactly as before, but writes a horizon
//! marker to the log instead of forgetting them — the events stay readable
//! in the sealed segments.
//!
//! # The hot/cold split
//!
//! Which log events are "cold" (evicted from the hot store) is decided
//! *positionally*: an event at log position `p` with interval end `e` is
//! cold iff some horizon marker recorded *after* `p` carries a horizon
//! `h ≥ e`. This mirrors `EventWarehouse::evict_before` exactly — including
//! the subtle case of a late-arriving old event inserted *after* an
//! eviction, which stays hot (no later marker covers it) even though its
//! interval is ancient. Queries merge a block-skipping cold-segment scan
//! with the hot index path and never see an event twice.
//!
//! Operator checkpoints ride the same log (kind 2 frames), so a restarted
//! process recovers both its warehouse and its blocking operators' window
//! caches from one directory.

use crate::codec::Record;
use crate::compact::{self, CompactionPolicy, CompactionStats, MergeRun};
use crate::error::DurableError;
use crate::index::Pruner;
use crate::log::{DurableConfig, LogPos, RecoveryReport, SegmentLog};
use sl_obs::{Metrics, MetricsSnapshot, Stopwatch};
use sl_ops::OpCheckpoint;
use sl_stt::{Event, SpatialGranularity, TemporalGranularity, Timestamp, Tuple};
use sl_warehouse::{tuple_events, EventQuery, EventWarehouse, WarehouseConfig};
use std::collections::HashMap;

/// A crash-safe warehouse: hot `EventWarehouse` over the recent tail, cold
/// segment log underneath, one merged query surface.
pub struct DurableWarehouse {
    hot: EventWarehouse,
    log: SegmentLog,
    /// Horizon markers in log order: (position of the marker frame, horizon).
    markers: Vec<(LogPos, Timestamp)>,
    /// `suffix_max[i]` = max horizon (ms) over `markers[i..]`; decides
    /// coldness in O(log markers) per event.
    suffix_max: Vec<i64>,
    /// Checkpoints recovered at open time, keyed by (deployment, service);
    /// the engine drains these into its restart path.
    recovered: HashMap<(String, String), OpCheckpoint>,
    metrics: Metrics,
}

impl DurableWarehouse {
    /// Open (or create) a durable warehouse at `config.dir` with default
    /// hot-index configuration, replaying the log: events past the latest
    /// applicable horizon rebuild the hot indexes, checkpoints are retained
    /// for [`DurableWarehouse::take_checkpoints`].
    pub fn open(config: DurableConfig) -> Result<DurableWarehouse, DurableError> {
        DurableWarehouse::open_with(config, WarehouseConfig::default())
    }

    /// Open with an explicit hot-store configuration.
    pub fn open_with(
        config: DurableConfig,
        hot_config: WarehouseConfig,
    ) -> Result<DurableWarehouse, DurableError> {
        let sw = Stopwatch::start();
        let (log, records, _report) = SegmentLog::open(config)?;

        // Pass 1: markers and latest checkpoints.
        let mut markers: Vec<(LogPos, Timestamp)> = Vec::new();
        let mut recovered: HashMap<(String, String), OpCheckpoint> = HashMap::new();
        for (pos, rec) in &records {
            match rec {
                Record::Horizon(h) => markers.push((*pos, *h)),
                Record::Checkpoint {
                    deployment,
                    service,
                    state,
                } => {
                    // Last write wins: later snapshots supersede earlier.
                    recovered.insert((deployment.clone(), service.clone()), state.clone());
                }
                Record::Event(_) => {}
            }
        }
        let suffix_max = suffix_maxima(&markers);

        // Pass 2: non-cold events rebuild the hot store, in log order.
        let mut hot = EventWarehouse::new(hot_config);
        let mut rebuilt = 0u64;
        for (pos, rec) in records {
            if let Record::Event(event) = rec {
                if !is_cold(&markers, &suffix_max, pos, &event) {
                    hot.insert(event);
                    rebuilt += 1;
                }
            }
        }

        let mut metrics = Metrics::new();
        metrics.hist("open_us").record(sw.elapsed_us());
        metrics.counter("rebuilt_hot_events").add(rebuilt);
        metrics
            .counter("recovered_checkpoints")
            .add(recovered.len() as u64);
        Ok(DurableWarehouse {
            hot,
            log,
            markers,
            suffix_max,
            recovered,
            metrics,
        })
    }

    /// The hot in-memory warehouse (recent tail).
    pub fn hot(&self) -> &EventWarehouse {
        &self.hot
    }

    /// Mutable hot warehouse. Evict through
    /// [`DurableWarehouse::evict_before`], not directly — a direct hot
    /// eviction discards without writing a horizon marker.
    pub fn hot_mut(&mut self) -> &mut EventWarehouse {
        &mut self.hot
    }

    /// The underlying segment log.
    pub fn log(&self) -> &SegmentLog {
        &self.log
    }

    /// The recovery report from open time.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.log.recovery_report()
    }

    /// Drain the operator checkpoints recovered at open time.
    pub fn take_checkpoints(&mut self) -> HashMap<(String, String), OpCheckpoint> {
        std::mem::take(&mut self.recovered)
    }

    /// Append one event durably, then make it hot. The log write happens
    /// first: a crash between the two replays the event on reopen.
    pub fn insert(&mut self, event: Event) -> Result<(), DurableError> {
        self.log.append(&Record::Event(event.clone()))?;
        self.hot.insert(event);
        Ok(())
    }

    /// Durable counterpart of [`EventWarehouse::ingest_tuple`]: translate
    /// once, log every event, then ingest the same events into the hot
    /// indexes. Returns how many events were stored.
    pub fn ingest_tuple(
        &mut self,
        tuple: &Tuple,
        tgran: TemporalGranularity,
        sgran: SpatialGranularity,
    ) -> Result<usize, DurableError> {
        self.ingest_events(tuple_events(tuple, tgran, sgran))
    }

    /// Durable counterpart of [`EventWarehouse::ingest_events`]: log every
    /// event, then ingest the same batch into the hot indexes. Callers that
    /// translated a tuple themselves (the engine does, so it can fan the
    /// batch out to continuous queries as well) use this directly. Returns
    /// how many events were stored.
    pub fn ingest_events(&mut self, events: Vec<Event>) -> Result<usize, DurableError> {
        for event in &events {
            self.log.append(&Record::Event(event.clone()))?;
        }
        Ok(self.hot.ingest_events(events))
    }

    /// Persist a blocking operator's window snapshot.
    pub fn persist_checkpoint(
        &mut self,
        deployment: &str,
        service: &str,
        state: &OpCheckpoint,
    ) -> Result<(), DurableError> {
        self.log.append(&Record::Checkpoint {
            deployment: deployment.to_string(),
            service: service.to_string(),
            state: state.clone(),
        })?;
        self.metrics.counter("checkpoints_persisted").inc();
        Ok(())
    }

    /// Retention that spills instead of discarding: evict from the hot
    /// indexes as usual, then write a horizon marker so the evicted events
    /// are served from cold segments from now on. Returns how many events
    /// went cold.
    pub fn evict_before(&mut self, horizon: Timestamp) -> Result<usize, DurableError> {
        let evicted = self.hot.evict_before(horizon);
        let pos = self.log.append(&Record::Horizon(horizon))?;
        self.markers.push((pos, horizon));
        self.suffix_max = suffix_maxima(&self.markers);
        self.metrics.counter("events_spilled").add(evicted as u64);
        Ok(evicted)
    }

    /// True when the configured [`CompactionPolicy`] is enabled (the engine
    /// drives [`DurableWarehouse::maybe_compact`] from its monitor tick
    /// only then, and lint SL092 checks the flag on durable deployments).
    pub fn compaction_enabled(&self) -> bool {
        self.log.config().compaction.enabled
    }

    /// Run one policy-gated compaction step: if a run of small sealed
    /// segments qualifies under the configured [`CompactionPolicy`], merge
    /// it and return the stats. `Ok(None)` when the policy is disabled or
    /// nothing qualifies (steady state). `now` anchors the
    /// `cold_retention` age-out cutoff.
    pub fn maybe_compact(
        &mut self,
        now: Timestamp,
    ) -> Result<Option<CompactionStats>, DurableError> {
        let policy = self.log.config().compaction.clone();
        if !policy.enabled {
            return Ok(None);
        }
        match compact::plan(&self.log.sealed_metas(), &policy) {
            Some(run) => self.run_compaction(run, &policy, now).map(Some),
            None => Ok(None),
        }
    }

    /// Force-merge every sealed segment into one, regardless of policy
    /// thresholds (the policy's `cold_retention` still applies). `Ok(None)`
    /// with fewer than two sealed segments.
    pub fn compact_now(&mut self, now: Timestamp) -> Result<Option<CompactionStats>, DurableError> {
        let policy = self.log.config().compaction.clone();
        match compact::plan_forced(&self.log.sealed_metas()) {
            Some(run) => self.run_compaction(run, &policy, now).map(Some),
            None => Ok(None),
        }
    }

    /// Execute one merge: read the inputs, drop what the policy allows
    /// (order among survivors is preserved exactly — see [`crate::compact`]
    /// for why events are never reordered or deduplicated), atomically
    /// replace the input segments, and splice the renumbered horizon
    /// markers back into the in-memory marker list.
    fn run_compaction(
        &mut self,
        run: MergeRun,
        policy: &CompactionPolicy,
        now: Timestamp,
    ) -> Result<CompactionStats, DurableError> {
        let sw = Stopwatch::start();
        let input = self.log.read_range(run.first, run.last)?;
        let bytes_before = self.log.bytes_in_range(run.first, run.last);
        let cutoff = policy
            .cold_retention
            .map(|w| now.saturating_sub(w).as_millis());

        // Last checkpoint per key within the merged range: recovery is
        // last-write-wins, so earlier snapshots of the same key are dead.
        let mut last_ckpt: HashMap<(&str, &str), usize> = HashMap::new();
        for (i, (_, rec)) in input.iter().enumerate() {
            if let Record::Checkpoint {
                deployment,
                service,
                ..
            } = rec
            {
                last_ckpt.insert((deployment.as_str(), service.as_str()), i);
            }
        }

        let mut kept: Vec<Record> = Vec::with_capacity(input.len());
        let mut events_dropped = 0u64;
        let mut markers_dropped = 0u64;
        let mut checkpoints_dropped = 0u64;
        for (i, (pos, rec)) in input.iter().enumerate() {
            match rec {
                Record::Event(e) => {
                    // Only *cold* events can be aged out: a hot event (late
                    // arrival no marker covers) must survive so the hot
                    // store can be rebuilt from the log on reopen.
                    let expired = cutoff.is_some_and(|c| e.time_interval().end.as_millis() <= c);
                    if expired && is_cold(&self.markers, &self.suffix_max, *pos, e) {
                        events_dropped += 1;
                    } else {
                        kept.push(rec.clone());
                    }
                }
                Record::Horizon(h) => {
                    // Redundant iff a strictly later marker (anywhere in
                    // the log) carries an equal or higher horizon: removing
                    // it leaves the suffix maximum at every log position —
                    // and therefore every coldness verdict — unchanged.
                    let after = self.markers.partition_point(|(mpos, _)| *mpos <= *pos);
                    let later_max = self.suffix_max.get(after).copied().unwrap_or(i64::MIN);
                    if later_max >= h.as_millis() {
                        markers_dropped += 1;
                    } else {
                        kept.push(rec.clone());
                    }
                }
                Record::Checkpoint {
                    deployment,
                    service,
                    ..
                } => {
                    if last_ckpt.get(&(deployment.as_str(), service.as_str())) == Some(&i) {
                        kept.push(rec.clone());
                    } else {
                        checkpoints_dropped += 1;
                    }
                }
            }
        }

        let bytes_after = self
            .log
            .replace_segments(run.first, run.last, run.generation, &kept)?;

        // Markers inside the merged range now live at renumbered positions
        // (segment = run.first, frame = index among survivors); markers
        // outside it are untouched.
        let lo = self.markers.partition_point(|(p, _)| p.segment < run.first);
        let hi = self.markers.partition_point(|(p, _)| p.segment <= run.last);
        let renumbered: Vec<(LogPos, Timestamp)> = kept
            .iter()
            .enumerate()
            .filter_map(|(i, rec)| match rec {
                Record::Horizon(h) => Some((
                    LogPos {
                        segment: run.first,
                        frame: i as u32,
                    },
                    *h,
                )),
                _ => None,
            })
            .collect();
        self.markers.splice(lo..hi, renumbered);
        self.suffix_max = suffix_maxima(&self.markers);

        let stats = CompactionStats {
            segments_in: run.inputs,
            generation: run.generation,
            bytes_before,
            bytes_after,
            events_dropped,
            markers_dropped,
            checkpoints_dropped,
            duration_us: sw.elapsed_us(),
        };
        self.metrics.counter("compaction/runs").inc();
        self.metrics
            .counter("compaction/segments_in")
            .add(run.inputs as u64);
        self.metrics
            .counter("compaction/events_dropped")
            .add(events_dropped);
        self.metrics
            .counter("compaction/markers_dropped")
            .add(markers_dropped);
        self.metrics
            .counter("compaction/checkpoints_dropped")
            .add(checkpoints_dropped);
        self.metrics
            .counter("compaction/bytes_reclaimed")
            .add(stats.bytes_reclaimed());
        self.metrics
            .hist("compaction/pause_us")
            .record(stats.duration_us);
        Ok(stats)
    }

    /// Answer a query across both tiers: a block-skipping scan over cold
    /// segment events merged with the hot index path. Cold results come
    /// first (they are older in log order), each tier in its own storage
    /// order; no event appears twice.
    pub fn query(&mut self, q: &EventQuery) -> Result<Vec<Event>, DurableError> {
        let sw = Stopwatch::start();
        let mut out = self.cold_matches(q, true)?;
        out.extend(self.hot.query(q).into_iter().cloned());
        self.metrics.hist("query_us").record(sw.elapsed_us());
        self.metrics.counter("queries").inc();
        Ok(out)
    }

    /// Reference implementation: decode *every* event in the log (hot
    /// events are in the log too) and filter. Property tests compare this
    /// against [`DurableWarehouse::query`].
    pub fn query_scan(&mut self, q: &EventQuery) -> Result<Vec<Event>, DurableError> {
        let mut out = Vec::new();
        for (_, rec) in self.log.scan()? {
            if let Record::Event(e) = rec {
                if q.matches(&e) {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }

    /// Cold-tier matches for `q`. With `pruned`, the zone indexes skip
    /// blocks/segments that cannot overlap `q.time` or (for compacted
    /// segments, via their theme filters) cannot contain `q.theme`.
    fn cold_matches(&mut self, q: &EventQuery, pruned: bool) -> Result<Vec<Event>, DurableError> {
        if self.markers.is_empty() {
            return Ok(Vec::new()); // nothing has ever been evicted
        }
        let pruner = if pruned {
            Pruner {
                time: q.time,
                theme: q.theme.clone(),
            }
        } else {
            Pruner::keep_all()
        };
        let mut out = Vec::new();
        let records = self.log.scan_pruned(&pruner)?;
        for (pos, rec) in records {
            if let Record::Event(event) = rec {
                if is_cold(&self.markers, &self.suffix_max, pos, &event) && q.matches(&event) {
                    out.push(event);
                }
            }
        }
        Ok(out)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.log.sync()
    }

    /// Number of on-disk segments.
    pub fn segment_count(&self) -> usize {
        self.log.segment_count()
    }

    /// Instruments of the durable tier (log + tiering). The hot store's own
    /// metrics remain available via `hot().metrics_snapshot()`.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.absorb("log", &self.log.metrics_snapshot());
        snap
    }
}

impl Drop for DurableWarehouse {
    fn drop(&mut self) {
        // Best-effort durability for lazier fsync policies on clean
        // shutdown; crash behaviour is governed by the policy itself.
        let _ = self.log.sync();
    }
}

/// `out[i]` = max horizon (ms) over `markers[i..]`.
fn suffix_maxima(markers: &[(LogPos, Timestamp)]) -> Vec<i64> {
    let mut out = vec![0i64; markers.len()];
    let mut max = i64::MIN;
    for i in (0..markers.len()).rev() {
        max = max.max(markers[i].1.as_millis());
        out[i] = max;
    }
    out
}

/// Is the event at `pos` cold — evicted from the hot store by some horizon
/// marker written after it?
fn is_cold(
    markers: &[(LogPos, Timestamp)],
    suffix_max: &[i64],
    pos: LogPos,
    event: &Event,
) -> bool {
    // First marker strictly after the event's position (marker and event
    // frames never share a position).
    let i = markers.partition_point(|(mpos, _)| *mpos < pos);
    match suffix_max.get(i) {
        Some(&h) => event.time_interval().end.as_millis() <= h,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;
    use crate::tmp::TempDir;
    use sl_stt::{GeoPoint, Theme, TimeInterval, Value};

    fn event(minute: i64, theme: &str) -> Event {
        let g = SpatialGranularity::grid(8).granule_of(&GeoPoint::new_unchecked(34.7, 135.5));
        Event::new(
            Value::Int(minute),
            TemporalGranularity::Minute,
            minute,
            g,
            Theme::new(theme).unwrap(),
        )
    }

    fn minutes(ts: i64) -> Timestamp {
        Timestamp::from_millis(ts * 60_000)
    }

    fn sorted(mut v: Vec<Event>) -> Vec<String> {
        v.sort_by_key(|e| (e.tgranule, e.theme.to_string()));
        v.into_iter().map(|e| e.to_string()).collect()
    }

    #[test]
    fn evict_spills_instead_of_discarding() {
        let dir = TempDir::new("dw-spill").unwrap();
        let mut dw = DurableWarehouse::open(DurableConfig::at(dir.path())).unwrap();
        for m in 0..100 {
            dw.insert(event(m, "weather/temperature")).unwrap();
        }
        assert_eq!(dw.hot().len(), 100);
        let evicted = dw.evict_before(minutes(50)).unwrap();
        assert_eq!(evicted, 50);
        assert_eq!(dw.hot().len(), 50, "hot tier keeps the recent tail");
        // The merged query still sees everything.
        let all = dw.query(&EventQuery::all()).unwrap();
        assert_eq!(all.len(), 100, "evicted events are cold, not gone");
        // And matches the brute-force reference.
        assert_eq!(
            sorted(all),
            sorted(dw.query_scan(&EventQuery::all()).unwrap())
        );
    }

    #[test]
    fn late_arriving_old_event_stays_hot() {
        let dir = TempDir::new("dw-late").unwrap();
        let mut dw = DurableWarehouse::open(DurableConfig::at(dir.path())).unwrap();
        for m in 0..10 {
            dw.insert(event(m, "weather")).unwrap();
        }
        dw.evict_before(minutes(20)).unwrap();
        assert_eq!(dw.hot().len(), 0);
        // An *old* event arriving after the eviction: the hot store keeps
        // it (no later marker covers it), and the merged query must not
        // double-count it.
        dw.insert(event(3, "weather")).unwrap();
        assert_eq!(dw.hot().len(), 1);
        let all = dw.query(&EventQuery::all()).unwrap();
        assert_eq!(all.len(), 11);
        assert_eq!(
            sorted(all),
            sorted(dw.query_scan(&EventQuery::all()).unwrap())
        );
    }

    #[test]
    fn reopen_restores_both_tiers() {
        let dir = TempDir::new("dw-reopen").unwrap();
        let before = {
            let mut dw = DurableWarehouse::open(DurableConfig::at(dir.path())).unwrap();
            for m in 0..60 {
                dw.insert(event(m, "weather/rain")).unwrap();
            }
            dw.evict_before(minutes(30)).unwrap();
            for m in 60..80 {
                dw.insert(event(m, "weather/rain")).unwrap();
            }
            sorted(dw.query(&EventQuery::all()).unwrap())
        };
        let mut dw = DurableWarehouse::open(DurableConfig::at(dir.path())).unwrap();
        assert_eq!(dw.hot().len(), 50, "30 cold, 50 hot after replay");
        assert_eq!(sorted(dw.query(&EventQuery::all()).unwrap()), before);
        assert_eq!(sorted(dw.query_scan(&EventQuery::all()).unwrap()), before);
    }

    #[test]
    fn constrained_queries_merge_correctly() {
        let dir = TempDir::new("dw-query").unwrap();
        let mut dw = DurableWarehouse::open(DurableConfig::at(dir.path())).unwrap();
        for m in 0..40 {
            let theme = if m % 2 == 0 {
                "weather/rain"
            } else {
                "social/tweet"
            };
            dw.insert(event(m, theme)).unwrap();
        }
        dw.evict_before(minutes(20)).unwrap();
        let queries = [
            EventQuery::all(),
            EventQuery::all().in_time(TimeInterval::new(minutes(10), minutes(30))),
            EventQuery::all().with_theme(Theme::new("weather").unwrap()),
            EventQuery::all()
                .in_time(TimeInterval::new(minutes(0), minutes(25)))
                .with_theme(Theme::new("social").unwrap()),
        ];
        for q in queries {
            let merged = sorted(dw.query(&q).unwrap());
            let reference = sorted(dw.query_scan(&q).unwrap());
            assert_eq!(merged, reference, "disagreement on {q:?}");
        }
    }

    #[test]
    fn checkpoints_survive_reopen() {
        use sl_stt::{AttrType, Field, Schema, SensorId, SttMeta};
        let dir = TempDir::new("dw-ckpt").unwrap();
        let schema = Schema::new(vec![Field::new("v", AttrType::Float)])
            .unwrap()
            .into_ref();
        let tuple = Tuple::new(
            schema,
            vec![Value::Float(1.5)],
            SttMeta::without_location(
                Timestamp::from_secs(9),
                Theme::new("weather").unwrap(),
                SensorId(3),
            ),
        )
        .unwrap();
        {
            let mut dw = DurableWarehouse::open(DurableConfig::at(dir.path())).unwrap();
            let ck = OpCheckpoint {
                tuples: vec![(0, tuple.clone())],
            };
            dw.persist_checkpoint("agg", "mean", &ck).unwrap();
            // A later snapshot supersedes the earlier one.
            let ck2 = OpCheckpoint {
                tuples: vec![(0, tuple.clone()), (0, tuple)],
            };
            dw.persist_checkpoint("agg", "mean", &ck2).unwrap();
        }
        let mut dw = DurableWarehouse::open(DurableConfig::at(dir.path())).unwrap();
        let cks = dw.take_checkpoints();
        assert_eq!(cks.len(), 1);
        let ck = &cks[&("agg".to_string(), "mean".to_string())];
        assert_eq!(ck.tuples.len(), 2, "last write wins");
        assert!(dw.take_checkpoints().is_empty(), "drained");
    }

    #[test]
    fn compaction_preserves_queries_exactly() {
        let dir = TempDir::new("dw-compact").unwrap();
        let config = DurableConfig::at(dir.path()).with_segment_max_bytes(400);
        let mut dw = DurableWarehouse::open(config.clone()).unwrap();
        for m in 0..80 {
            let theme = if m % 2 == 0 {
                "weather/rain"
            } else {
                "social/tweet"
            };
            dw.insert(event(m, theme)).unwrap();
            if m % 20 == 19 {
                dw.evict_before(minutes(m - 10)).unwrap();
            }
        }
        let segments_before = dw.segment_count();
        assert!(segments_before >= 3, "small segments must have rotated");
        let queries = [
            EventQuery::all(),
            EventQuery::all().in_time(TimeInterval::new(minutes(10), minutes(40))),
            EventQuery::all().with_theme(Theme::new("weather").unwrap()),
            EventQuery::all()
                .in_time(TimeInterval::new(minutes(0), minutes(55)))
                .with_theme(Theme::new("social").unwrap()),
        ];
        let before: Vec<Vec<String>> = queries
            .iter()
            .map(|q| dw.query(q).unwrap().iter().map(|e| e.to_string()).collect())
            .collect();

        // No cold_retention configured: nothing the queries can see drops.
        let stats = dw.compact_now(minutes(10_000)).unwrap().unwrap();
        assert!(stats.segments_in >= 2);
        assert_eq!(stats.events_dropped, 0);
        assert!(stats.markers_dropped >= 1, "superseded horizons drop");
        assert!(dw.segment_count() < segments_before);

        for (q, want) in queries.iter().zip(&before) {
            let got: Vec<String> = dw.query(q).unwrap().iter().map(|e| e.to_string()).collect();
            assert_eq!(&got, want, "byte-identical across compaction: {q:?}");
        }

        // And across a reopen of the compacted log.
        drop(dw);
        let mut dw = DurableWarehouse::open(config).unwrap();
        assert!(!dw.recovery_report().lossy());
        for (q, want) in queries.iter().zip(&before) {
            let got: Vec<String> = dw.query(q).unwrap().iter().map(|e| e.to_string()).collect();
            assert_eq!(&got, want, "byte-identical after reopen: {q:?}");
            assert_eq!(
                sorted(dw.query(q).unwrap()),
                sorted(dw.query_scan(q).unwrap()),
                "reference scan agrees: {q:?}"
            );
        }
    }

    #[test]
    fn cold_retention_ages_out_only_expired_cold_events() {
        use sl_stt::Duration;
        let dir = TempDir::new("dw-retire").unwrap();
        let config = DurableConfig::at(dir.path())
            .with_segment_max_bytes(300)
            .with_compaction(
                CompactionPolicy::enabled().with_cold_retention(Duration::from_mins(10)),
            );
        let mut dw = DurableWarehouse::open(config.clone()).unwrap();
        for m in 0..40 {
            dw.insert(event(m, "weather")).unwrap();
        }
        dw.evict_before(minutes(30)).unwrap();
        // A late-arriving *old* event: hot (no later marker covers it), so
        // compaction must keep it even though its interval is ancient.
        dw.insert(event(2, "weather")).unwrap();

        let stats = dw.compact_now(minutes(100)).unwrap().unwrap();
        assert_eq!(stats.events_dropped, 30, "all expired cold events age out");
        let all = dw.query(&EventQuery::all()).unwrap();
        assert_eq!(all.len(), 11, "10 hot tail + 1 late arrival survive");

        drop(dw);
        let mut dw = DurableWarehouse::open(config).unwrap();
        assert_eq!(dw.hot().len(), 11, "hot store rebuilds from survivors");
        assert_eq!(dw.query(&EventQuery::all()).unwrap().len(), 11);
        let snap = dw.metrics_snapshot();
        assert!(snap.counters.contains_key("log/recovered_records"));
    }

    #[test]
    fn maybe_compact_respects_policy() {
        let dir = TempDir::new("dw-policy").unwrap();
        // Disabled (the default): maybe_compact is a no-op.
        let mut dw =
            DurableWarehouse::open(DurableConfig::at(dir.path()).with_segment_max_bytes(300))
                .unwrap();
        assert!(!dw.compaction_enabled());
        for m in 0..40 {
            dw.insert(event(m, "weather")).unwrap();
        }
        assert!(dw.maybe_compact(minutes(100)).unwrap().is_none());
        drop(dw);

        // Enabled with a 2-segment minimum: the next tick merges.
        let config = DurableConfig::at(dir.path())
            .with_segment_max_bytes(300)
            .with_compaction(CompactionPolicy::enabled().with_inputs(2, 8));
        let mut dw = DurableWarehouse::open(config).unwrap();
        assert!(dw.compaction_enabled());
        let segments = dw.segment_count();
        assert!(segments >= 3);
        let stats = dw.maybe_compact(minutes(100)).unwrap().unwrap();
        assert!(stats.segments_in >= 2);
        assert_eq!(stats.generation, 1);
        assert!(dw.segment_count() < segments);
        let snap = dw.metrics_snapshot();
        assert_eq!(snap.counters["compaction/runs"], 1);
        // Steady state eventually: repeated ticks stop finding work.
        for _ in 0..10 {
            dw.maybe_compact(minutes(100)).unwrap();
        }
        assert!(dw.maybe_compact(minutes(100)).unwrap().is_none());
        assert_eq!(
            sorted(dw.query(&EventQuery::all()).unwrap()),
            sorted(dw.query_scan(&EventQuery::all()).unwrap())
        );
    }
}
