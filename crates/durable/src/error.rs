//! Failure modes of the persistence layer.

use std::fmt;
use std::io;

/// Anything that can go wrong while persisting or recovering.
///
/// Corruption detected *inside* a segment during recovery is not an error —
/// torn tails are expected after a crash and are handled by truncation (see
/// [`crate::RecoveryReport`]). `Corrupt` is only returned when a caller asks
/// to decode a specific blob that fails its checksum or its grammar.
#[derive(Debug)]
pub enum DurableError {
    /// An operating-system I/O failure (open, write, fsync, rename...).
    Io(io::Error),
    /// A frame or payload that cannot be decoded: bad checksum, truncated
    /// body, an unknown tag, or a value rejected by the STT domain rules.
    Corrupt(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable i/o: {e}"),
            DurableError::Corrupt(what) => write!(f, "durable corruption: {what}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> DurableError {
        DurableError::Io(e)
    }
}

impl DurableError {
    /// Shorthand for a corruption error.
    pub(crate) fn corrupt(what: impl Into<String>) -> DurableError {
        DurableError::Corrupt(what.into())
    }
}
