//! Size-tiered compaction policy for the segment log.
//!
//! Appends and seals produce many small generation-0 segments; every cold
//! query pays a per-segment toll (open, per-block seeks, frame decodes) on
//! each of them, forever. Compaction merges a run of adjacent sealed
//! segments of one generation into a single generation-N+1 segment,
//! preserving record order exactly — the merged file is the concatenation
//! of its inputs' surviving records, so replay, tiered queries, and
//! continuous-query re-seeding stay byte-identical (the contract
//! property-tested in `tests/compaction_props.rs`). What compaction *does*
//! drop:
//!
//! * **Redundant horizon markers** — a marker is dead weight when a later
//!   marker anywhere in the log carries an equal or higher horizon (the
//!   suffix-maximum over every log position is unchanged by removing it).
//! * **Superseded checkpoints** — recovery is last-write-wins per
//!   `(deployment, service)`, so within the merged run only the final
//!   snapshot of each key matters.
//! * **Expired cold events** — when [`CompactionPolicy::cold_retention`]
//!   bounds the cold tier, events already evicted from the hot store whose
//!   interval ended before `now - cold_retention` are aged out for good.
//!   Events still hot (late arrivals never covered by a marker) are never
//!   dropped: the hot store is rebuilt from the log on open.
//!
//! Events are *never* deduplicated — two equal events are two observations,
//! and queries must keep counting both.
//!
//! The planning half lives here as pure functions over segment metadata so
//! it is testable without touching a disk; [`crate::DurableWarehouse`]
//! executes the plan (it owns the horizon markers that decide coldness) and
//! [`crate::SegmentLog`] performs the crash-safe file replacement.

use sl_stt::Duration;

/// When and what to compact. Carried by
/// [`DurableConfig::compaction`](crate::DurableConfig::compaction);
/// evaluated at every engine monitor tick (like retention eviction) and on
/// explicit `compact_now` calls.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Master switch. Off by default: compaction rewrites files, and a
    /// deployment must opt into that (lint SL092 flags retention-bearing
    /// durable deployments that forget to).
    pub enabled: bool,
    /// Merge only runs of at least this many adjacent same-generation
    /// sealed segments (amortises the rewrite).
    pub min_inputs: usize,
    /// Merge at most this many segments per run (bounds pause time).
    pub max_inputs: usize,
    /// Only segments at or under this size are merge candidates — the
    /// size-tiered knob: each generation's output grows past it and
    /// eventually stops being picked up.
    pub small_bytes: u64,
    /// Age bound of the *cold* tier: compaction permanently drops cold
    /// events whose interval ended before `now - cold_retention`. `None`
    /// keeps cold events forever (and preserves byte-identical queries
    /// across compaction). Distinct from the engine's `retention`, which
    /// decides when events leave the *hot* tier.
    pub cold_retention: Option<Duration>,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            enabled: false,
            min_inputs: 4,
            max_inputs: 16,
            small_bytes: 4 * 1024 * 1024,
            cold_retention: None,
        }
    }
}

impl CompactionPolicy {
    /// The default policy with the master switch on.
    pub fn enabled() -> CompactionPolicy {
        CompactionPolicy {
            enabled: true,
            ..CompactionPolicy::default()
        }
    }

    /// Replace the merge-run bounds.
    pub fn with_inputs(mut self, min: usize, max: usize) -> CompactionPolicy {
        self.min_inputs = min.max(2);
        self.max_inputs = max.max(self.min_inputs);
        self
    }

    /// Replace the size-tier bound.
    pub fn with_small_bytes(mut self, bytes: u64) -> CompactionPolicy {
        self.small_bytes = bytes;
        self
    }

    /// Bound the cold tier's age.
    pub fn with_cold_retention(mut self, window: Duration) -> CompactionPolicy {
        self.cold_retention = Some(window);
        self
    }
}

/// Metadata of one sealed segment, in log order (what planning sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// First covered segment number (the segment's identity and sort key).
    pub first: u32,
    /// Last covered segment number (`== first` for generation 0).
    pub last: u32,
    /// Compaction generation (0 = written by the appender).
    pub generation: u32,
    /// File length in bytes, header included.
    pub bytes: u64,
    /// Frames in the segment.
    pub frames: u32,
}

/// A chosen merge: the covered segment-number range and the output
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeRun {
    /// First covered segment number.
    pub first: u32,
    /// Last covered segment number.
    pub last: u32,
    /// Generation of the output segment (one above the inputs' maximum).
    pub generation: u32,
    /// How many input segments the run merges.
    pub inputs: usize,
}

/// Pick the next merge under `policy`: the earliest run of at least
/// `min_inputs` adjacent sealed segments sharing the lowest qualifying
/// generation, each at or under `small_bytes`. Returns `None` when nothing
/// qualifies (steady state).
pub fn plan(sealed: &[SegmentMeta], policy: &CompactionPolicy) -> Option<MergeRun> {
    let mut gens: Vec<u32> = sealed.iter().map(|m| m.generation).collect();
    gens.sort_unstable();
    gens.dedup();
    for g in gens {
        let mut i = 0;
        while i < sealed.len() {
            let eligible = |m: &SegmentMeta| m.generation == g && m.bytes <= policy.small_bytes;
            if !eligible(&sealed[i]) {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < sealed.len() && j - i < policy.max_inputs && eligible(&sealed[j]) {
                j += 1;
            }
            if j - i >= policy.min_inputs.max(2) {
                return Some(MergeRun {
                    first: sealed[i].first,
                    last: sealed[j - 1].last,
                    generation: g + 1,
                    inputs: j - i,
                });
            }
            i = j;
        }
    }
    None
}

/// The forced plan behind `compact_now`: merge *every* sealed segment into
/// one, regardless of policy thresholds. `None` with fewer than two sealed
/// segments (nothing to merge).
pub fn plan_forced(sealed: &[SegmentMeta]) -> Option<MergeRun> {
    if sealed.len() < 2 {
        return None;
    }
    let max_gen = sealed.iter().map(|m| m.generation).max().unwrap_or(0);
    Some(MergeRun {
        first: sealed[0].first,
        last: sealed[sealed.len() - 1].last,
        generation: max_gen + 1,
        inputs: sealed.len(),
    })
}

/// What one compaction run did (returned by
/// `DurableWarehouse::maybe_compact` and surfaced in the engine monitor's
/// durability section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Input segments merged.
    pub segments_in: usize,
    /// Generation of the output segment.
    pub generation: u32,
    /// On-disk bytes of the inputs before the merge.
    pub bytes_before: u64,
    /// On-disk bytes of the output segment.
    pub bytes_after: u64,
    /// Cold events aged out under `cold_retention`.
    pub events_dropped: u64,
    /// Redundant horizon markers removed.
    pub markers_dropped: u64,
    /// Superseded checkpoints removed.
    pub checkpoints_dropped: u64,
    /// Wall-clock pause, in microseconds.
    pub duration_us: u64,
}

impl CompactionStats {
    /// Bytes the merge gave back to the filesystem.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_after)
    }

    /// Total records of any kind the merge dropped.
    pub fn records_dropped(&self) -> u64 {
        self.events_dropped + self.markers_dropped + self.checkpoints_dropped
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;

    fn meta(first: u32, generation: u32, bytes: u64) -> SegmentMeta {
        SegmentMeta {
            first,
            last: first,
            generation,
            bytes,
            frames: 10,
        }
    }

    #[test]
    fn plans_earliest_qualifying_run() {
        let policy = CompactionPolicy::enabled().with_inputs(3, 8);
        let sealed = vec![
            meta(1, 0, 100),
            meta(2, 0, 100),
            meta(3, 0, 100),
            meta(4, 0, 100),
        ];
        let run = plan(&sealed, &policy).unwrap();
        assert_eq!(
            (run.first, run.last, run.generation, run.inputs),
            (1, 4, 1, 4)
        );
    }

    #[test]
    fn short_runs_and_big_segments_do_not_qualify() {
        let policy = CompactionPolicy::enabled()
            .with_inputs(3, 8)
            .with_small_bytes(500);
        // A big segment splits the run: two short runs remain.
        let sealed = vec![
            meta(1, 0, 100),
            meta(2, 0, 100),
            meta(3, 0, 9_000),
            meta(4, 0, 100),
            meta(5, 0, 100),
        ];
        assert_eq!(plan(&sealed, &policy), None);
    }

    #[test]
    fn lower_generations_are_preferred_and_tiers_stack() {
        let policy = CompactionPolicy::enabled().with_inputs(2, 8);
        // A gen-1 product followed by fresh gen-0 segments: the gen-0 run
        // is merged first (lowest qualifying generation).
        let sealed = vec![
            SegmentMeta {
                first: 1,
                last: 4,
                generation: 1,
                bytes: 400,
                frames: 40,
            },
            meta(5, 0, 100),
            meta(6, 0, 100),
        ];
        let run = plan(&sealed, &policy).unwrap();
        assert_eq!((run.first, run.last, run.generation), (5, 6, 1));
    }

    #[test]
    fn max_inputs_bounds_the_run() {
        let policy = CompactionPolicy::enabled().with_inputs(2, 3);
        let sealed: Vec<_> = (1..=6).map(|n| meta(n, 0, 100)).collect();
        let run = plan(&sealed, &policy).unwrap();
        assert_eq!((run.first, run.last, run.inputs), (1, 3, 3));
    }

    #[test]
    fn forced_plan_merges_everything() {
        let sealed = vec![
            SegmentMeta {
                first: 1,
                last: 3,
                generation: 2,
                bytes: 500,
                frames: 30,
            },
            meta(4, 0, 100),
        ];
        let run = plan_forced(&sealed).unwrap();
        assert_eq!(
            (run.first, run.last, run.generation, run.inputs),
            (1, 4, 3, 2)
        );
        assert_eq!(
            plan_forced(&sealed[..1]),
            None,
            "one segment: nothing to merge"
        );
    }

    #[test]
    fn stats_arithmetic() {
        let s = CompactionStats {
            segments_in: 4,
            generation: 1,
            bytes_before: 1000,
            bytes_after: 700,
            events_dropped: 5,
            markers_dropped: 3,
            checkpoints_dropped: 1,
            duration_us: 42,
        };
        assert_eq!(s.bytes_reclaimed(), 300);
        assert_eq!(s.records_dropped(), 9);
    }
}
