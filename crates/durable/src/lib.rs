//! # sl-durable — crash-safe persistence for StreamLoader
//!
//! The paper's pipelines terminate in the Event Data Warehouse, "a
//! real-time platform that persists processed events" (§4, demo P2). The
//! in-memory [`EventWarehouse`](sl_warehouse::EventWarehouse) reproduces
//! its query model; this crate supplies the missing word — *persists* —
//! with the standard log-structured recipe of durable stream stores:
//!
//! * [`codec`] — a versioned binary codec for STT events, tuples, and
//!   [`OpCheckpoint`](sl_ops::OpCheckpoint) blobs: length-prefixed frames,
//!   CRC-32 checksums, bit-exact float round-trips.
//! * [`SegmentLog`] — an append-only segment log with rotation, a sparse
//!   per-segment time index, a configurable [`FsyncPolicy`]
//!   (every-write / every-N / on-seal), and torn-tail recovery: on reopen,
//!   frames are scanned and checksum-verified, the first corrupt or
//!   incomplete frame truncates the file, and the [`RecoveryReport`]
//!   accounts for every byte cut.
//! * [`DurableWarehouse`] — hot in-memory indexes over the recent tail,
//!   cold sealed segments underneath. `evict_before` *spills* instead of
//!   discarding, and queries merge cold segment scans with the hot index
//!   path (verified against a brute-force reference).
//! * [`compact`] — size-tiered storage maintenance: small sealed segments
//!   merge into generation-N segments (order preserved exactly, so query
//!   results stay byte-identical), redundant horizon markers and
//!   superseded checkpoints drop, and expired cold events age out under
//!   [`CompactionPolicy::cold_retention`](compact::CompactionPolicy).
//! * [`index`] — per-block zone indexes for compacted segments: time
//!   bounds plus a bloom-style [`ThemeFilter`](index::ThemeFilter) over
//!   theme-path prefixes, persisted in checksummed `.szi` sidecars, so
//!   cold queries prune whole blocks and seek instead of scanning. Decoded
//!   blocks of sealed segments are served from a small LRU cache.
//!
//! Engine operator checkpoints ride the same log, so a crashed node's
//! blocking-operator window caches restore from disk through the existing
//! recovery path (`sl-engine`'s `open_durable`).
//!
//! The crate is std-only and never panics on any disk content: damage
//! surfaces as a [`DurableError`] or as truncation in the recovery report.
//!
//! ## Example
//!
//! The codec layer round-trips every record kind bit-exactly:
//!
//! ```
//! use sl_durable::codec::Record;
//! use sl_stt::Timestamp;
//!
//! let horizon = Timestamp::from_secs(3_600);
//! let payload = Record::Horizon(horizon).encode();
//! let decoded = Record::decode(&payload).unwrap();
//! assert!(matches!(decoded, Record::Horizon(t) if t == horizon));
//! ```
#![warn(missing_docs)]

mod cache;
pub mod codec;
pub mod compact;
pub mod error;
pub mod index;
pub mod log;
pub mod tmp;
pub mod warehouse;

pub use codec::{crc32, Record, CODEC_VERSION};
pub use compact::{CompactionPolicy, CompactionStats};
pub use error::DurableError;
pub use index::{Pruner, ThemeFilter};
pub use log::{DurableConfig, FsyncPolicy, LogPos, RecoveryReport, SegmentLog};
pub use tmp::TempDir;
pub use warehouse::DurableWarehouse;
