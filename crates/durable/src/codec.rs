//! The versioned binary codec: every record that reaches a segment file goes
//! through here.
//!
//! Design rules, in order:
//!
//! 1. **Self-checking.** Every frame carries a CRC-32 over its payload, so a
//!    torn write, a bit flip, or a half-written tail is *detected*, never
//!    silently decoded into garbage (recovery truncates at the first bad
//!    frame — see [`crate::SegmentLog`]).
//! 2. **Exact round-trips.** Floats are encoded as raw IEEE-754 bits
//!    (`f64::to_bits`), so even NaN payloads survive a disk round-trip
//!    bit-for-bit; themes round-trip through their canonical string; units
//!    and attribute types through their stable `ALL` declaration order.
//! 3. **Versioned.** [`CODEC_VERSION`] is stamped into every segment header.
//!    A reader that meets a future version refuses the segment instead of
//!    guessing.
//!
//! All integers are little-endian. A frame on disk is
//! `[u32 len][payload: len bytes][u32 crc]` where the CRC covers exactly the
//! payload and the payload's first byte is the [`Record`] kind tag.

use crate::error::DurableError;
use sl_ops::OpCheckpoint;
use sl_stt::{
    AttrType, Event, Field, GeoPoint, Schema, SensorId, SpatialGranule, SttMeta,
    TemporalGranularity, Theme, Timestamp, Tuple, Unit, Value,
};

/// On-disk format version, stamped into every segment header.
pub const CODEC_VERSION: u8 = 1;

/// Hard upper bound on a single frame's payload (16 MiB). A length prefix
/// beyond this is treated as corruption, which keeps recovery from
/// attempting absurd allocations on a damaged length field.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected polynomial 0xEDB88320) — table-driven, built at
// compile time so the hot path is one lookup per byte.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One durable log entry.
#[derive(Debug, Clone)]
pub enum Record {
    /// A warehouse event (the LOAD output of the ETL pipeline).
    Event(Event),
    /// A blocking operator's window cache, snapshotted after processing.
    Checkpoint {
        /// Deployment (dataflow) name.
        deployment: String,
        /// Service (operator) name within the deployment.
        service: String,
        /// The snapshotted cache.
        state: OpCheckpoint,
    },
    /// A retention horizon marker: every event *before this marker in the
    /// log* whose interval ends at or before the horizon has been evicted
    /// from the hot store and lives only in cold segments.
    Horizon(Timestamp),
}

const KIND_EVENT: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;
const KIND_HORIZON: u8 = 3;

impl Record {
    /// Encode into a frame payload (kind tag + body). The caller wraps this
    /// in the `[len][payload][crc]` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(64);
        match self {
            Record::Event(e) => {
                w.push(KIND_EVENT);
                put_event(&mut w, e);
            }
            Record::Checkpoint {
                deployment,
                service,
                state,
            } => {
                w.push(KIND_CHECKPOINT);
                put_str(&mut w, deployment);
                put_str(&mut w, service);
                put_checkpoint(&mut w, state);
            }
            Record::Horizon(t) => {
                w.push(KIND_HORIZON);
                put_i64(&mut w, t.as_millis());
            }
        }
        w
    }

    /// Decode a frame payload. The CRC has already been verified by the
    /// caller; errors here mean the payload grammar itself is damaged (or
    /// written by a future codec).
    pub fn decode(payload: &[u8]) -> Result<Record, DurableError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8("record kind")? {
            KIND_EVENT => Record::Event(get_event(&mut r)?),
            KIND_CHECKPOINT => Record::Checkpoint {
                deployment: r.str("deployment")?,
                service: r.str("service")?,
                state: get_checkpoint(&mut r)?,
            },
            KIND_HORIZON => Record::Horizon(Timestamp::from_millis(r.i64("horizon")?)),
            other => {
                return Err(DurableError::corrupt(format!(
                    "unknown record kind {other}"
                )))
            }
        };
        r.finish()?;
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u8(w: &mut Vec<u8>, v: u8) {
    w.push(v);
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(w: &mut Vec<u8>, v: i32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(w: &mut Vec<u8>, v: i64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(w: &mut Vec<u8>, v: f64) {
    // Raw bits: NaN payloads and signed zeros survive exactly.
    put_u64(w, v.to_bits());
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u32(w, s.len() as u32);
    w.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Checked reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a frame payload. Every read names what it
/// expected, so corruption reports say *which* field was damaged.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DurableError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(DurableError::corrupt(format!(
                "short payload reading {what} ({n} bytes at offset {} of {})",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, DurableError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, DurableError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DurableError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i32(&mut self, what: &str) -> Result<i32, DurableError> {
        let b = self.take(4, what)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self, what: &str) -> Result<i64, DurableError> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self, what: &str) -> Result<f64, DurableError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String, DurableError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DurableError::corrupt(format!("{what}: invalid utf-8")))
    }

    /// A bounded element count: a damaged count field must not drive a huge
    /// allocation. Each element of any collection we encode occupies at
    /// least one byte, so a count beyond the remaining bytes is corruption.
    fn count(&mut self, what: &str) -> Result<usize, DurableError> {
        let n = self.u32(what)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(DurableError::corrupt(format!(
                "{what}: implausible count {n} with {} bytes left",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), DurableError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DurableError::corrupt(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// STT type codecs
// ---------------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_TIME: u8 = 5;
const VAL_GEO: u8 = 6;

fn put_value(w: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(w, VAL_NULL),
        Value::Bool(b) => {
            put_u8(w, VAL_BOOL);
            put_u8(w, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(w, VAL_INT);
            put_i64(w, *i);
        }
        Value::Float(f) => {
            put_u8(w, VAL_FLOAT);
            put_f64(w, *f);
        }
        Value::Str(s) => {
            put_u8(w, VAL_STR);
            put_str(w, s);
        }
        Value::Time(t) => {
            put_u8(w, VAL_TIME);
            put_i64(w, t.as_millis());
        }
        Value::Geo(p) => {
            put_u8(w, VAL_GEO);
            put_f64(w, p.lat);
            put_f64(w, p.lon);
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value, DurableError> {
    Ok(match r.u8("value tag")? {
        VAL_NULL => Value::Null,
        // Strict on canonical encodings: a non-0/1 bool is corruption, so a
        // damaged byte can never silently decode back to a valid value.
        VAL_BOOL => match r.u8("bool")? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            other => return Err(DurableError::corrupt(format!("bad bool byte {other}"))),
        },
        VAL_INT => Value::Int(r.i64("int")?),
        VAL_FLOAT => Value::Float(r.f64("float")?),
        VAL_STR => Value::Str(r.str("str")?),
        VAL_TIME => Value::Time(Timestamp::from_millis(r.i64("time")?)),
        VAL_GEO => Value::Geo(GeoPoint::new_unchecked(r.f64("lat")?, r.f64("lon")?)),
        other => return Err(DurableError::corrupt(format!("unknown value tag {other}"))),
    })
}

fn put_tgran(w: &mut Vec<u8>, g: TemporalGranularity) {
    if let TemporalGranularity::Custom(ms) = g {
        put_u8(w, TemporalGranularity::NAMED.len() as u8);
        put_u64(w, ms);
    } else {
        // Position in the stable NAMED order is the tag.
        let tag = TemporalGranularity::NAMED
            .iter()
            .position(|n| *n == g)
            .unwrap_or(0) as u8;
        put_u8(w, tag);
    }
}

fn get_tgran(r: &mut Reader<'_>) -> Result<TemporalGranularity, DurableError> {
    let tag = r.u8("temporal granularity")? as usize;
    if tag < TemporalGranularity::NAMED.len() {
        Ok(TemporalGranularity::NAMED[tag])
    } else if tag == TemporalGranularity::NAMED.len() {
        Ok(TemporalGranularity::Custom(r.u64("custom granularity")?))
    } else {
        Err(DurableError::corrupt(format!(
            "unknown temporal granularity tag {tag}"
        )))
    }
}

const SG_POINT: u8 = 0;
const SG_CELL: u8 = 1;
const SG_WORLD: u8 = 2;

fn put_sgranule(w: &mut Vec<u8>, g: &SpatialGranule) {
    match g {
        SpatialGranule::Point { lat_e7, lon_e7 } => {
            put_u8(w, SG_POINT);
            put_i64(w, *lat_e7);
            put_i64(w, *lon_e7);
        }
        SpatialGranule::Cell { level, ix, iy } => {
            put_u8(w, SG_CELL);
            put_u8(w, *level);
            put_i32(w, *ix);
            put_i32(w, *iy);
        }
        SpatialGranule::World => put_u8(w, SG_WORLD),
    }
}

fn get_sgranule(r: &mut Reader<'_>) -> Result<SpatialGranule, DurableError> {
    Ok(match r.u8("spatial granule tag")? {
        SG_POINT => SpatialGranule::Point {
            lat_e7: r.i64("lat_e7")?,
            lon_e7: r.i64("lon_e7")?,
        },
        SG_CELL => SpatialGranule::Cell {
            level: r.u8("cell level")?,
            ix: r.i32("cell ix")?,
            iy: r.i32("cell iy")?,
        },
        SG_WORLD => SpatialGranule::World,
        other => {
            return Err(DurableError::corrupt(format!(
                "unknown spatial granule tag {other}"
            )))
        }
    })
}

fn put_theme(w: &mut Vec<u8>, t: &Theme) {
    put_str(w, t.as_str());
}

fn get_theme(r: &mut Reader<'_>) -> Result<Theme, DurableError> {
    let s = r.str("theme")?;
    Theme::new(&s).map_err(|e| DurableError::corrupt(format!("theme `{s}`: {e}")))
}

fn put_event(w: &mut Vec<u8>, e: &Event) {
    put_value(w, &e.value);
    put_tgran(w, e.tgran);
    put_i64(w, e.tgranule);
    put_sgranule(w, &e.sgranule);
    put_theme(w, &e.theme);
}

fn get_event(r: &mut Reader<'_>) -> Result<Event, DurableError> {
    let value = get_value(r)?;
    let tgran = get_tgran(r)?;
    let tgranule = r.i64("tgranule")?;
    let sgranule = get_sgranule(r)?;
    let theme = get_theme(r)?;
    Ok(Event::new(value, tgran, tgranule, sgranule, theme))
}

fn put_field(w: &mut Vec<u8>, f: &Field) {
    put_str(w, &f.name);
    let ty_tag = AttrType::ALL.iter().position(|t| *t == f.ty).unwrap_or(0) as u8;
    put_u8(w, ty_tag);
    // 0 = no unit; otherwise 1 + position in the stable Unit::ALL order.
    let unit_tag = f
        .unit
        .and_then(|u| Unit::ALL.iter().position(|c| *c == u))
        .map_or(0, |i| i as u8 + 1);
    put_u8(w, unit_tag);
}

fn get_field(r: &mut Reader<'_>) -> Result<Field, DurableError> {
    let name = r.str("field name")?;
    let ty_tag = r.u8("attr type")? as usize;
    let ty = *AttrType::ALL
        .get(ty_tag)
        .ok_or_else(|| DurableError::corrupt(format!("unknown attr type tag {ty_tag}")))?;
    let unit_tag = r.u8("unit")? as usize;
    if unit_tag == 0 {
        Ok(Field::new(&name, ty))
    } else {
        let unit = *Unit::ALL
            .get(unit_tag - 1)
            .ok_or_else(|| DurableError::corrupt(format!("unknown unit tag {unit_tag}")))?;
        Ok(Field::with_unit(&name, ty, unit))
    }
}

fn put_tuple(w: &mut Vec<u8>, t: &Tuple) {
    let fields = t.schema().fields();
    put_u32(w, fields.len() as u32);
    for f in fields {
        put_field(w, f);
    }
    for v in t.values() {
        put_value(w, v);
    }
    // Meta: timestamp, optional location, theme, sensor, trace.
    put_i64(w, t.meta.timestamp.as_millis());
    match &t.meta.location {
        Some(p) => {
            put_u8(w, 1);
            put_f64(w, p.lat);
            put_f64(w, p.lon);
        }
        None => put_u8(w, 0),
    }
    put_theme(w, &t.meta.theme);
    put_u64(w, t.meta.sensor.0);
    put_u64(w, t.meta.trace);
}

fn get_tuple(r: &mut Reader<'_>) -> Result<Tuple, DurableError> {
    let n = r.count("field count")?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        fields.push(get_field(r)?);
    }
    let schema = Schema::new(fields)
        .map_err(|e| DurableError::corrupt(format!("schema: {e}")))?
        .into_ref();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(r)?);
    }
    let timestamp = Timestamp::from_millis(r.i64("meta timestamp")?);
    let location = match r.u8("location flag")? {
        0 => None,
        1 => Some(GeoPoint::new_unchecked(
            r.f64("meta lat")?,
            r.f64("meta lon")?,
        )),
        other => return Err(DurableError::corrupt(format!("bad location flag {other}"))),
    };
    let theme = get_theme(r)?;
    let sensor = SensorId(r.u64("sensor id")?);
    let trace = r.u64("trace id")?;
    let meta = SttMeta {
        timestamp,
        location,
        theme,
        sensor,
        trace,
    };
    Tuple::new(schema, values, meta).map_err(|e| DurableError::corrupt(format!("tuple: {e}")))
}

fn put_checkpoint(w: &mut Vec<u8>, c: &OpCheckpoint) {
    put_u32(w, c.tuples.len() as u32);
    for (port, tuple) in &c.tuples {
        put_u32(w, *port as u32);
        put_tuple(w, tuple);
    }
}

fn get_checkpoint(r: &mut Reader<'_>) -> Result<OpCheckpoint, DurableError> {
    let n = r.count("checkpoint tuple count")?;
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let port = r.u32("checkpoint port")? as usize;
        tuples.push((port, get_tuple(r)?));
    }
    Ok(OpCheckpoint { tuples })
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Wrap an encoded payload into an on-disk frame: `[len][payload][crc]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Outcome of pulling one frame off a byte slice during recovery.
pub enum FrameRead {
    /// A complete, checksum-verified payload and the bytes it consumed.
    Ok {
        /// The verified payload (kind byte + body).
        payload: Vec<u8>,
        /// Total frame size on disk, including length prefix and CRC.
        consumed: usize,
    },
    /// The tail is incomplete or fails its checksum: everything from this
    /// offset on must be truncated.
    Torn {
        /// Human-readable reason, for the recovery report.
        why: String,
    },
    /// The slice is exactly empty — a clean end of segment.
    End,
}

/// Pull one frame from `buf`. Never panics on any input.
pub fn read_frame(buf: &[u8]) -> FrameRead {
    if buf.is_empty() {
        return FrameRead::End;
    }
    if buf.len() < 4 {
        return FrameRead::Torn {
            why: format!("{}-byte tail shorter than a length prefix", buf.len()),
        };
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 || len > MAX_FRAME_BYTES {
        return FrameRead::Torn {
            why: format!("implausible frame length {len}"),
        };
    }
    let need = 4 + len as usize + 4;
    if buf.len() < need {
        return FrameRead::Torn {
            why: format!("incomplete frame: need {need} bytes, have {}", buf.len()),
        };
    }
    let payload = &buf[4..4 + len as usize];
    let stored = u32::from_le_bytes([
        buf[4 + len as usize],
        buf[5 + len as usize],
        buf[6 + len as usize],
        buf[7 + len as usize],
    ]);
    let actual = crc32(payload);
    if stored != actual {
        return FrameRead::Torn {
            why: format!("checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"),
        };
    }
    FrameRead::Ok {
        payload: payload.to_vec(),
        consumed: need,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_event() -> Event {
        Event::new(
            Value::Float(26.5),
            TemporalGranularity::Minute,
            24_444_444,
            SpatialGranule::Cell {
                level: 8,
                ix: 224,
                iy: 88,
            },
            Theme::new("weather/temperature").unwrap(),
        )
    }

    #[test]
    fn event_round_trip() {
        let rec = Record::Event(sample_event());
        let bytes = rec.encode();
        match Record::decode(&bytes).unwrap() {
            Record::Event(e) => assert_eq!(e, sample_event()),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn nan_float_round_trips_bit_exactly() {
        let mut e = sample_event();
        e.value = Value::Float(f64::NAN);
        let bytes = Record::Event(e).encode();
        // NaN != NaN, so compare the re-encoding instead.
        let decoded = Record::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn horizon_round_trip() {
        let rec = Record::Horizon(Timestamp::from_millis(-42));
        match Record::decode(&rec.encode()).unwrap() {
            Record::Horizon(t) => assert_eq!(t.as_millis(), -42),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let schema = Schema::new(vec![
            Field::with_unit("temperature", AttrType::Float, Unit::Celsius),
            Field::new("station", AttrType::Str),
        ])
        .unwrap()
        .into_ref();
        let tuple = Tuple::new(
            schema,
            vec![Value::Float(25.5), Value::Str("osaka".into())],
            SttMeta::new(
                Timestamp::from_secs(12),
                GeoPoint::new_unchecked(34.7, 135.5),
                Theme::new("weather/temperature").unwrap(),
                SensorId(7),
            ),
        )
        .unwrap();
        let rec = Record::Checkpoint {
            deployment: "agg".into(),
            service: "mean".into(),
            state: OpCheckpoint {
                tuples: vec![(0, tuple.clone()), (1, tuple)],
            },
        };
        let bytes = rec.encode();
        match Record::decode(&bytes).unwrap() {
            Record::Checkpoint {
                deployment,
                service,
                state,
            } => {
                assert_eq!(deployment, "agg");
                assert_eq!(service, "mean");
                assert_eq!(state.tuples.len(), 2);
                assert_eq!(state.tuples[0].1.values()[1], Value::Str("osaka".into()));
                assert_eq!(
                    state.tuples[0].1.schema().fields()[0].unit,
                    Some(Unit::Celsius)
                );
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Determinism: re-encoding the decode equals the original bytes.
        assert_eq!(Record::decode(&bytes).unwrap().encode(), bytes);
    }

    #[test]
    fn frame_round_trip_and_torn_detection() {
        let payload = Record::Event(sample_event()).encode();
        let framed = frame(&payload);
        match read_frame(&framed) {
            FrameRead::Ok {
                payload: p,
                consumed,
            } => {
                assert_eq!(p, payload);
                assert_eq!(consumed, framed.len());
            }
            _ => panic!("complete frame must read"),
        }
        // Every strict prefix is torn (or a clean end at zero).
        for cut in 1..framed.len() {
            match read_frame(&framed[..cut]) {
                FrameRead::Torn { .. } => {}
                FrameRead::Ok { .. } => panic!("prefix of {cut} bytes decoded as complete"),
                FrameRead::End => panic!("non-empty prefix reported End"),
            }
        }
        assert!(matches!(read_frame(&[]), FrameRead::End));
        // A flipped payload byte fails the checksum.
        let mut flipped = framed.clone();
        flipped[6] ^= 0xFF;
        assert!(matches!(read_frame(&flipped), FrameRead::Torn { .. }));
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        // Unknown kind, unknown tags, short bodies, trailing bytes.
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[99]).is_err());
        assert!(Record::decode(&[KIND_HORIZON, 1, 2]).is_err());
        let mut ok = Record::Horizon(Timestamp::from_millis(5)).encode();
        ok.push(0);
        assert!(Record::decode(&ok).is_err());
    }
}
