//! Zone indexes for compacted segments: per-granule key summaries that let
//! cold queries skip whole index blocks without decoding a single frame.
//!
//! Every segment already carries a sparse *time* index (min/max event time
//! per block of [`DurableConfig::index_every`] frames, rebuilt from the
//! recovery scan — see [`crate::SegmentLog`]). Compaction adds the second
//! dimension: a [`ThemeFilter`] per block, a small bloom-style summary over
//! every *ancestor prefix* of every stored event's theme path. A query
//! constrained to theme `t` matches an event `e` iff `t` is a prefix of
//! `e.theme` — so if `t` is not in the block's filter, no event in the
//! block can match and the whole block is skipped (sound: ancestors are
//! inserted exhaustively, so the filter has no false negatives; false
//! positives only cost a decode).
//!
//! Filters exist only for generation ≥ 1 segments. Generation-0 segments
//! are written on the hot append path, where per-event hashing would tax
//! ingest latency for segments that are usually transient; compaction
//! computes the summaries once, off the critical path, when a segment
//! becomes long-lived. The summaries are persisted next to the compacted
//! segment in a checksummed `.szi` sidecar ([`encode_sidecar`] /
//! [`decode_sidecar`]) so the on-disk artifact is self-describing; the
//! recovery scan rebuilds the same data and self-heals a missing or stale
//! sidecar.
//!
//! Spatial constraints are deliberately *not* summarised: a hashed granule
//! set cannot answer "does any stored extent intersect this box", so area
//! pruning would be unsound. Time and theme carry the selectivity in the
//! paper's workloads.
//!
//! [`DurableConfig::index_every`]: crate::DurableConfig::index_every

use crate::codec::crc32;
use crate::error::DurableError;
use sl_stt::{Theme, TimeInterval};

/// Magic prefix of a zone-index sidecar file.
const SIDECAR_MAGIC: &[u8; 4] = b"SLZI";
/// Sidecar format version.
const SIDECAR_VERSION: u8 = 1;

/// Bits in a [`ThemeFilter`] (4 × 64).
const FILTER_BITS: u64 = 256;
/// Hash functions per inserted key.
const FILTER_HASHES: u32 = 2;

/// A 256-bit bloom-style summary of the theme-path prefixes stored in one
/// index block. No false negatives: [`ThemeFilter::insert`] adds every
/// ancestor of the event's theme, so any subtree query that could match an
/// event in the block tests positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThemeFilter {
    bits: [u64; 4],
}

impl ThemeFilter {
    /// The empty filter (matches nothing).
    pub fn new() -> ThemeFilter {
        ThemeFilter::default()
    }

    /// Record one event's theme: the theme itself and every ancestor
    /// prefix, so subtree queries at any depth can be tested.
    pub fn insert(&mut self, theme: &Theme) {
        let path = theme.as_str();
        for (i, b) in path.bytes().enumerate() {
            if b == b'/' {
                self.insert_key(&path[..i]);
            }
        }
        self.insert_key(path);
    }

    /// May any recorded event's theme be `query` or a descendant of it?
    /// `false` is definitive; `true` may be a false positive.
    pub fn may_contain(&self, query: &Theme) -> bool {
        let h = fnv1a(query.as_str().as_bytes());
        (0..FILTER_HASHES).all(|k| {
            let bit = bit_of(h, k);
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// True when nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// The raw 256 bits, little-end first (sidecar encoding).
    pub fn to_words(self) -> [u64; 4] {
        self.bits
    }

    /// Rebuild from [`ThemeFilter::to_words`].
    pub fn from_words(bits: [u64; 4]) -> ThemeFilter {
        ThemeFilter { bits }
    }

    fn insert_key(&mut self, key: &str) {
        let h = fnv1a(key.as_bytes());
        for k in 0..FILTER_HASHES {
            let bit = bit_of(h, k);
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }
}

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `k`-th derived bit position of hash `h` (double hashing).
fn bit_of(h: u64, k: u32) -> u64 {
    let h2 = (h >> 32) | 1; // odd, so successive probes differ
    h.wrapping_add(u64::from(k).wrapping_mul(h2)) % FILTER_BITS
}

/// The block-skipping constraints of one cold query: the subset of an
/// `EventQuery` a zone index can act on. Only *event* records matter to a
/// pruned scan — blocks holding no events are always skippable.
#[derive(Debug, Clone, Default)]
pub struct Pruner {
    /// Skip blocks whose event time bounds cannot overlap this range.
    pub time: Option<TimeInterval>,
    /// Skip blocks whose theme filter (generation ≥ 1 only) excludes this
    /// subtree.
    pub theme: Option<Theme>,
}

impl Pruner {
    /// A pruner that skips nothing beyond event-free blocks.
    pub fn keep_all() -> Pruner {
        Pruner::default()
    }
}

/// One entry of a serialised zone index: the per-block facts the sidecar
/// persists (mirrors the in-memory index block of the segment log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneEntry {
    /// Byte offset of the block's first frame.
    pub offset: u64,
    /// Frames in the block.
    pub frames: u32,
    /// Minimum event-interval start (ms); `i64::MAX` when no events.
    pub min_start: i64,
    /// Maximum event-interval end (ms); `i64::MIN` when no events.
    pub max_end: i64,
    /// Theme-prefix summary of the block's events.
    pub filter: ThemeFilter,
}

/// A decoded `.szi` sidecar: the zone index of one compacted segment plus
/// enough shape (frame count, file length) to detect staleness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sidecar {
    /// Total frames in the indexed segment.
    pub frames: u32,
    /// Total bytes of the indexed segment file (header included).
    pub bytes: u64,
    /// One entry per index block, in file order.
    pub entries: Vec<ZoneEntry>,
}

/// Serialise a sidecar: magic, version, shape, entries, trailing CRC-32
/// over everything before it.
pub fn encode_sidecar(sidecar: &Sidecar) -> Vec<u8> {
    let mut w = Vec::with_capacity(32 + sidecar.entries.len() * 48);
    w.extend_from_slice(SIDECAR_MAGIC);
    w.push(SIDECAR_VERSION);
    w.extend_from_slice(&sidecar.frames.to_le_bytes());
    w.extend_from_slice(&sidecar.bytes.to_le_bytes());
    w.extend_from_slice(&(sidecar.entries.len() as u32).to_le_bytes());
    for e in &sidecar.entries {
        w.extend_from_slice(&e.offset.to_le_bytes());
        w.extend_from_slice(&e.frames.to_le_bytes());
        w.extend_from_slice(&e.min_start.to_le_bytes());
        w.extend_from_slice(&e.max_end.to_le_bytes());
        for word in e.filter.to_words() {
            w.extend_from_slice(&word.to_le_bytes());
        }
    }
    let crc = crc32(&w);
    w.extend_from_slice(&crc.to_le_bytes());
    w
}

/// Decode and verify a sidecar produced by [`encode_sidecar`].
pub fn decode_sidecar(bytes: &[u8]) -> Result<Sidecar, DurableError> {
    let corrupt = |what: &str| DurableError::Corrupt(format!("zone-index sidecar: {what}"));
    if bytes.len() < 4 + 1 + 4 + 8 + 4 + 4 {
        return Err(corrupt("truncated"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != stored {
        return Err(corrupt("bad checksum"));
    }
    if &body[..4] != SIDECAR_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if body[4] != SIDECAR_VERSION {
        return Err(corrupt("unknown version"));
    }
    let mut at = 5usize;
    let frames = u32::from_le_bytes(take::<4>(body, &mut at)?);
    let total_bytes = u64::from_le_bytes(take::<8>(body, &mut at)?);
    let count = u32::from_le_bytes(take::<4>(body, &mut at)?) as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let offset = u64::from_le_bytes(take::<8>(body, &mut at)?);
        let block_frames = u32::from_le_bytes(take::<4>(body, &mut at)?);
        let min_start = i64::from_le_bytes(take::<8>(body, &mut at)?);
        let max_end = i64::from_le_bytes(take::<8>(body, &mut at)?);
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = u64::from_le_bytes(take::<8>(body, &mut at)?);
        }
        entries.push(ZoneEntry {
            offset,
            frames: block_frames,
            min_start,
            max_end,
            filter: ThemeFilter::from_words(words),
        });
    }
    if at != body.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Sidecar {
        frames,
        bytes: total_bytes,
        entries,
    })
}

/// Read the next `N` bytes of `body` as a fixed array, advancing `at`.
fn take<const N: usize>(body: &[u8], at: &mut usize) -> Result<[u8; N], DurableError> {
    let slice = body
        .get(*at..*at + N)
        .ok_or_else(|| DurableError::Corrupt("zone-index sidecar: truncated".into()))?;
    *at += N;
    let mut arr = [0u8; N];
    arr.copy_from_slice(slice);
    Ok(arr)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;

    fn theme(path: &str) -> Theme {
        Theme::new(path).unwrap()
    }

    #[test]
    fn filter_has_no_false_negatives_for_ancestors() {
        let mut f = ThemeFilter::new();
        f.insert(&theme("weather/rain/intensity"));
        // Every ancestor of an inserted theme must test positive: a query
        // at any of these depths can match the event.
        assert!(f.may_contain(&theme("weather")));
        assert!(f.may_contain(&theme("weather/rain")));
        assert!(f.may_contain(&theme("weather/rain/intensity")));
    }

    #[test]
    fn filter_excludes_unrelated_themes() {
        let mut f = ThemeFilter::new();
        for t in ["weather/temperature", "weather/rain"] {
            f.insert(&theme(t));
        }
        // Small filter, tiny insert set: unrelated keys should miss. (Not
        // guaranteed per-key — bloom false positives exist — but these
        // specific keys miss, and a regression to always-true would fail.)
        let miss = ["social/tweet", "traffic/flow", "air/pm25", "water/level"]
            .iter()
            .filter(|t| !f.may_contain(&theme(t)))
            .count();
        assert!(
            miss >= 3,
            "filter prunes unrelated themes ({miss}/4 missed)"
        );
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = ThemeFilter::new();
        assert!(f.is_empty());
        assert!(!f.may_contain(&theme("weather")));
    }

    #[test]
    fn sidecar_round_trip() {
        let mut filter = ThemeFilter::new();
        filter.insert(&theme("weather/rain"));
        let sidecar = Sidecar {
            frames: 130,
            bytes: 9000,
            entries: vec![
                ZoneEntry {
                    offset: 8,
                    frames: 64,
                    min_start: 1000,
                    max_end: 2000,
                    filter,
                },
                ZoneEntry {
                    offset: 4000,
                    frames: 66,
                    min_start: i64::MAX,
                    max_end: i64::MIN,
                    filter: ThemeFilter::new(),
                },
            ],
        };
        let bytes = encode_sidecar(&sidecar);
        assert_eq!(decode_sidecar(&bytes).unwrap(), sidecar);
    }

    #[test]
    fn sidecar_rejects_damage() {
        let sidecar = Sidecar {
            frames: 1,
            bytes: 100,
            entries: Vec::new(),
        };
        let good = encode_sidecar(&sidecar);
        let mut bad = good.clone();
        bad[6] ^= 0x01;
        assert!(decode_sidecar(&bad).is_err(), "bit flip detected");
        assert!(
            decode_sidecar(&good[..good.len() - 1]).is_err(),
            "truncation"
        );
        assert!(decode_sidecar(b"").is_err());
    }
}
