//! A minimal self-cleaning temporary directory.
//!
//! The workspace builds offline (no `tempfile` crate), and the crash tests,
//! benches, and examples all need throwaway log directories that never leak
//! into CI — `scripts/check.sh` asserts that no `sl-durable-*` directory
//! survives a test run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, io, process};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `$TMPDIR/sl-durable-<tag>-<pid>-<n>`, fresh and empty.
    pub fn new(tag: &str) -> io::Result<TempDir> {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = env::temp_dir().join(format!("sl-durable-{tag}-{}-{n}", process::id()));
        if path.exists() {
            fs::remove_dir_all(&path)?;
        }
        fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort: a failed cleanup is caught by the check.sh gate, not
        // by panicking in a destructor.
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("unit").unwrap();
        let b = TempDir::new("unit").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        fs::write(kept.join("x"), b"y").unwrap();
        drop(a);
        assert!(!kept.exists(), "drop removes the tree");
        assert!(b.path().is_dir());
    }
}
