//! A small LRU cache of decoded index blocks, fronting the cold-segment
//! read path.
//!
//! Cold queries re-read the same sealed segments over and over; decoding a
//! frame (checksum, grammar, string allocation) costs far more than cloning
//! the already-decoded records. The cache maps one *index block* of a
//! sealed segment to its decoded records. Keys carry the segment's
//! generation, so a compaction — which replaces input segments with a new
//! generation under new keys — never serves stale data: entries for the
//! deleted inputs simply age out.
//!
//! Only sealed segments are cached. The active segment grows under the
//! writer, so its last block is a moving target; it is also the hot tier's
//! territory — cold queries rarely touch it.
//!
//! Eviction is least-recently-used via a monotonic touch tick; with the
//! default capacity of 64 blocks the linear eviction scan is noise next to
//! one avoided frame decode.

use crate::codec::Record;
use std::collections::HashMap;

/// Identity of one cached block. Segment numbers are never reused and the
/// generation changes on every rewrite, so a key is forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BlockKey {
    /// First covered segment number (the segment's identity).
    pub segment: u32,
    /// Compaction generation of the file the block was read from.
    pub generation: u32,
    /// Byte offset of the block's first frame.
    pub offset: u64,
}

struct CacheEntry {
    touched: u64,
    /// The block's records with their frame index within the segment.
    records: Vec<(u32, Record)>,
}

/// The LRU block cache. Capacity 0 disables caching entirely.
pub(crate) struct BlockCache {
    capacity: usize,
    tick: u64,
    map: HashMap<BlockKey, CacheEntry>,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    pub fn new(capacity: usize) -> BlockCache {
        BlockCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look a block up, refreshing its recency. Counts a hit or miss.
    pub fn get(&mut self, key: BlockKey) -> Option<&[(u32, Record)]> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.touched = self.tick;
                self.hits += 1;
                Some(&entry.records)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly decoded block, evicting the least recently used
    /// entry when full.
    pub fn put(&mut self, key: BlockKey, records: Vec<(u32, Record)>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(
            key,
            CacheEntry {
                touched: self.tick,
                records,
            },
        );
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit rate in percent (0 when never consulted).
    pub fn hit_rate_pct(&self) -> i64 {
        let total = self.hits + self.misses;
        (self.hits * 100).checked_div(total).unwrap_or(0) as i64
    }

    /// Blocks currently held.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely

    use super::*;
    use sl_stt::Timestamp;

    fn key(segment: u32, offset: u64) -> BlockKey {
        BlockKey {
            segment,
            generation: 1,
            offset,
        }
    }

    fn block(n: i64) -> Vec<(u32, Record)> {
        vec![(0, Record::Horizon(Timestamp::from_millis(n)))]
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = BlockCache::new(4);
        assert!(c.get(key(1, 8)).is_none());
        c.put(key(1, 8), block(1));
        assert!(c.get(key(1, 8)).is_some());
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.hit_rate_pct(), 50);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = BlockCache::new(2);
        c.put(key(1, 0), block(1));
        c.put(key(2, 0), block(2));
        assert!(c.get(key(1, 0)).is_some()); // 1 is now fresher than 2
        c.put(key(3, 0), block(3)); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get(key(1, 0)).is_some());
        assert!(c.get(key(2, 0)).is_none());
        assert!(c.get(key(3, 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = BlockCache::new(0);
        c.put(key(1, 0), block(1));
        assert!(c.get(key(1, 0)).is_none());
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.hit_rate_pct(), 0);
    }
}
