//! Property tests for the binary codec: every record round-trips
//! bit-for-bit over arbitrary `Value`s and space/time/theme granules
//! (NaN floats included — byte comparison sidesteps `NaN != NaN`), and
//! decode never panics on arbitrary byte soup.

#![allow(clippy::disallowed_methods)] // tests may panic freely

use proptest::prelude::*;
use sl_durable::Record;
use sl_ops::OpCheckpoint;
use sl_stt::{
    AttrType, Event, Field, GeoPoint, Schema, SensorId, SpatialGranule, SttMeta,
    TemporalGranularity, Theme, Timestamp, Tuple, Unit, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(-0.0)),
        "[a-z]{0,12}".prop_map(Value::Str),
        any::<i64>().prop_map(|ms| Value::Time(Timestamp::from_millis(ms))),
        (-90.0f64..90.0, -180.0f64..180.0)
            .prop_map(|(lat, lon)| Value::Geo(GeoPoint::new_unchecked(lat, lon))),
    ]
}

fn arb_tgran() -> impl Strategy<Value = TemporalGranularity> {
    prop_oneof![
        Just(TemporalGranularity::Millisecond),
        Just(TemporalGranularity::Second),
        Just(TemporalGranularity::Minute),
        Just(TemporalGranularity::Hour),
        Just(TemporalGranularity::Day),
        Just(TemporalGranularity::Week),
        Just(TemporalGranularity::Month),
        Just(TemporalGranularity::Year),
        (1u64..10_000_000).prop_map(TemporalGranularity::Custom),
    ]
}

fn arb_sgranule() -> impl Strategy<Value = SpatialGranule> {
    prop_oneof![
        (
            -900_000_000i64..900_000_000,
            -1_800_000_000i64..1_800_000_000
        )
            .prop_map(|(lat_e7, lon_e7)| SpatialGranule::Point { lat_e7, lon_e7 }),
        (0u8..=20, -100_000i32..100_000, -100_000i32..100_000)
            .prop_map(|(level, ix, iy)| SpatialGranule::Cell { level, ix, iy }),
        Just(SpatialGranule::World),
    ]
}

fn arb_theme() -> impl Strategy<Value = Theme> {
    ("[a-z]{1,6}", proptest::option::of("[a-z]{1,6}")).prop_map(|(root, child)| {
        let theme = Theme::new(&root).expect("lowercase segment is valid");
        match child {
            Some(c) => theme.child(&c).expect("lowercase segment is valid"),
            None => theme,
        }
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        arb_value(),
        arb_tgran(),
        any::<i64>(),
        arb_sgranule(),
        arb_theme(),
    )
        .prop_map(|(v, tg, tgranule, sg, theme)| Event::new(v, tg, tgranule, sg, theme))
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (
        proptest::collection::vec(
            (0usize..AttrType::ALL.len(), 0usize..=Unit::ALL.len()),
            1..5,
        ),
        any::<i64>(),
        proptest::option::of((-90.0f64..90.0, -180.0f64..180.0)),
        arb_theme(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(field_specs, ts, loc, theme, sensor, trace)| {
            let mut fields = Vec::new();
            let mut values = Vec::new();
            for (i, (ty_i, unit_i)) in field_specs.iter().enumerate() {
                let name = format!("f{i}");
                let ty = AttrType::ALL[*ty_i];
                fields.push(match unit_i.checked_sub(1) {
                    Some(u) => Field::with_unit(&name, ty, Unit::ALL[u]),
                    None => Field::new(&name, ty),
                });
                // Any value is storable regardless of declared type; use a
                // deterministic mix so every variant gets exercised.
                values.push(match ty {
                    AttrType::Bool => Value::Bool(i % 2 == 0),
                    AttrType::Int => Value::Int(i as i64 - 2),
                    AttrType::Float => Value::Float(i as f64 * 0.5),
                    AttrType::Str => Value::Str(format!("s{i}")),
                    AttrType::Time => Value::Time(Timestamp::from_millis(ts ^ i as i64)),
                    AttrType::Geo => Value::Geo(GeoPoint::new_unchecked(1.0, 2.0)),
                });
            }
            let schema = Schema::new(fields)
                .expect("generated names are unique")
                .into_ref();
            let meta = SttMeta {
                timestamp: Timestamp::from_millis(ts),
                location: loc.map(|(lat, lon)| GeoPoint::new_unchecked(lat, lon)),
                theme,
                sensor: SensorId(sensor),
                trace,
            };
            Tuple::new(schema, values, meta).expect("arity matches")
        })
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        arb_event().prop_map(Record::Event),
        (
            "[a-z]{1,8}",
            "[a-z]{1,8}",
            proptest::collection::vec((0usize..4, arb_tuple()), 0..4),
        )
            .prop_map(|(deployment, service, tuples)| Record::Checkpoint {
                deployment,
                service,
                state: OpCheckpoint { tuples },
            }),
        any::<i64>().prop_map(|ms| Record::Horizon(Timestamp::from_millis(ms))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on bytes, for every record
    /// kind over arbitrary values and granules. Byte equality is stronger
    /// than structural equality and handles NaN.
    #[test]
    fn record_round_trips_bit_exactly(rec in arb_record()) {
        let bytes = rec.encode();
        let decoded = Record::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Decoding arbitrary bytes never panics — it either yields a record or
    /// a corruption error.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Record::decode(&bytes);
    }

    /// A single flipped byte anywhere in an encoded record is either caught
    /// as a decode error or yields a record that re-encodes differently —
    /// never a silent identical decode. (The CRC layer above this catches
    /// the flip in all cases; this checks the payload grammar is at least
    /// never *lying*.)
    #[test]
    fn flipped_byte_never_decodes_identically(rec in arb_record(), pos in any::<u64>()) {
        let bytes = rec.encode();
        let i = (pos % bytes.len() as u64) as usize;
        let mut flipped = bytes.clone();
        flipped[i] ^= 0xFF;
        if let Ok(decoded) = Record::decode(&flipped) {
            prop_assert!(
                decoded.encode() != bytes,
                "flip at byte {} decoded back to the original",
                i
            );
        }
    }
}
