//! Compaction correctness properties — the contract the storage
//! maintenance layer must keep:
//!
//! * **Equivalence** (property): over *any* interleaving of inserts,
//!   evictions, and forced compactions, every query answer from the
//!   compacting log is exactly — order and all — the answer from a log
//!   that never compacts, before and after a crash/reopen of both.
//! * **Torn tail over generations** (exhaustive): truncating the active
//!   segment at *every* byte of a multi-generation layout (compacted
//!   gen-N segments below a gen-0 tail) recovers exactly a prefix of the
//!   record sequence, accounts every loss, and leaves an appendable log.
//! * **Mid-compaction crash states**: for every crash point of the
//!   replace protocol (products still `.tmp`; products renamed with
//!   inputs not yet deleted; a torn product next to surviving inputs),
//!   reopening loses nothing that was ever acknowledged.

#![allow(clippy::disallowed_methods)] // tests may panic freely

use proptest::prelude::*;
use sl_durable::{
    CompactionPolicy, DurableConfig, DurableWarehouse, FsyncPolicy, Record, SegmentLog, TempDir,
};
use sl_stt::{
    Event, GeoPoint, SpatialGranularity, TemporalGranularity, Theme, TimeInterval, Timestamp, Value,
};
use sl_warehouse::EventQuery;
use std::fs;
use std::path::Path;

fn event(minute: i64, theme: &str) -> Event {
    let g = SpatialGranularity::grid(8).granule_of(&GeoPoint::new_unchecked(34.7, 135.5));
    Event::new(
        Value::Int(minute),
        TemporalGranularity::Minute,
        minute,
        g,
        Theme::new(theme).unwrap(),
    )
}

fn minutes(m: i64) -> Timestamp {
    Timestamp::from_millis(m * 60_000)
}

fn small_config(dir: &Path) -> DurableConfig {
    DurableConfig::at(dir)
        .with_fsync(FsyncPolicy::Always)
        .with_segment_max_bytes(512)
        .with_compaction(CompactionPolicy::enabled())
}

/// The query mix every equivalence check runs: unbounded, time-windowed,
/// theme-rooted, and combined.
fn queries() -> Vec<EventQuery> {
    vec![
        EventQuery::all(),
        EventQuery::all().in_time(TimeInterval::new(minutes(40), minutes(160))),
        EventQuery::all().with_theme(Theme::new("weather").unwrap()),
        EventQuery::all()
            .with_theme(Theme::new("social/tweet").unwrap())
            .in_time(TimeInterval::new(minutes(0), minutes(200))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of inserts, evictions, and forced compactions:
    /// the compacting warehouse answers every query *exactly* like the
    /// never-compacting one — same events, same order — before and after
    /// both are crashed and reopened.
    #[test]
    fn compaction_never_changes_an_answer(
        ops in proptest::collection::vec(
            prop_oneof![
                // Insert at some minute under one of three themes.
                (0i64..240, prop_oneof![
                    Just("weather/temperature"),
                    Just("weather/rain"),
                    Just("social/tweet"),
                ]).prop_map(|(m, t)| (0u8, m, t)),
                // Evict everything older than some minute.
                (0i64..240).prop_map(|m| (1u8, m, "")),
                // Force a full compaction (stacks generations when repeated).
                Just((2u8, 0i64, "")),
            ],
            1..48,
        ),
    ) {
        let dir_c = TempDir::new("cprop-compact").unwrap();
        let dir_p = TempDir::new("cprop-plain").unwrap();
        let mut compacting = DurableWarehouse::open(small_config(dir_c.path())).unwrap();
        let mut plain = DurableWarehouse::open(small_config(dir_p.path())).unwrap();

        let mut compactions = 0u32;
        for (op, m, theme) in &ops {
            match op {
                0 => {
                    compacting.insert(event(*m, theme)).unwrap();
                    plain.insert(event(*m, theme)).unwrap();
                }
                1 => {
                    let a = compacting.evict_before(minutes(*m)).unwrap();
                    let b = plain.evict_before(minutes(*m)).unwrap();
                    prop_assert_eq!(a, b);
                }
                _ => {
                    // No cold_retention on the policy: a forced merge may
                    // drop markers and checkpoints but never an event.
                    if let Some(stats) = compacting.compact_now(minutes(10_000)).unwrap() {
                        prop_assert_eq!(stats.events_dropped, 0);
                        compactions += 1;
                    }
                }
            }
        }
        let _ = compactions;

        for q in &queries() {
            prop_assert_eq!(
                compacting.query(q).unwrap(),
                plain.query(q).unwrap(),
                "pre-reopen answers diverged on {:?}", q
            );
        }

        // Crash both (no graceful shutdown) and reopen: still identical,
        // and each log still agrees with its own brute-force scan.
        drop(compacting);
        drop(plain);
        let mut compacting = DurableWarehouse::open(small_config(dir_c.path())).unwrap();
        let mut plain = DurableWarehouse::open(small_config(dir_p.path())).unwrap();
        prop_assert!(!compacting.recovery_report().lossy());
        prop_assert!(!plain.recovery_report().lossy());
        for q in &queries() {
            prop_assert_eq!(
                compacting.query(q).unwrap(),
                plain.query(q).unwrap(),
                "post-reopen answers diverged on {:?}", q
            );
            let sort = |mut v: Vec<Event>| {
                v.sort_by_key(|e| (e.tgranule, e.theme.to_string(), e.to_string()));
                v
            };
            prop_assert_eq!(
                sort(compacting.query(q).unwrap()),
                sort(compacting.query_scan(q).unwrap()),
                "compacted log disagrees with its own scan on {:?}", q
            );
        }
    }
}

/// Build a multi-generation layout: two batches of inserts each evicted
/// cold, a forced compaction between them (so a gen-1 segment sits under
/// later gen-0 segments), and a second compaction stacking gen 2.
fn build_multi_generation(dir: &Path) -> DurableWarehouse {
    let mut w = DurableWarehouse::open(small_config(dir)).unwrap();
    for m in 0..24 {
        w.insert(event(m, "weather/temperature")).unwrap();
    }
    w.evict_before(minutes(24)).unwrap();
    w.compact_now(minutes(10_000))
        .unwrap()
        .expect("first merge");
    for m in 24..48 {
        w.insert(event(m, "social/tweet")).unwrap();
    }
    w.evict_before(minutes(48)).unwrap();
    w.compact_now(minutes(10_000))
        .unwrap()
        .expect("second merge");
    w
}

#[test]
fn torn_tail_truncates_exactly_at_every_byte_across_generations() {
    let source = TempDir::new("tornml-src").unwrap();
    {
        let mut w = build_multi_generation(source.path());
        // A few live appends into the gen-0 tail above the compacted
        // generations — the bytes the exhaustive truncation will tear.
        for m in 48..60 {
            w.insert(event(m, "weather/rain")).unwrap();
        }
        w.sync().unwrap();
    }

    // The active segment is the plain-form file with the highest number.
    let active = fs::read_dir(source.path())
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().into_string().unwrap()))
        .filter(|n| n.ends_with(".slg") && !n.contains("-g"))
        .max()
        .expect("an active gen-0 segment");
    let tail_bytes = fs::read(source.path().join(&active)).unwrap();

    // The untruncated record sequence is the oracle: every cut must
    // recover an exact prefix of it.
    let (_, full, full_report) = SegmentLog::open(DurableConfig::at(source.path())).unwrap();
    assert!(!full_report.lossy());
    let base = full.len() - count_tail_frames(&full, &active);

    let mut prev_len = 0usize;
    let mut clean_cuts = 0usize;
    for cut in 0..=tail_bytes.len() {
        let case = TempDir::new("tornml-case").unwrap();
        copy_dir(source.path(), case.path());
        fs::write(case.path().join(&active), &tail_bytes[..cut]).unwrap();

        let (_, records, report) = SegmentLog::open(DurableConfig::at(case.path())).unwrap();

        // Exact prefix: nothing reordered, nothing resurrected past the
        // cut, and the compacted generations below are untouched.
        assert!(records.len() >= base, "cut {cut} lost compacted records");
        assert_eq!(
            records.iter().map(|(_, r)| r.encode()).collect::<Vec<_>>(),
            full[..records.len()]
                .iter()
                .map(|(_, r)| r.encode())
                .collect::<Vec<_>>(),
            "cut at byte {cut} is not a prefix of the full log"
        );
        assert!(
            records.len() >= prev_len,
            "cut {cut}: recovery went backwards"
        );
        prev_len = records.len();
        if !report.lossy() {
            clean_cuts += 1;
        }

        // The healed log accepts appends again.
        let (mut log, _, _) = SegmentLog::open(DurableConfig::at(case.path())).unwrap();
        log.append(&Record::Horizon(minutes(999))).unwrap();
    }
    // Non-lossy cuts are exactly the well-formed prefixes: the empty
    // file, the bare header, and each frame boundary of the tail.
    assert_eq!(
        clean_cuts,
        2 + (full.len() - base),
        "loss accounting drifted"
    );
}

fn count_tail_frames(records: &[(sl_durable::LogPos, Record)], active: &str) -> usize {
    // `seg-NNNNNN.slg` — the tail's segment number.
    let number: u32 = active[4..10].parse().unwrap();
    records
        .iter()
        .filter(|(pos, _)| pos.segment == number)
        .count()
}

fn copy_dir(from: &Path, to: &Path) {
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// Every crash point of the segment-replacement protocol, reconstructed
/// by file manipulation. The oracle is the pre-compaction snapshot: no
/// state may answer differently than the log the writer had acknowledged.
#[test]
fn mid_compaction_crash_loses_nothing_acknowledged() {
    // Snapshot the log right before compaction runs.
    let pre = TempDir::new("crash-pre").unwrap();
    {
        let mut w = DurableWarehouse::open(small_config(pre.path())).unwrap();
        for m in 0..30 {
            w.insert(event(
                m,
                if m % 2 == 0 {
                    "weather/rain"
                } else {
                    "social/tweet"
                },
            ))
            .unwrap();
        }
        w.evict_before(minutes(30)).unwrap();
        w.sync().unwrap();
    }
    // And right after: the product generation the rename published.
    let post = TempDir::new("crash-post").unwrap();
    copy_dir(pre.path(), post.path());
    {
        let mut w = DurableWarehouse::open(small_config(post.path())).unwrap();
        w.compact_now(minutes(10_000)).unwrap().expect("merged");
        w.sync().unwrap();
    }
    let product: Vec<String> = fs::read_dir(post.path())
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().into_string().unwrap()))
        .filter(|n| n.contains("-g"))
        .collect();
    assert!(
        !product.is_empty(),
        "compaction produced no generation files"
    );

    let oracle: Vec<Vec<Event>> = {
        let mut w = DurableWarehouse::open(small_config(pre.path())).unwrap();
        queries().iter().map(|q| w.query(q).unwrap()).collect()
    };
    let check = |dir: &Path, label: &str| {
        let mut w = DurableWarehouse::open(small_config(dir)).unwrap();
        for (q, want) in queries().iter().zip(&oracle) {
            assert_eq!(
                &w.query(q).unwrap(),
                want,
                "{label}: answer changed for {q:?}"
            );
        }
    };

    // Crash point 1: killed before the renames — products exist only as
    // `.tmp` files. Recovery must sweep them and serve from the inputs.
    let state = TempDir::new("crash-tmp").unwrap();
    copy_dir(pre.path(), state.path());
    for name in &product {
        fs::copy(
            post.path().join(name),
            state.path().join(format!("{name}.tmp")),
        )
        .unwrap();
    }
    check(state.path(), "products still .tmp");

    // Crash point 2: killed between the renames and the input deletion —
    // product and inputs coexist. The verified product must win and the
    // superseded inputs must be swept.
    let state = TempDir::new("crash-overlap").unwrap();
    copy_dir(pre.path(), state.path());
    for name in &product {
        fs::copy(post.path().join(name), state.path().join(name)).unwrap();
    }
    check(state.path(), "product and inputs coexist");
    let leftovers = fs::read_dir(state.path())
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().into_string().unwrap()))
        .filter(|n| n.ends_with(".slg"))
        .count();
    let post_segments = fs::read_dir(post.path())
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().into_string().unwrap()))
        .filter(|n| n.ends_with(".slg"))
        .count();
    assert_eq!(leftovers, post_segments, "superseded inputs were not swept");

    // Crash point 3: the product's rename landed torn (corrupt payload)
    // while the inputs still exist — the inputs must win.
    let state = TempDir::new("crash-torn").unwrap();
    copy_dir(pre.path(), state.path());
    for name in &product {
        fs::copy(post.path().join(name), state.path().join(name)).unwrap();
    }
    if let Some(seg) = product.iter().find(|n| n.ends_with(".slg")) {
        let mut bytes = fs::read(state.path().join(seg)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(state.path().join(seg), &bytes).unwrap();
    }
    check(state.path(), "torn product next to inputs");
}
