//! Crash-recovery properties.
//!
//! * **Truncate-at-every-byte** (exhaustive): for *every* prefix of a
//!   segment file, reopening never panics, recovers exactly the records
//!   whose frames fit the prefix, and never resurrects anything past the
//!   cut.
//! * **Arbitrary bit flips** (property): a flipped byte anywhere in a
//!   segment is caught by the CRC layer; recovery yields exactly the frames
//!   before the damage.
//! * **Tiered queries match the reference** (property): after any
//!   interleaving of inserts and evictions — and a crash/reopen — the
//!   merged cold+hot query equals the brute-force log scan, and the hot
//!   tier mirrors a plain in-memory warehouse fed the same operations.

#![allow(clippy::disallowed_methods)] // tests may panic freely

use proptest::prelude::*;
use sl_durable::{DurableConfig, DurableWarehouse, FsyncPolicy, Record, SegmentLog, TempDir};
use sl_stt::{
    Event, GeoPoint, SpatialGranularity, TemporalGranularity, Theme, TimeInterval, Timestamp, Value,
};
use sl_warehouse::{EventQuery, EventWarehouse};
use std::fs;

fn event(minute: i64, theme: &str) -> Event {
    let g = SpatialGranularity::grid(8).granule_of(&GeoPoint::new_unchecked(34.7, 135.5));
    Event::new(
        Value::Int(minute),
        TemporalGranularity::Minute,
        minute,
        g,
        Theme::new(theme).unwrap(),
    )
}

fn minutes(m: i64) -> Timestamp {
    Timestamp::from_millis(m * 60_000)
}

/// Write `n` records into a fresh single-segment log and return the raw
/// segment bytes plus the byte offset at which each frame *ends*.
fn build_segment(dir: &TempDir, n: i64) -> (Vec<u8>, Vec<usize>) {
    let config = DurableConfig::at(dir.path()).with_fsync(FsyncPolicy::Always);
    let (mut log, _, _) = SegmentLog::open(config).unwrap();
    let mut ends = Vec::new();
    for m in 0..n {
        // Mix record kinds so truncation is tested across all of them.
        let rec = match m % 3 {
            0 | 1 => Record::Event(event(m, "weather/temperature")),
            _ => Record::Horizon(minutes(m)),
        };
        log.append(&rec).unwrap();
        ends.push(log.disk_bytes() as usize);
    }
    drop(log);
    let bytes = fs::read(dir.path().join("seg-000001.slg")).unwrap();
    assert_eq!(bytes.len(), *ends.last().unwrap());
    (bytes, ends)
}

#[test]
fn truncate_at_every_byte_recovers_exact_prefix() {
    let source = TempDir::new("trunc-src").unwrap();
    let (bytes, frame_ends) = build_segment(&source, 18);

    for cut in 0..=bytes.len() {
        let dir = TempDir::new("trunc-case").unwrap();
        fs::write(dir.path().join("seg-000001.slg"), &bytes[..cut]).unwrap();

        let (_, records, report) = SegmentLog::open(DurableConfig::at(dir.path())).unwrap();

        // Exactly the frames whose bytes fit the prefix survive — never one
        // more (no resurrection past the cut), never one fewer.
        let expected = frame_ends.iter().filter(|&&end| end <= cut).count();
        assert_eq!(
            records.len(),
            expected,
            "cut at byte {cut}: recovered {} of {} frames",
            records.len(),
            frame_ends.len()
        );
        // Losses are accounted, not silent — except at exact frame
        // boundaries (including the bare header and the empty file), where
        // the prefix *is* a well-formed shorter log and truncation is
        // undetectable by construction.
        let at_boundary = cut == 0 || cut == 8 || frame_ends.contains(&cut);
        assert_eq!(report.lossy(), !at_boundary, "cut at byte {cut}");

        // The recovered log accepts appends again (the truncation left a
        // well-formed file).
        let (mut log, _, _) = SegmentLog::open(DurableConfig::at(dir.path())).unwrap();
        log.append(&Record::Horizon(minutes(999))).unwrap();
        let (_, after, _) = SegmentLog::open(DurableConfig::at(dir.path())).unwrap();
        assert_eq!(after.len(), expected + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A flipped byte anywhere in the segment: recovery never panics and
    /// recovers exactly the frames before the damaged one.
    #[test]
    fn bit_flip_recovers_frames_before_damage(
        n in 4i64..24,
        flip_at in any::<u64>(),
    ) {
        let source = TempDir::new("flip-src").unwrap();
        let (bytes, frame_ends) = build_segment(&source, n);

        // Flip one byte past the header (header damage resets the whole
        // segment; that path is covered by its own unit test).
        let header = 8usize;
        let i = header + (flip_at % (bytes.len() - header) as u64) as usize;
        let mut damaged = bytes.clone();
        damaged[i] ^= 0xFF;

        let dir = TempDir::new("flip-case").unwrap();
        fs::write(dir.path().join("seg-000001.slg"), &damaged).unwrap();
        let (_, records, report) = SegmentLog::open(DurableConfig::at(dir.path())).unwrap();

        // The first frame whose byte range contains `i` is damaged; every
        // frame before it must survive, nothing at or after it may.
        let intact = frame_ends.iter().filter(|&&end| end <= i).count();
        prop_assert_eq!(records.len(), intact);
        prop_assert!(report.lossy());
        prop_assert!(report.truncated_bytes > 0);
    }

    /// Merged cold+hot queries equal the brute-force reference after any
    /// interleaving of inserts and evictions, across a crash/reopen, and
    /// the hot tier stays identical to an in-memory warehouse fed the same
    /// operations.
    #[test]
    fn tiered_query_matches_reference(
        ops in proptest::collection::vec(
            (0i64..240, any::<bool>(), prop_oneof![
                Just("weather/temperature"),
                Just("weather/rain"),
                Just("social/tweet"),
            ]),
            1..60,
        ),
        q_start in 0i64..240,
        q_len in 1i64..120,
    ) {
        let dir = TempDir::new("tier-prop").unwrap();
        let config = DurableConfig::at(dir.path()).with_segment_max_bytes(512);
        let mut dw = DurableWarehouse::open(config.clone()).unwrap();
        let mut mirror = EventWarehouse::with_defaults();

        for (m, evict, theme) in &ops {
            if *evict {
                let h = minutes(*m);
                let spilled = dw.evict_before(h).unwrap();
                let discarded = mirror.evict_before(h);
                prop_assert_eq!(spilled, discarded);
            } else {
                dw.insert(event(*m, theme)).unwrap();
                mirror.insert(event(*m, theme));
            }
        }

        let queries = [
            EventQuery::all(),
            EventQuery::all().in_time(TimeInterval::new(minutes(q_start), minutes(q_start + q_len))),
            EventQuery::all().with_theme(Theme::new("weather").unwrap()),
        ];

        let render = |mut v: Vec<Event>| -> Vec<String> {
            v.sort_by_key(|e| (e.tgranule, e.theme.to_string()));
            v.into_iter().map(|e| e.to_string()).collect()
        };

        for q in &queries {
            let merged = render(dw.query(q).unwrap());
            let reference = render(dw.query_scan(q).unwrap());
            prop_assert_eq!(&merged, &reference, "pre-reopen disagreement on {:?}", q);
        }
        // The hot tier is exactly the in-memory warehouse.
        prop_assert_eq!(
            render(dw.hot().iter().cloned().collect()),
            render(mirror.iter().cloned().collect())
        );

        // Crash (drop without ceremony) and reopen: same answers.
        drop(dw);
        let mut dw = DurableWarehouse::open(config).unwrap();
        for q in &queries {
            let merged = render(dw.query(q).unwrap());
            let reference = render(dw.query_scan(q).unwrap());
            prop_assert_eq!(&merged, &reference, "post-reopen disagreement on {:?}", q);
        }
        prop_assert_eq!(
            render(dw.hot().iter().cloned().collect()),
            render(mirror.iter().cloned().collect())
        );
    }
}
