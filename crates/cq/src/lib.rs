//! # sl-cq — continuous queries over the Event Data Warehouse
//!
//! The paper's architecture (§2, Figure 1) ends at two sinks: the Event
//! Data Warehouse and a visualisation tool. One-shot `EventQuery` /
//! `CubeQuery` scans serve both, but every dashboard refresh re-pays the
//! scan. This crate adds the serving layer those sinks imply at scale:
//! clients register *standing* queries once and the ingest path keeps the
//! answers current —
//!
//! * **subscriptions** ([`CqHub::subscribe`]): a standing [`EventQuery`]
//!   whose matches are pushed, per-event, into a bounded [`PushQueue`]
//!   drained by [`CqHub::poll`];
//! * **materialized views** ([`CqHub::register_view`]): a standing
//!   `CubeQuery` whose roll-up cells are maintained incrementally
//!   ([`MaterializedView`]) — O(affected cells) per tuple, retraction on
//!   eviction, byte-identical to a brute-force rescan at all times;
//! * **catch-up** for late joiners and lagged subscribers: snapshot +
//!   sequence-numbered deltas (see [`hub`] module docs for the protocol).
//!
//! The crate is std-only and engine-agnostic: it depends on `sl-stt`,
//! `sl-warehouse` (for the shared cube fold primitives that make
//! byte-identity possible) and `sl-obs`. The engine wires [`CqHub`] into
//! its warehouse ingest/evict path; nothing here spawns threads or holds
//! references into the store.
//!
//! ```
//! use sl_cq::{CqHub, QueuePolicy};
//! use sl_warehouse::EventQuery;
//! use sl_stt::Theme;
//!
//! let mut hub = CqHub::new();
//! let sub = hub.subscribe(
//!     "weather-watch",
//!     EventQuery::all().with_theme(Theme::new("weather").unwrap()),
//!     Some(1024),
//!     QueuePolicy::ShedOldest,
//! );
//! // ...the ingest path calls hub.on_events(&events) per batch...
//! let poll = hub.poll(sub).unwrap();
//! assert!(poll.deltas.is_empty()); // nothing ingested yet
//! ```

#![warn(missing_docs)]

pub mod hub;
pub mod queue;
pub mod view;

pub use hub::{CqHub, CqPoll, SubscriberId, SubscriptionStat, ViewId, ViewStat};
pub use queue::{PushOutcome, PushQueue, QueuePolicy};
pub use view::MaterializedView;
