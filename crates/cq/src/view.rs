//! Incrementally maintained roll-up views.
//!
//! A [`MaterializedView`] keeps a `CubeQuery`'s answer current without ever
//! rescanning the warehouse: each ingested event updates exactly the one
//! cell it lands in (O(affected cells) per tuple), and eviction retracts
//! the contributions of evicted events. The correctness contract — checked
//! by the engine's equivalence suite — is that [`MaterializedView::cells`]
//! is **byte-identical** to `EventWarehouse::rollup_scan` over the hot
//! store at every point in time.
//!
//! Floating-point addition is not associative, so "byte-identical" forces
//! two design points:
//!
//! * **Appends are exact as-is.** The warehouse appends, so a new event is
//!   the *last* contribution in its cell's storage-order fold; extending
//!   the running [`CellAcc`] reproduces the rescan's fold bit for bit.
//! * **Retraction refolds.** Eviction removes arbitrary (oldest)
//!   contributions from the middle of a fold; no algebraic "subtract"
//!   gives back the bits a rescan of the survivors would produce. Each
//!   cell therefore keeps its contribution list `(interval-end, value)` in
//!   storage order and refolds the survivors on retraction.

use sl_stt::{Event, SpatialGranule, Theme, Timestamp};
use sl_warehouse::{cell_slot, CellAcc, CellKey, CubeCell, CubeQuery};
use std::collections::BTreeMap;

/// Per-cell state: display coordinates, the storage-order contribution
/// list (for retraction refolds), and the running accumulator.
#[derive(Debug, Clone)]
struct CellState {
    sgranule: SpatialGranule,
    theme: Theme,
    /// `(event interval end in epoch millis, numeric value)` per absorbed
    /// event, in storage order. Eviction removes entries with
    /// `end <= horizon` — the same predicate the warehouse applies.
    contribs: Vec<(i64, Option<f64>)>,
    acc: CellAcc,
}

/// A standing `CubeQuery` whose answer is maintained event by event.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    query: CubeQuery,
    cells: BTreeMap<CellKey, CellState>,
    contributions: u64,
    retractions: u64,
}

impl MaterializedView {
    /// An empty view over `query`. Seed it with the warehouse's current
    /// contents (in storage order) via [`MaterializedView::absorb`] before
    /// serving reads.
    pub fn new(query: CubeQuery) -> MaterializedView {
        MaterializedView {
            query,
            cells: BTreeMap::new(),
            contributions: 0,
            retractions: 0,
        }
    }

    /// The standing query.
    pub fn query(&self) -> &CubeQuery {
        &self.query
    }

    /// Fold one ingested event into its cell. Returns `true` if the event
    /// contributed (matched the pre-selection and coarsened cleanly).
    pub fn absorb(&mut self, event: &Event) -> bool {
        let Some(slot) = cell_slot(event, &self.query) else {
            return false;
        };
        let end = event.time_interval().end.as_millis();
        let cell = self.cells.entry(slot.key).or_insert_with(|| CellState {
            sgranule: slot.sgranule,
            theme: slot.theme,
            contribs: Vec::new(),
            acc: CellAcc::new(),
        });
        cell.contribs.push((end, slot.numeric));
        cell.acc.absorb(slot.numeric);
        self.contributions += 1;
        true
    }

    /// Retract the contributions of events the warehouse evicts at
    /// `horizon` (those whose interval ends at or before it). Touched cells
    /// refold their survivors; emptied cells disappear. Returns the number
    /// of contributions retracted.
    pub fn retract_before(&mut self, horizon: Timestamp) -> usize {
        let h = horizon.as_millis();
        let mut retracted = 0;
        self.cells.retain(|_, cell| {
            let before = cell.contribs.len();
            cell.contribs.retain(|&(end, _)| end > h);
            let gone = before - cell.contribs.len();
            if gone > 0 {
                retracted += gone;
                cell.acc = CellAcc::new();
                for &(_, v) in &cell.contribs {
                    cell.acc.absorb(v);
                }
            }
            !cell.contribs.is_empty()
        });
        self.retractions += retracted as u64;
        retracted
    }

    /// The current answer, identical to what a fresh
    /// `EventWarehouse::rollup_scan` of the hot store would return.
    pub fn cells(&self) -> Vec<CubeCell> {
        self.cells
            .iter()
            .map(|((tgranule, _, _), cell)| {
                cell.acc
                    .to_cell(*tgranule, cell.sgranule, cell.theme.clone())
            })
            .collect()
    }

    /// Live (non-empty) cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Contributions currently held across all cells.
    pub fn contribution_count(&self) -> usize {
        self.cells.values().map(|c| c.contribs.len()).sum()
    }

    /// Total contributions ever absorbed.
    pub fn contributions(&self) -> u64 {
        self.contributions
    }

    /// Total contributions ever retracted by eviction.
    pub fn retractions(&self) -> u64 {
        self.retractions
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use sl_stt::{GeoPoint, SpatialGranularity, TemporalGranularity, Theme, Timestamp, Value};
    use sl_warehouse::{EventQuery, EventWarehouse};

    fn event(min: i64, theme: &str, v: f64) -> Event {
        Event::new(
            Value::Float(v),
            TemporalGranularity::Minute,
            TemporalGranularity::Minute.granule_of(Timestamp::from_secs(min * 60)),
            SpatialGranularity::grid(8).granule_of(&GeoPoint::new_unchecked(34.7, 135.5)),
            Theme::new(theme).unwrap(),
        )
    }

    fn hourly() -> CubeQuery {
        CubeQuery {
            select: EventQuery::all(),
            tgran: TemporalGranularity::Hour,
            sgran: SpatialGranularity::World,
            theme_depth: 1,
        }
    }

    /// The contract, in miniature: absorb == rescan at every step.
    #[test]
    fn view_tracks_rollup_scan_under_ingest() {
        let q = hourly();
        let mut view = MaterializedView::new(q.clone());
        let mut w = EventWarehouse::with_defaults();
        for m in 0..180 {
            let e = event(
                m,
                if m % 3 == 0 {
                    "social/tweet"
                } else {
                    "weather/temp"
                },
                0.1 * m as f64,
            );
            w.insert(e.clone());
            view.absorb(&e);
            assert_eq!(view.cells(), w.rollup_scan(&q), "diverged at minute {m}");
        }
        assert_eq!(view.contributions(), 180);
    }

    #[test]
    fn retraction_matches_evicted_warehouse() {
        let q = hourly();
        let mut view = MaterializedView::new(q.clone());
        let mut w = EventWarehouse::with_defaults();
        for m in 0..240 {
            let e = event(m, "weather/temp", (m % 17) as f64 * 0.3);
            w.insert(e.clone());
            view.absorb(&e);
        }
        for horizon_min in [60, 150, 240] {
            let horizon = Timestamp::from_secs(horizon_min * 60);
            w.evict_before(horizon);
            view.retract_before(horizon);
            assert_eq!(
                view.cells(),
                w.rollup_scan(&q),
                "diverged at horizon {horizon_min}"
            );
        }
        assert!(view.cells().is_empty());
        assert_eq!(view.retractions(), 240);
        assert_eq!(view.cell_count(), 0);
    }

    #[test]
    fn filtered_events_do_not_contribute() {
        let q = CubeQuery {
            select: EventQuery::all().with_theme(Theme::new("weather").unwrap()),
            ..hourly()
        };
        let mut view = MaterializedView::new(q);
        assert!(view.absorb(&event(0, "weather/temp", 1.0)));
        assert!(!view.absorb(&event(0, "social/tweet", 1.0)));
        assert_eq!(view.cells().len(), 1);
        assert_eq!(view.cells()[0].count, 1);
    }

    /// Refolding (not subtracting) keeps sums bit-exact: values chosen so
    /// that `(a + b + c) - a != b + c` in f64 arithmetic.
    #[test]
    fn retraction_refolds_rather_than_subtracts() {
        let q = hourly();
        let mut view = MaterializedView::new(q.clone());
        let mut w = EventWarehouse::with_defaults();
        let vals = [1e16, 1.0, -1e16, 3.3, 0.1];
        for (i, v) in vals.iter().enumerate() {
            let e = event(i as i64, "weather/temp", *v);
            w.insert(e.clone());
            view.absorb(&e);
        }
        let horizon = Timestamp::from_secs(2 * 60); // evicts the first two
        w.evict_before(horizon);
        view.retract_before(horizon);
        let scan = w.rollup_scan(&q);
        let cells = view.cells();
        assert_eq!(cells, scan);
        assert_eq!(cells[0].sum.to_bits(), scan[0].sum.to_bits());
    }
}
