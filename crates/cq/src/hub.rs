//! The standing-query hub.
//!
//! A [`CqHub`] owns every registration: event subscriptions (predicate +
//! per-subscriber [`PushQueue`]) and materialized roll-up views. The
//! ingest path calls [`CqHub::on_events`] with each batch of warehouse-
//! bound events and [`CqHub::on_evict`] at eviction, and the hub does all
//! delta evaluation inline — no rescans, no background threads. With
//! nothing registered the hub is [idle](CqHub::is_idle) and the ingest
//! path skips it entirely, so an unused hub costs nothing.
//!
//! ## Catch-up protocol
//!
//! Deltas carry a monotonic sequence number ([`CqHub::seq`], one per
//! ingested event). A late joiner (or a subscriber whose `Block`-policy
//! queue overflowed and went *lagged*) re-synchronises in three steps: the
//! caller takes a snapshot of the warehouse under the subscription's
//! query, calls [`CqHub::mark_caught_up`] (which clears the lag flag and
//! any superseded backlog), and resumes polling. Every delta polled
//! afterwards has a sequence number greater than the snapshot's, so the
//! client can splice streams without duplicates or gaps.

use crate::queue::{PushOutcome, PushQueue, QueuePolicy};
use crate::view::MaterializedView;
use sl_obs::{Metrics, MetricsSnapshot, Stopwatch};
use sl_stt::{Event, Timestamp};
use sl_warehouse::{CubeCell, CubeQuery, EventQuery};
use std::collections::BTreeMap;

/// Handle to an event subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriberId(pub u64);

/// Handle to a materialized view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId(pub u64);

impl std::fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::fmt::Display for ViewId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

struct Subscription {
    name: String,
    query: EventQuery,
    queue: PushQueue<Event>,
}

struct ViewReg {
    name: String,
    view: MaterializedView,
}

/// One poll's worth of deltas for a subscriber.
#[derive(Debug, Clone)]
pub struct CqPoll {
    /// Matched events since the last poll, oldest first.
    pub deltas: Vec<Event>,
    /// Deltas this subscriber has lost to shedding or lag, cumulative.
    pub dropped: u64,
    /// True if the subscriber fell behind under [`QueuePolicy::Block`] and
    /// must catch up from a snapshot before deltas resume.
    pub lagged: bool,
    /// Hub sequence number at poll time (one per ingested event).
    pub seq: u64,
}

/// Liveness summary of one subscription (for monitors and lint).
#[derive(Debug, Clone)]
pub struct SubscriptionStat {
    /// The subscription's handle.
    pub id: SubscriberId,
    /// Client-supplied name.
    pub name: String,
    /// Deltas currently queued.
    pub depth: usize,
    /// Deltas drained by the client so far.
    pub delivered: u64,
    /// Deltas lost to shedding or lag so far.
    pub dropped: u64,
    /// True if awaiting snapshot catch-up.
    pub lagged: bool,
    /// True if the queue has a capacity bound.
    pub bounded: bool,
}

/// Liveness summary of one materialized view (for monitors and lint).
#[derive(Debug, Clone)]
pub struct ViewStat {
    /// The view's handle.
    pub id: ViewId,
    /// Client-supplied name.
    pub name: String,
    /// Live (non-empty) cells.
    pub cells: usize,
    /// Contributions currently held.
    pub contributions: usize,
    /// True if the standing query bounds its time range.
    pub time_bounded: bool,
}

/// Registry and delta-evaluation engine for continuous queries.
#[derive(Default)]
pub struct CqHub {
    subs: BTreeMap<u64, Subscription>,
    views: BTreeMap<u64, ViewReg>,
    next_sub: u64,
    next_view: u64,
    seq: u64,
    metrics: Metrics,
}

impl CqHub {
    /// An empty hub.
    pub fn new() -> CqHub {
        CqHub::default()
    }

    /// True if nothing is registered — the ingest path's fast-path guard.
    pub fn is_idle(&self) -> bool {
        self.subs.is_empty() && self.views.is_empty()
    }

    /// Events ingested past the hub so far (the delta sequence number).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Register a standing [`EventQuery`]. Matched events are pushed to a
    /// queue of `capacity` deltas (`None` = unbounded) governed by
    /// `policy` on overflow.
    pub fn subscribe(
        &mut self,
        name: &str,
        query: EventQuery,
        capacity: Option<usize>,
        policy: QueuePolicy,
    ) -> SubscriberId {
        self.next_sub += 1;
        let id = self.next_sub;
        self.subs.insert(
            id,
            Subscription {
                name: name.to_string(),
                query,
                queue: PushQueue::new(capacity, policy, id.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            },
        );
        self.metrics
            .gauge("subscribers")
            .set(self.subs.len() as i64);
        SubscriberId(id)
    }

    /// Remove a subscription. Returns `false` if the handle is unknown.
    pub fn unsubscribe(&mut self, id: SubscriberId) -> bool {
        let removed = self.subs.remove(&id.0).is_some();
        if removed {
            self.metrics
                .gauge("subscribers")
                .set(self.subs.len() as i64);
            self.metrics
                .gauge(&format!("sub/{}/queue_depth", id.0))
                .set(0);
        }
        removed
    }

    /// Register a materialized roll-up view, seeding it from `existing`
    /// (the warehouse's current hot contents, in storage order) so that
    /// the view starts byte-identical to a rescan.
    pub fn register_view<'a>(
        &mut self,
        name: &str,
        query: CubeQuery,
        existing: impl IntoIterator<Item = &'a Event>,
    ) -> ViewId {
        self.next_view += 1;
        let id = self.next_view;
        let mut view = MaterializedView::new(query);
        let mut seeded = 0u64;
        for event in existing {
            if view.absorb(event) {
                seeded += 1;
            }
        }
        self.metrics.counter("view_contributions").add(seeded);
        self.views.insert(
            id,
            ViewReg {
                name: name.to_string(),
                view,
            },
        );
        self.metrics.gauge("views").set(self.views.len() as i64);
        ViewId(id)
    }

    /// Remove a view. Returns `false` if the handle is unknown.
    pub fn drop_view(&mut self, id: ViewId) -> bool {
        let removed = self.views.remove(&id.0).is_some();
        if removed {
            self.metrics.gauge("views").set(self.views.len() as i64);
        }
        removed
    }

    /// Evaluate one ingest batch against every registration: matched
    /// events fan out to subscriber queues, and each view folds in its
    /// cell updates. Call with the exact events handed to the warehouse.
    pub fn on_events(&mut self, events: &[Event]) {
        if self.is_idle() || events.is_empty() {
            self.seq += events.len() as u64;
            return;
        }
        let sw = Stopwatch::start();
        let mut fanout = 0u64;
        let mut dropped = 0u64;
        for event in events {
            self.seq += 1;
            for sub in self.subs.values_mut() {
                if !sub.query.matches(event) {
                    continue;
                }
                fanout += 1;
                match sub.queue.push(event.clone()) {
                    PushOutcome::Enqueued => {}
                    PushOutcome::DisplacedOldest
                    | PushOutcome::DroppedNewest
                    | PushOutcome::Lagged => dropped += 1,
                }
            }
            for reg in self.views.values_mut() {
                if reg.view.absorb(event) {
                    self.metrics.counter("view_contributions").inc();
                }
            }
        }
        self.metrics.counter("fanout_deltas").add(fanout);
        self.metrics.counter("dropped_deltas").add(dropped);
        self.metrics.hist("match_us").record(sw.elapsed_us());
        self.refresh_depth_gauges();
    }

    /// Mirror a warehouse `evict_before(horizon)`: every view retracts the
    /// contributions of the evicted events.
    pub fn on_evict(&mut self, horizon: Timestamp) {
        let mut retracted = 0usize;
        for reg in self.views.values_mut() {
            retracted += reg.view.retract_before(horizon);
        }
        self.metrics
            .counter("view_retractions")
            .add(retracted as u64);
    }

    /// Drain a subscriber's pending deltas. `None` if the handle is
    /// unknown.
    pub fn poll(&mut self, id: SubscriberId) -> Option<CqPoll> {
        let sub = self.subs.get_mut(&id.0)?;
        let lagged = sub.queue.is_lagged();
        let deltas = sub.queue.drain();
        self.metrics
            .counter("delivered_deltas")
            .add(deltas.len() as u64);
        self.metrics
            .gauge(&format!("sub/{}/queue_depth", id.0))
            .set(0);
        Some(CqPoll {
            deltas,
            dropped: sub.queue.dropped(),
            lagged,
            seq: self.seq,
        })
    }

    /// Clear a subscriber's lag flag after it re-synchronised from a
    /// snapshot (see the module docs for the protocol). Returns `false`
    /// if the handle is unknown.
    pub fn mark_caught_up(&mut self, id: SubscriberId) -> bool {
        match self.subs.get_mut(&id.0) {
            Some(sub) => {
                sub.queue.mark_caught_up();
                self.metrics
                    .gauge(&format!("sub/{}/queue_depth", id.0))
                    .set(0);
                true
            }
            None => false,
        }
    }

    /// A subscription's standing query. `None` if the handle is unknown.
    pub fn subscription_query(&self, id: SubscriberId) -> Option<&EventQuery> {
        self.subs.get(&id.0).map(|s| &s.query)
    }

    /// A view's current cells — the incrementally maintained answer.
    /// `None` if the handle is unknown.
    pub fn view_cells(&self, id: ViewId) -> Option<Vec<CubeCell>> {
        self.views.get(&id.0).map(|r| r.view.cells())
    }

    /// A view's standing query. `None` if the handle is unknown.
    pub fn view_query(&self, id: ViewId) -> Option<&CubeQuery> {
        self.views.get(&id.0).map(|r| r.view.query())
    }

    /// Liveness summaries of every subscription, by id.
    pub fn subscription_stats(&self) -> Vec<SubscriptionStat> {
        self.subs
            .iter()
            .map(|(&id, s)| SubscriptionStat {
                id: SubscriberId(id),
                name: s.name.clone(),
                depth: s.queue.len(),
                delivered: s.queue.delivered(),
                dropped: s.queue.dropped(),
                lagged: s.queue.is_lagged(),
                bounded: s.queue.capacity().is_some(),
            })
            .collect()
    }

    /// Liveness summaries of every view, by id.
    pub fn view_stats(&self) -> Vec<ViewStat> {
        self.views
            .iter()
            .map(|(&id, r)| ViewStat {
                id: ViewId(id),
                name: r.name.clone(),
                cells: r.view.cell_count(),
                contributions: r.view.contribution_count(),
                time_bounded: r.view.query().select.time.is_some(),
            })
            .collect()
    }

    /// Snapshot of the hub's instruments: `match_us` latency histogram,
    /// `fanout_deltas`/`dropped_deltas`/`delivered_deltas` and
    /// `view_contributions`/`view_retractions` counters, `subscribers`/
    /// `views` gauges, and a `sub/<id>/queue_depth` gauge per subscriber.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn refresh_depth_gauges(&mut self) {
        let depths: Vec<(u64, i64)> = self
            .subs
            .iter()
            .map(|(&id, s)| (id, s.queue.len() as i64))
            .collect();
        for (id, depth) in depths {
            self.metrics
                .gauge(&format!("sub/{id}/queue_depth"))
                .set(depth);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use sl_stt::{GeoPoint, SpatialGranularity, TemporalGranularity, Theme, TimeInterval, Value};

    fn event(min: i64, theme: &str, v: f64) -> Event {
        Event::new(
            Value::Float(v),
            TemporalGranularity::Minute,
            TemporalGranularity::Minute.granule_of(Timestamp::from_secs(min * 60)),
            SpatialGranularity::grid(8).granule_of(&GeoPoint::new_unchecked(34.7, 135.5)),
            Theme::new(theme).unwrap(),
        )
    }

    fn hourly() -> CubeQuery {
        CubeQuery {
            select: EventQuery::all(),
            tgran: TemporalGranularity::Hour,
            sgran: SpatialGranularity::World,
            theme_depth: 1,
        }
    }

    #[test]
    fn idle_hub_only_advances_seq() {
        let mut hub = CqHub::new();
        assert!(hub.is_idle());
        hub.on_events(&[event(0, "weather/temp", 1.0)]);
        assert_eq!(hub.seq(), 1);
        assert!(hub.metrics_snapshot().counters.is_empty());
    }

    #[test]
    fn subscription_receives_only_matches() {
        let mut hub = CqHub::new();
        let id = hub.subscribe(
            "weather",
            EventQuery::all().with_theme(Theme::new("weather").unwrap()),
            Some(16),
            QueuePolicy::Block,
        );
        hub.on_events(&[
            event(0, "weather/temp", 1.0),
            event(0, "social/tweet", 2.0),
            event(1, "weather/rain", 3.0),
        ]);
        let poll = hub.poll(id).unwrap();
        assert_eq!(poll.deltas.len(), 2);
        assert_eq!(poll.seq, 3);
        assert!(!poll.lagged);
        assert_eq!(poll.dropped, 0);
        // Second poll is empty: deltas are consumed.
        assert!(hub.poll(id).unwrap().deltas.is_empty());
    }

    #[test]
    fn block_overflow_requires_catch_up() {
        let mut hub = CqHub::new();
        let id = hub.subscribe("slow", EventQuery::all(), Some(2), QueuePolicy::Block);
        hub.on_events(&[
            event(0, "a", 0.0),
            event(1, "a", 1.0),
            event(2, "a", 2.0), // overflow: lag
            event(3, "a", 3.0),
        ]);
        let poll = hub.poll(id).unwrap();
        assert!(poll.lagged);
        assert!(poll.deltas.is_empty());
        assert_eq!(poll.dropped, 4);
        assert!(hub.mark_caught_up(id));
        hub.on_events(&[event(4, "a", 4.0)]);
        let poll = hub.poll(id).unwrap();
        assert!(!poll.lagged);
        assert_eq!(poll.deltas.len(), 1);
    }

    #[test]
    fn view_lifecycle_with_seed_and_evict() {
        let mut hub = CqHub::new();
        let seed = [event(0, "weather/temp", 1.0), event(1, "weather/temp", 2.0)];
        let vid = hub.register_view("dash", hourly(), seed.iter());
        let cells = hub.view_cells(vid).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].count, 2);
        hub.on_events(&[event(2, "weather/temp", 3.0)]);
        assert_eq!(hub.view_cells(vid).unwrap()[0].count, 3);
        hub.on_evict(Timestamp::from_secs(3 * 60));
        assert!(hub.view_cells(vid).unwrap().is_empty());
        assert!(hub.drop_view(vid));
        assert!(hub.view_cells(vid).is_none());
        assert!(!hub.drop_view(vid));
    }

    #[test]
    fn stats_and_metrics_track_activity() {
        let mut hub = CqHub::new();
        let sid = hub.subscribe("s", EventQuery::all(), Some(8), QueuePolicy::ShedOldest);
        let bounded_time = EventQuery::all().in_time(TimeInterval::new(
            Timestamp::from_secs(0),
            Timestamp::from_secs(3600),
        ));
        hub.register_view(
            "v",
            CubeQuery {
                select: bounded_time,
                ..hourly()
            },
            std::iter::empty(),
        );
        hub.on_events(&[event(0, "weather/temp", 1.0)]);
        let subs = hub.subscription_stats();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].depth, 1);
        assert!(subs[0].bounded);
        let views = hub.view_stats();
        assert_eq!(views.len(), 1);
        assert!(views[0].time_bounded);
        assert_eq!(views[0].contributions, 1);
        let snap = hub.metrics_snapshot();
        assert_eq!(snap.counters.get("fanout_deltas"), Some(&1));
        assert_eq!(
            snap.gauges.get(&format!("sub/{}/queue_depth", sid.0)),
            Some(&1)
        );
        hub.poll(sid);
        assert_eq!(
            hub.metrics_snapshot()
                .gauges
                .get(&format!("sub/{}/queue_depth", sid.0)),
            Some(&0)
        );
        assert!(hub.unsubscribe(sid));
        assert!(hub.poll(sid).is_none());
    }
}
