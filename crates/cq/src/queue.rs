//! Bounded per-subscriber push queues.
//!
//! Every subscriber gets its own [`PushQueue`]: the hub pushes matched
//! deltas at ingest time, the client drains them at its own pace. A slow
//! client must not stall ingest or exhaust memory, so queues are bounded
//! and a [`QueuePolicy`] (mirroring the engine's ingress `OverflowPolicy`
//! variant for variant) decides what happens when one fills up. Every
//! outcome is explicit: shed deltas are counted, and the `Block` policy
//! never silently drops — it marks the subscriber *lagged* so the client
//! knows it must re-synchronise with a snapshot.

use std::collections::VecDeque;

/// What to do when a subscriber's queue is full. Mirrors the engine's
/// ingress `OverflowPolicy` so deployments can reuse one mental model for
/// both ends of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueuePolicy {
    /// No silent loss: on overflow the queue is cleared and the subscriber
    /// is marked [lagged](PushQueue::is_lagged). Deltas are withheld until
    /// the client catches up from a snapshot (the push-side analogue of
    /// blocking the producer, which a single-threaded ingest loop cannot
    /// literally do).
    Block,
    /// Drop the oldest queued delta to admit the new one.
    ShedOldest,
    /// Drop the incoming delta, keeping the queued backlog.
    ShedNewest,
    /// Admit an overflowing delta with this probability (displacing the
    /// oldest), otherwise drop it. Deterministic per queue.
    Sample(f64),
}

/// How a push was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued without loss.
    Enqueued,
    /// Enqueued after shedding one older delta.
    DisplacedOldest,
    /// The incoming delta was dropped.
    DroppedNewest,
    /// The queue overflowed under [`QueuePolicy::Block`]: backlog cleared,
    /// subscriber now lagged (or it already was).
    Lagged,
}

/// A bounded FIFO of deltas for one subscriber.
#[derive(Debug, Clone)]
pub struct PushQueue<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    policy: QueuePolicy,
    lagged: bool,
    delivered: u64,
    dropped: u64,
    rng: u64,
}

impl<T> PushQueue<T> {
    /// A queue holding at most `capacity` pending deltas (`None` =
    /// unbounded — lint SL091 flags this under engine admission control).
    /// `seed` keys the deterministic sampler for [`QueuePolicy::Sample`].
    pub fn new(capacity: Option<usize>, policy: QueuePolicy, seed: u64) -> PushQueue<T> {
        PushQueue {
            items: VecDeque::new(),
            capacity,
            policy,
            lagged: false,
            delivered: 0,
            dropped: 0,
            rng: seed | 1, // xorshift must not start at 0
        }
    }

    /// Offer one delta.
    pub fn push(&mut self, item: T) -> PushOutcome {
        if self.lagged {
            // The snapshot the client will fetch at catch-up already covers
            // this delta; queueing it would duplicate it.
            self.dropped += 1;
            return PushOutcome::Lagged;
        }
        let full = self.capacity.is_some_and(|c| self.items.len() >= c);
        if !full {
            self.items.push_back(item);
            return PushOutcome::Enqueued;
        }
        match self.policy {
            QueuePolicy::Block => {
                self.dropped += self.items.len() as u64 + 1;
                self.items.clear();
                self.lagged = true;
                PushOutcome::Lagged
            }
            QueuePolicy::ShedOldest => {
                self.items.pop_front();
                self.items.push_back(item);
                self.dropped += 1;
                PushOutcome::DisplacedOldest
            }
            QueuePolicy::ShedNewest => {
                self.dropped += 1;
                PushOutcome::DroppedNewest
            }
            QueuePolicy::Sample(p) => {
                if self.next_unit() < p {
                    self.items.pop_front();
                    self.items.push_back(item);
                    self.dropped += 1;
                    PushOutcome::DisplacedOldest
                } else {
                    self.dropped += 1;
                    PushOutcome::DroppedNewest
                }
            }
        }
    }

    /// Take every pending delta, oldest first.
    pub fn drain(&mut self) -> Vec<T> {
        self.delivered += self.items.len() as u64;
        self.items.drain(..).collect()
    }

    /// Pending deltas.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if the queue overflowed under [`QueuePolicy::Block`] and the
    /// subscriber has not yet caught up from a snapshot.
    pub fn is_lagged(&self) -> bool {
        self.lagged
    }

    /// Clear the lag flag after the client re-synchronised from a snapshot.
    /// Any backlog is discarded (the snapshot supersedes it).
    pub fn mark_caught_up(&mut self) {
        self.lagged = false;
        self.items.clear();
    }

    /// Deltas handed to the client so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Deltas lost to shedding or lag so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The overflow policy.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Deterministic xorshift64 draw in [0, 1). The hub is single-threaded
    /// and dependency-free, so no external RNG is pulled in for sampling.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let mut q = PushQueue::new(Some(4), QueuePolicy::ShedOldest, 7);
        for i in 0..3 {
            assert_eq!(q.push(i), PushOutcome::Enqueued);
        }
        assert_eq!(q.drain(), vec![0, 1, 2]);
        assert_eq!(q.delivered(), 3);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn shed_oldest_keeps_newest() {
        let mut q = PushQueue::new(Some(2), QueuePolicy::ShedOldest, 7);
        q.push(1);
        q.push(2);
        assert_eq!(q.push(3), PushOutcome::DisplacedOldest);
        assert_eq!(q.drain(), vec![2, 3]);
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn shed_newest_keeps_backlog() {
        let mut q = PushQueue::new(Some(2), QueuePolicy::ShedNewest, 7);
        q.push(1);
        q.push(2);
        assert_eq!(q.push(3), PushOutcome::DroppedNewest);
        assert_eq!(q.drain(), vec![1, 2]);
    }

    #[test]
    fn block_lags_and_catches_up() {
        let mut q = PushQueue::new(Some(2), QueuePolicy::Block, 7);
        q.push(1);
        q.push(2);
        assert_eq!(q.push(3), PushOutcome::Lagged);
        assert!(q.is_lagged());
        assert!(q.is_empty()); // backlog cleared, no stale partial state
        assert_eq!(q.dropped(), 3);
        // While lagged, pushes are absorbed by the pending snapshot.
        assert_eq!(q.push(4), PushOutcome::Lagged);
        q.mark_caught_up();
        assert!(!q.is_lagged());
        assert_eq!(q.push(5), PushOutcome::Enqueued);
        assert_eq!(q.drain(), vec![5]);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_fair() {
        let run = |seed| {
            let mut q = PushQueue::new(Some(1), QueuePolicy::Sample(0.5), seed);
            q.push(0);
            (0..1000)
                .filter(|&i| q.push(i) == PushOutcome::DisplacedOldest)
                .count()
        };
        assert_eq!(run(42), run(42)); // deterministic
        let admitted = run(42);
        assert!((300..700).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn unbounded_never_sheds() {
        let mut q = PushQueue::new(None, QueuePolicy::Block, 7);
        for i in 0..10_000 {
            assert_eq!(q.push(i), PushOutcome::Enqueued);
        }
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.dropped(), 0);
    }
}
