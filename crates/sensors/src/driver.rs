//! The sensor simulation interface.

use crate::formats::WireFormat;
use bytes::Bytes;
use sl_pubsub::SensorAdvertisement;
use sl_stt::{Timestamp, Tuple};

/// A simulated sensor: advertises itself to the pub/sub layer and produces
/// one measurement per sampling instant.
///
/// Implementations own their RNG (seeded at construction) so that a fleet
/// replays identically run to run. The engine schedules calls every
/// [`SensorAdvertisement::period`] of virtual time.
pub trait SensorSim: Send {
    /// The advertisement published when this sensor joins.
    fn advertisement(&self) -> SensorAdvertisement;

    /// Produce the measurement taken at `now`.
    fn sample(&mut self, now: Timestamp) -> Tuple;

    /// The wire encoding this sensor transmits in.
    fn wire_format(&self) -> WireFormat {
        WireFormat::Csv
    }

    /// Sample and encode — what actually leaves the device. The default
    /// implementation encodes [`SensorSim::sample`] with
    /// [`SensorSim::wire_format`]; the tuple's metadata travels out of band.
    fn emit(&mut self, now: Timestamp) -> (Bytes, Tuple) {
        let tuple = self.sample(now);
        (self.wire_format().encode(&tuple), tuple)
    }

    /// Called instead of [`SensorSim::emit`] when the broker has revoked
    /// this sensor's generation credit (`Block`-mode backpressure): the
    /// device skips the sampling instant entirely — no tuple is generated,
    /// so nothing can be lost. Drivers that buffer or coalesce on-device
    /// can override this to model that behaviour; the default does nothing.
    fn on_throttled(&mut self, _now: Timestamp) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_netsim::NodeId;
    use sl_pubsub::SensorKind;
    use sl_stt::{
        AttrType, Duration, Field, GeoPoint, Schema, SchemaRef, SensorId, SttMeta, Theme, Value,
    };

    struct Constant {
        schema: SchemaRef,
    }

    impl SensorSim for Constant {
        fn advertisement(&self) -> SensorAdvertisement {
            SensorAdvertisement {
                id: SensorId(1),
                name: "const".into(),
                kind: SensorKind::Physical,
                schema: self.schema.clone(),
                theme: Theme::new("weather").unwrap(),
                period: Duration::from_secs(1),
                location: Some(GeoPoint::new_unchecked(34.7, 135.5)),
                node: NodeId(0),
            }
        }

        fn sample(&mut self, now: Timestamp) -> Tuple {
            Tuple::new(
                self.schema.clone(),
                vec![Value::Float(1.5)],
                SttMeta::new(
                    now,
                    GeoPoint::new_unchecked(34.7, 135.5),
                    Theme::new("weather").unwrap(),
                    SensorId(1),
                ),
            )
            .unwrap()
        }
    }

    #[test]
    fn default_emit_encodes_sample() {
        let schema = Schema::new(vec![Field::new("v", AttrType::Float)])
            .unwrap()
            .into_ref();
        let mut s = Constant {
            schema: schema.clone(),
        };
        let (payload, tuple) = s.emit(Timestamp::from_secs(9));
        assert_eq!(&payload[..], b"1.5");
        assert_eq!(tuple.meta.timestamp, Timestamp::from_secs(9));
        let decoded =
            crate::formats::decode_payload(&payload, WireFormat::Csv, &schema, tuple.meta.clone())
                .unwrap();
        assert_eq!(decoded.get("v").unwrap(), &Value::Float(1.5));
    }
}
