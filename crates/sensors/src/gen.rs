//! Deterministic signal generators underlying the synthetic sensors.

use rand::Rng;
use sl_stt::Timestamp;

/// A diurnal (24 h period) sinusoid with gaussian noise: the canonical
/// temperature/humidity signal shape.
#[derive(Debug, Clone)]
pub struct DiurnalWave {
    /// Mean value.
    pub base: f64,
    /// Peak deviation from the mean.
    pub amplitude: f64,
    /// Hour of day (0-24) at which the peak occurs.
    pub peak_hour: f64,
    /// Standard deviation of the additive noise.
    pub noise_std: f64,
}

impl DiurnalWave {
    /// Value at `t` with noise drawn from `rng`.
    pub fn value(&self, t: Timestamp, rng: &mut impl Rng) -> f64 {
        let (h, m, _) = t.time_of_day();
        let hour = f64::from(h) + f64::from(m) / 60.0;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        self.base + self.amplitude * phase.cos() + gaussian(rng) * self.noise_std
    }
}

/// A two-state (dry/raining) Markov process with exponential-ish intensity
/// while raining — bursty rain fronts.
#[derive(Debug, Clone)]
pub struct RainProcess {
    raining: bool,
    /// Probability of a dry→rain transition per step.
    pub p_start: f64,
    /// Probability of a rain→dry transition per step.
    pub p_stop: f64,
    /// Mean rain intensity in mm/h while raining.
    pub mean_intensity: f64,
}

impl RainProcess {
    /// A process starting dry.
    pub fn new(p_start: f64, p_stop: f64, mean_intensity: f64) -> RainProcess {
        RainProcess {
            raining: false,
            p_start,
            p_stop,
            mean_intensity,
        }
    }

    /// Advance one step and return the current intensity (mm/h, 0 when dry).
    pub fn step(&mut self, rng: &mut impl Rng) -> f64 {
        if self.raining {
            if rng.gen::<f64>() < self.p_stop {
                self.raining = false;
            }
        } else if rng.gen::<f64>() < self.p_start {
            self.raining = true;
        }
        if self.raining {
            // Exponential with the configured mean, clipped for realism.
            let u: f64 = rng.gen_range(1e-9..1.0);
            (-u.ln() * self.mean_intensity).min(self.mean_intensity * 8.0)
        } else {
            0.0
        }
    }

    /// True while in the raining state.
    pub fn is_raining(&self) -> bool {
        self.raining
    }
}

/// A mean-reverting random walk in `[lo, hi]` — congestion levels, water
/// levels.
#[derive(Debug, Clone)]
pub struct BoundedWalk {
    value: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Step standard deviation.
    pub step_std: f64,
    /// Pull strength toward the midpoint per step (0 = pure walk).
    pub reversion: f64,
}

impl BoundedWalk {
    /// A walk starting at `start`.
    pub fn new(start: f64, lo: f64, hi: f64, step_std: f64, reversion: f64) -> BoundedWalk {
        BoundedWalk {
            value: start.clamp(lo, hi),
            lo,
            hi,
            step_std,
            reversion,
        }
    }

    /// Advance one step and return the new value.
    pub fn step(&mut self, rng: &mut impl Rng) -> f64 {
        let mid = (self.lo + self.hi) / 2.0;
        self.value += self.reversion * (mid - self.value) + gaussian(rng) * self.step_std;
        self.value = self.value.clamp(self.lo, self.hi);
        self.value
    }

    /// Current value without stepping.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let w = DiurnalWave {
            base: 20.0,
            amplitude: 8.0,
            peak_hour: 14.0,
            noise_std: 0.0,
        };
        let mut r = rng(1);
        let mut at = |h| w.value(Timestamp::from_civil(2016, 7, 1, h, 0, 0), &mut r);
        let peak = at(14);
        let trough = at(2);
        assert!(peak > 27.0, "peak {peak}");
        assert!(trough < 13.0, "trough {trough}");
        assert!((at(14) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_noise_is_deterministic_per_seed() {
        let w = DiurnalWave {
            base: 20.0,
            amplitude: 5.0,
            peak_hour: 14.0,
            noise_std: 1.0,
        };
        let t = Timestamp::from_civil(2016, 7, 1, 9, 0, 0);
        let a = w.value(t, &mut rng(7));
        let b = w.value(t, &mut rng(7));
        assert_eq!(a, b);
        let c = w.value(t, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn rain_process_bursts() {
        let mut p = RainProcess::new(0.05, 0.2, 10.0);
        let mut r = rng(42);
        let mut wet_steps = 0;
        let mut total = 0.0;
        for _ in 0..10_000 {
            let v = p.step(&mut r);
            assert!(v >= 0.0);
            if v > 0.0 {
                wet_steps += 1;
                total += v;
            }
        }
        // Stationary wet fraction = p_start / (p_start + p_stop) = 0.2.
        let frac = wet_steps as f64 / 10_000.0;
        assert!((0.1..0.3).contains(&frac), "wet fraction {frac}");
        let mean = total / wet_steps as f64;
        assert!((5.0..15.0).contains(&mean), "mean intensity {mean}");
    }

    #[test]
    fn bounded_walk_stays_in_bounds() {
        let mut w = BoundedWalk::new(0.5, 0.0, 1.0, 0.2, 0.05);
        let mut r = rng(3);
        for _ in 0..5_000 {
            let v = w.step(&mut r);
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(w.value(), w.value());
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng(11);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let g = gaussian(&mut r);
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
