//! Social sensors: geo-microblog (tweet) streams and traffic information
//! (paper §1: "social sensors able to collect data from people (like,
//! twitter data, traffic information, train or flight schedule)").

use crate::driver::SensorSim;
use crate::formats::WireFormat;
use crate::gen::BoundedWalk;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sl_netsim::NodeId;
use sl_pubsub::{SensorAdvertisement, SensorKind};
use sl_stt::{
    AttrType, Duration, Field, GeoPoint, Schema, SchemaRef, SensorId, SttMeta, Theme, Timestamp,
    Tuple, Value,
};

/// Weather-correlated tweet templates; `{}` receives the area name.
const CALM_TEMPLATES: [&str; 5] = [
    "nice day in {}",
    "lunch break at {} station",
    "train on time for once #commute",
    "cherry blossoms near {} are lovely",
    "anyone up for coffee in {}?",
];

const STORM_TEMPLATES: [&str; 6] = [
    "insane rain in {} right now #storm",
    "streets flooding near {} station!",
    "thunder woke me up, {} is getting hammered",
    "my umbrella just died #rain #{}wind",
    "trains stopped at {} because of the storm",
    "stay safe {} people, torrential rain out there",
];

/// A geo-tagged microblog feed around an area.
///
/// Rate and content react to an external *excitement* level (set from the
/// scenario's weather): excited feeds tweet storm content more often. A
/// fraction of tweets carry no position — mobile clients with GPS off —
/// exercising the pub/sub enrichment path; the advertisement itself also has
/// no fixed location.
pub struct TweetSensor {
    ad: SensorAdvertisement,
    area: String,
    center: GeoPoint,
    spread_deg: f64,
    excitement: f64,
    geotag_prob: f64,
    rng: StdRng,
}

impl TweetSensor {
    /// Build a feed centred on `center` for the named area.
    pub fn new(
        id: SensorId,
        name: &str,
        area: &str,
        center: GeoPoint,
        node: NodeId,
        period: Duration,
        seed: u64,
    ) -> TweetSensor {
        let schema: SchemaRef = Schema::new(vec![
            Field::new("text", AttrType::Str),
            Field::new("user", AttrType::Str),
            Field::new("storm_related", AttrType::Bool),
        ])
        .expect("static schema")
        .into_ref();
        let ad = SensorAdvertisement {
            id,
            name: name.to_string(),
            kind: SensorKind::Social,
            schema,
            theme: Theme::new("social/tweet").expect("static theme"),
            period,
            location: None, // mobile feed: no fixed position
            node,
        };
        TweetSensor {
            ad,
            area: area.to_string(),
            center,
            spread_deg: 0.05,
            excitement: 0.0,
            geotag_prob: 0.7,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Set the excitement level in `[0, 1]` (scenario couples this to rain
    /// intensity: storms make people tweet about storms).
    pub fn set_excitement(&mut self, level: f64) {
        self.excitement = level.clamp(0.0, 1.0);
    }
}

impl SensorSim for TweetSensor {
    fn advertisement(&self) -> SensorAdvertisement {
        self.ad.clone()
    }

    fn sample(&mut self, now: Timestamp) -> Tuple {
        let stormy = self.rng.gen::<f64>() < self.excitement;
        let template = if stormy {
            STORM_TEMPLATES[self.rng.gen_range(0..STORM_TEMPLATES.len())]
        } else {
            CALM_TEMPLATES[self.rng.gen_range(0..CALM_TEMPLATES.len())]
        };
        let text = template.replace("{}", &self.area);
        let user = format!("user{:04}", self.rng.gen_range(0..2000));
        let location = if self.rng.gen::<f64>() < self.geotag_prob {
            Some(GeoPoint::new_unchecked(
                self.center.lat + (self.rng.gen::<f64>() - 0.5) * self.spread_deg,
                self.center.lon + (self.rng.gen::<f64>() - 0.5) * self.spread_deg,
            ))
        } else {
            None
        };
        let meta = SttMeta {
            timestamp: now,
            location,
            theme: self.ad.theme.clone(),
            sensor: self.ad.id,
            trace: 0,
        };
        Tuple::new(
            self.ad.schema.clone(),
            vec![Value::Str(text), Value::Str(user), Value::Bool(stormy)],
            meta,
        )
        .expect("schema matches")
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::Json
    }
}

/// A road-segment congestion probe.
pub struct TrafficSensor {
    ad: SensorAdvertisement,
    congestion: BoundedWalk,
    road: String,
    incident_prob: f64,
    incident_left: u32,
    rng: StdRng,
}

impl TrafficSensor {
    /// Build a probe for the named road segment.
    pub fn new(
        id: SensorId,
        name: &str,
        road: &str,
        location: GeoPoint,
        node: NodeId,
        period: Duration,
        seed: u64,
    ) -> TrafficSensor {
        let schema: SchemaRef = Schema::new(vec![
            Field::new("congestion", AttrType::Float),
            Field::new("incident", AttrType::Bool),
            Field::new("road", AttrType::Str),
        ])
        .expect("static schema")
        .into_ref();
        let ad = SensorAdvertisement {
            id,
            name: name.to_string(),
            kind: SensorKind::Social,
            schema,
            theme: Theme::new("traffic/congestion").expect("static theme"),
            period,
            location: Some(location),
            node,
        };
        TrafficSensor {
            ad,
            congestion: BoundedWalk::new(0.3, 0.0, 1.0, 0.05, 0.03),
            road: road.to_string(),
            incident_prob: 0.01,
            incident_left: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SensorSim for TrafficSensor {
    fn advertisement(&self) -> SensorAdvertisement {
        self.ad.clone()
    }

    fn sample(&mut self, now: Timestamp) -> Tuple {
        // Incidents spike congestion for a while.
        if self.incident_left == 0 && self.rng.gen::<f64>() < self.incident_prob {
            self.incident_left = self.rng.gen_range(5..20);
        }
        let mut level = self.congestion.step(&mut self.rng);
        let incident = self.incident_left > 0;
        if incident {
            self.incident_left -= 1;
            level = (level + 0.5).min(1.0);
        }
        Tuple::new(
            self.ad.schema.clone(),
            vec![
                Value::Float((level * 1000.0).round() / 1000.0),
                Value::Bool(incident),
                Value::Str(self.road.clone()),
            ],
            SttMeta {
                timestamp: now,
                location: self.ad.location,
                theme: self.ad.theme.clone(),
                sensor: self.ad.id,
                trace: 0,
            },
        )
        .expect("schema matches")
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::KeyValue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osaka() -> GeoPoint {
        GeoPoint::new_unchecked(34.6937, 135.5023)
    }

    #[test]
    fn calm_feed_rarely_storm_related() {
        let mut s = TweetSensor::new(
            SensorId(1),
            "osaka-tweets",
            "osaka",
            osaka(),
            NodeId(1),
            Duration::from_secs(2),
            42,
        );
        s.set_excitement(0.0);
        for i in 0..100 {
            let t = s.sample(Timestamp::from_secs(i * 2));
            assert_eq!(t.get("storm_related").unwrap(), &Value::Bool(false));
            assert!(t.get("text").unwrap().as_str().unwrap().len() > 3);
        }
    }

    #[test]
    fn excited_feed_tweets_storm_content() {
        let mut s = TweetSensor::new(
            SensorId(1),
            "osaka-tweets",
            "osaka",
            osaka(),
            NodeId(1),
            Duration::from_secs(2),
            42,
        );
        s.set_excitement(1.0);
        let t = s.sample(Timestamp::from_secs(0));
        assert_eq!(t.get("storm_related").unwrap(), &Value::Bool(true));
        let text = t.get("text").unwrap().as_str().unwrap().to_string();
        assert!(
            text.contains("osaka") || text.contains("storm") || text.contains("rain"),
            "{text}"
        );
    }

    #[test]
    fn some_tweets_lack_location() {
        let mut s = TweetSensor::new(
            SensorId(1),
            "t",
            "osaka",
            osaka(),
            NodeId(1),
            Duration::from_secs(2),
            9,
        );
        assert_eq!(s.advertisement().location, None);
        let mut located = 0;
        let mut unlocated = 0;
        for i in 0..200 {
            let t = s.sample(Timestamp::from_secs(i));
            match t.meta.location {
                Some(p) => {
                    located += 1;
                    // Near the area centre.
                    assert!(p.haversine_distance_m(&osaka()) < 10_000.0);
                }
                None => unlocated += 1,
            }
        }
        assert!(located > 100, "located {located}");
        assert!(unlocated > 20, "unlocated {unlocated}");
    }

    #[test]
    fn traffic_incidents_spike_congestion() {
        let mut s = TrafficSensor::new(
            SensorId(2),
            "r1-probe",
            "route-1",
            osaka(),
            NodeId(1),
            Duration::from_secs(1),
            4,
        );
        let mut incident_levels = Vec::new();
        let mut normal_levels = Vec::new();
        for i in 0..3000 {
            let t = s.sample(Timestamp::from_secs(i));
            let level = t.get("congestion").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&level));
            if t.get("incident").unwrap() == &Value::Bool(true) {
                incident_levels.push(level);
            } else {
                normal_levels.push(level);
            }
        }
        assert!(!incident_levels.is_empty(), "no incidents in 3000 samples");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&incident_levels) > mean(&normal_levels) + 0.2);
    }

    #[test]
    fn social_sensors_advertise_social_kind() {
        let s = TweetSensor::new(
            SensorId(1),
            "t",
            "a",
            osaka(),
            NodeId(0),
            Duration::from_secs(1),
            0,
        );
        assert_eq!(s.advertisement().kind, SensorKind::Social);
        let s = TrafficSensor::new(
            SensorId(2),
            "p",
            "r",
            osaka(),
            NodeId(0),
            Duration::from_secs(1),
            0,
        );
        assert_eq!(s.advertisement().kind, SensorKind::Social);
        assert_eq!(s.wire_format(), WireFormat::KeyValue);
    }
}
