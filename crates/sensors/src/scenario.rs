//! The Osaka scenario fleet (paper §3, Scenario; Figure 2).
//!
//! "There are different sensors in the area of Osaka that produce data about
//! the temperatures and levels of rains [...] Moreover, tweets and traffic
//! information from the same area." This module builds that fleet against a
//! network topology, assigning sensors to edge nodes round-robin.

use crate::driver::SensorSim;
use crate::gen::DiurnalWave;
use crate::physical::{RainSensor, TemperatureSensor, WaterLevelSensor, WindPressureSensor};
use crate::social::{TrafficSensor, TweetSensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sl_netsim::{NodeId, Topology};
use sl_stt::{BoundingBox, Duration, GeoPoint, SensorId};

/// Osaka city centre.
pub fn osaka_center() -> GeoPoint {
    GeoPoint::new_unchecked(34.6937, 135.5023)
}

/// The Osaka metropolitan bounding box used by scenario dataflows.
pub fn osaka_area() -> BoundingBox {
    BoundingBox::from_corners(
        GeoPoint::new_unchecked(34.45, 135.25),
        GeoPoint::new_unchecked(34.90, 135.75),
    )
}

/// Fleet-size and behaviour knobs.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Temperature stations (half report humidity too; a quarter report
    /// Fahrenheit).
    pub temperature_sensors: usize,
    /// Rain gauges.
    pub rain_sensors: usize,
    /// Tweet feeds.
    pub tweet_feeds: usize,
    /// Traffic probes.
    pub traffic_probes: usize,
    /// Wind/pressure stations.
    pub wind_sensors: usize,
    /// Water-level gauges.
    pub water_sensors: usize,
    /// Base RNG seed; every sensor derives its own from it.
    pub seed: u64,
    /// Make it a heat wave: push the temperature profile up so the
    /// scenario's 25 °C trigger actually fires.
    pub heat_wave: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            temperature_sensors: 6,
            rain_sensors: 4,
            tweet_feeds: 2,
            traffic_probes: 4,
            wind_sensors: 2,
            water_sensors: 2,
            seed: 2016,
            heat_wave: true,
        }
    }
}

/// The built scenario: sensors ready to drive, plus the hosting topology.
pub struct OsakaScenario {
    /// The sensor fleet.
    pub sensors: Vec<Box<dyn SensorSim>>,
    /// The network they attach to.
    pub topology: Topology,
}

/// Scatter a point around the centre within ~`spread_deg` degrees.
fn scatter(rng: &mut StdRng, spread_deg: f64) -> GeoPoint {
    let c = osaka_center();
    GeoPoint::new_unchecked(
        c.lat + (rng.gen::<f64>() - 0.5) * spread_deg,
        c.lon + (rng.gen::<f64>() - 0.5) * spread_deg,
    )
}

/// Build the Osaka fleet on the NICT-like testbed topology.
pub fn osaka_fleet(config: &ScenarioConfig) -> OsakaScenario {
    let topology = Topology::nict_testbed();
    let edges: Vec<NodeId> = topology.edge_nodes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sensors: Vec<Box<dyn SensorSim>> = Vec::new();
    let mut next_id = 0u64;
    let mut next_edge = 0usize;
    let mut alloc = |sensors: &mut Vec<Box<dyn SensorSim>>| -> (SensorId, NodeId) {
        let id = SensorId(next_id);
        next_id += 1;
        let node = edges[next_edge % edges.len()];
        next_edge += 1;
        let _ = sensors; // placement only
        (id, node)
    };

    for i in 0..config.temperature_sensors {
        let (id, node) = alloc(&mut sensors);
        let fahrenheit = i % 4 == 3;
        let with_humidity = i % 2 == 0;
        let mut s = TemperatureSensor::new(
            id,
            &format!("osaka-temp-{i}"),
            scatter(&mut rng, 0.3),
            node,
            Duration::from_secs(10),
            fahrenheit,
            with_humidity,
            config.seed.wrapping_add(id.0),
        );
        if config.heat_wave {
            s.set_wave(DiurnalWave {
                base: 28.0,
                amplitude: 6.0,
                peak_hour: 14.0,
                noise_std: 0.8,
            });
        }
        sensors.push(Box::new(s));
    }
    for i in 0..config.rain_sensors {
        let (id, node) = alloc(&mut sensors);
        sensors.push(Box::new(RainSensor::new(
            id,
            &format!("osaka-rain-{i}"),
            scatter(&mut rng, 0.3),
            node,
            Duration::from_secs(60),
            config.seed.wrapping_add(id.0),
        )));
    }
    for i in 0..config.tweet_feeds {
        let (id, node) = alloc(&mut sensors);
        sensors.push(Box::new(TweetSensor::new(
            id,
            &format!("osaka-tweets-{i}"),
            "osaka",
            osaka_center(),
            node,
            Duration::from_secs(2),
            config.seed.wrapping_add(id.0),
        )));
    }
    for i in 0..config.traffic_probes {
        let (id, node) = alloc(&mut sensors);
        sensors.push(Box::new(TrafficSensor::new(
            id,
            &format!("osaka-traffic-{i}"),
            &format!("route-{}", 1 + i),
            scatter(&mut rng, 0.2),
            node,
            Duration::from_secs(5),
            config.seed.wrapping_add(id.0),
        )));
    }
    for i in 0..config.wind_sensors {
        let (id, node) = alloc(&mut sensors);
        sensors.push(Box::new(WindPressureSensor::new(
            id,
            &format!("osaka-wind-{i}"),
            scatter(&mut rng, 0.3),
            node,
            Duration::from_secs(30),
            config.seed.wrapping_add(id.0),
        )));
    }
    for i in 0..config.water_sensors {
        let (id, node) = alloc(&mut sensors);
        sensors.push(Box::new(WaterLevelSensor::new(
            id,
            &format!("osaka-river-{i}"),
            scatter(&mut rng, 0.3),
            node,
            Duration::from_mins(5),
            config.seed.wrapping_add(id.0),
        )));
    }
    OsakaScenario { sensors, topology }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_pubsub::SensorKind;
    use sl_stt::Timestamp;
    use std::collections::HashSet;

    #[test]
    fn default_fleet_shape() {
        let sc = osaka_fleet(&ScenarioConfig::default());
        assert_eq!(sc.sensors.len(), 6 + 4 + 2 + 4 + 2 + 2);
        // Unique ids and names.
        let ids: HashSet<_> = sc.sensors.iter().map(|s| s.advertisement().id).collect();
        assert_eq!(ids.len(), sc.sensors.len());
        let names: HashSet<_> = sc.sensors.iter().map(|s| s.advertisement().name).collect();
        assert_eq!(names.len(), sc.sensors.len());
        // Both kinds present.
        let kinds: HashSet<_> = sc.sensors.iter().map(|s| s.advertisement().kind).collect();
        assert!(kinds.contains(&SensorKind::Physical) && kinds.contains(&SensorKind::Social));
        // Every hosting node is an edge node of the topology.
        let edges: HashSet<_> = sc.topology.edge_nodes().into_iter().collect();
        for s in &sc.sensors {
            assert!(edges.contains(&s.advertisement().node));
        }
    }

    #[test]
    fn located_sensors_sit_in_the_osaka_box() {
        let sc = osaka_fleet(&ScenarioConfig::default());
        let area = osaka_area();
        for s in &sc.sensors {
            if let Some(p) = s.advertisement().location {
                assert!(area.contains(&p), "{} at {p}", s.advertisement().name);
            }
        }
    }

    #[test]
    fn heat_wave_pushes_midday_above_trigger() {
        let mut sc = osaka_fleet(&ScenarioConfig {
            heat_wave: true,
            ..Default::default()
        });
        let noon = Timestamp::from_civil(2016, 7, 1, 13, 0, 0);
        // Average the Celsius sensors' midday readings.
        let mut sum = 0.0;
        let mut n = 0;
        for s in sc.sensors.iter_mut() {
            let ad = s.advertisement();
            if ad.theme.as_str() == "weather/temperature"
                && ad.schema.field("temperature").unwrap().unit == Some(sl_stt::Unit::Celsius)
            {
                sum += s.sample(noon).get("temperature").unwrap().as_f64().unwrap();
                n += 1;
            }
        }
        assert!(n >= 3);
        let avg = sum / f64::from(n);
        assert!(
            avg > 25.0,
            "midday heat-wave average {avg} should trip the 25°C trigger"
        );
    }

    #[test]
    fn fleet_is_deterministic() {
        let t = Timestamp::from_civil(2016, 7, 1, 10, 0, 0);
        let mut a = osaka_fleet(&ScenarioConfig::default());
        let mut b = osaka_fleet(&ScenarioConfig::default());
        for (x, y) in a.sensors.iter_mut().zip(b.sensors.iter_mut()) {
            assert_eq!(x.sample(t), y.sample(t));
        }
        // Different seed differs somewhere.
        let mut c = osaka_fleet(&ScenarioConfig {
            seed: 999,
            ..Default::default()
        });
        let differs = a
            .sensors
            .iter_mut()
            .zip(c.sensors.iter_mut())
            .any(|(x, y)| x.sample(t) != y.sample(t));
        assert!(differs);
    }

    #[test]
    fn heterogeneous_units_present() {
        let sc = osaka_fleet(&ScenarioConfig::default());
        let units: HashSet<_> = sc
            .sensors
            .iter()
            .filter_map(|s| {
                s.advertisement()
                    .schema
                    .field("temperature")
                    .ok()
                    .and_then(|f| f.unit)
            })
            .collect();
        assert!(units.contains(&sl_stt::Unit::Celsius));
        assert!(units.contains(&sl_stt::Unit::Fahrenheit));
    }
}
