//! Heterogeneous wire formats and the Extract step.
//!
//! Real fleets never agree on encodings: this module provides CSV, JSON and
//! `key=value` payload encodings plus the extraction parser that turns any
//! of them back into a [`Tuple`] given the advertised schema. Decoding is
//! deliberately forgiving — missing attributes become null, malformed values
//! become null — because sensors send garbage and the dataflow must keep
//! running (validation rules downstream decide what to drop).

use bytes::Bytes;
use sl_stt::{AttrType, SchemaRef, SttError, SttMeta, Tuple, Value};

/// The payload encoding a sensor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// Header-less CSV in schema order.
    Csv,
    /// Flat JSON object.
    Json,
    /// `key=value` pairs separated by `;`.
    KeyValue,
}

impl WireFormat {
    /// All formats.
    pub const ALL: [WireFormat; 3] = [WireFormat::Csv, WireFormat::Json, WireFormat::KeyValue];

    /// Encode a tuple's values (metadata travels out of band in the
    /// simulated transport).
    pub fn encode(self, tuple: &Tuple) -> Bytes {
        let schema = tuple.schema();
        match self {
            WireFormat::Csv => {
                let mut out = String::new();
                for (i, v) in tuple.values().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&csv_cell(v));
                }
                Bytes::from(out)
            }
            WireFormat::Json => {
                let mut out = String::from("{");
                for (i, (f, v)) in schema.fields().iter().zip(tuple.values()).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":{}", f.name, json_cell(v)));
                }
                out.push('}');
                Bytes::from(out)
            }
            WireFormat::KeyValue => {
                let mut out = String::new();
                for (i, (f, v)) in schema.fields().iter().zip(tuple.values()).enumerate() {
                    if i > 0 {
                        out.push(';');
                    }
                    out.push_str(&format!("{}={}", f.name, kv_cell(v)));
                }
                Bytes::from(out)
            }
        }
    }
}

fn csv_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        Value::Geo(g) => format!("\"{},{}\"", g.lat, g.lon),
        Value::Time(t) => t.as_millis().to_string(),
        other => other.to_string(),
    }
}

fn json_cell(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.is_finite() {
                f.to_string()
            } else {
                "null".into()
            }
        }
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Value::Time(t) => t.as_millis().to_string(),
        Value::Geo(g) => format!("[{},{}]", g.lat, g.lon),
    }
}

fn kv_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Str(s) => s.replace([';', '='], " "),
        Value::Geo(g) => format!("{},{}", g.lat, g.lon),
        Value::Time(t) => t.as_millis().to_string(),
        other => other.to_string(),
    }
}

/// Extract a tuple from a payload: parse per the format, then coerce each
/// attribute to the schema's type. Unparseable or missing attributes become
/// null; extra attributes are ignored.
pub fn decode_payload(
    payload: &Bytes,
    format: WireFormat,
    schema: &SchemaRef,
    meta: SttMeta,
) -> Result<Tuple, SttError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| SttError::Parse("payload is not UTF-8".into()))?;
    let mut values = vec![Value::Null; schema.len()];
    match format {
        WireFormat::Csv => {
            for (i, cell) in split_csv(text).into_iter().enumerate() {
                if i >= schema.len() {
                    break;
                }
                values[i] = coerce(&cell, schema.fields()[i].ty);
            }
        }
        WireFormat::Json => {
            for (key, raw) in parse_flat_json(text)? {
                if let Ok(idx) = schema.index_of(&key) {
                    values[idx] = coerce(&raw, schema.fields()[idx].ty);
                }
            }
        }
        WireFormat::KeyValue => {
            for pair in text.split(';') {
                if let Some((k, v)) = pair.split_once('=') {
                    if let Ok(idx) = schema.index_of(k.trim()) {
                        values[idx] = coerce(v.trim(), schema.fields()[idx].ty);
                    }
                }
            }
        }
    }
    Tuple::new(schema.clone(), values, meta)
}

/// Coerce a textual cell into the target type; failures yield null.
fn coerce(cell: &str, ty: AttrType) -> Value {
    let cell = cell.trim();
    if cell.is_empty() || cell == "null" {
        return Value::Null;
    }
    // JSON arrays as geo pairs.
    if ty == AttrType::Geo {
        let stripped = cell
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .unwrap_or(cell);
        return Value::parse_as(stripped, ty).unwrap_or(Value::Null);
    }
    // Strip JSON string quotes for Str cells.
    if ty == AttrType::Str {
        let inner = cell
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .map(|s| s.replace("\\\"", "\"").replace("\\\\", "\\"));
        return Value::Str(inner.unwrap_or_else(|| cell.to_string()));
    }
    Value::parse_as(cell, ty).unwrap_or(Value::Null)
}

/// Minimal CSV splitter handling quoted cells.
fn split_csv(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut in_q = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_q && chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_q = !in_q;
                }
            }
            ',' if !in_q => {
                cells.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

/// Minimal flat-JSON-object parser: `{"k": scalar, ...}` with string, number,
/// bool, null and `[a,b]` array values. Returns raw value text per key.
fn parse_flat_json(text: &str) -> Result<Vec<(String, String)>, SttError> {
    let t = text.trim();
    let inner = t
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| SttError::Parse("not a JSON object".into()))?;
    let mut out = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Skip whitespace and commas.
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        if bytes[i] != b'"' {
            return Err(SttError::Parse("expected a JSON key".into()));
        }
        i += 1;
        let kstart = i;
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(SttError::Parse("unterminated JSON key".into()));
        }
        let key = inner[kstart..i].to_string();
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_whitespace()) {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(SttError::Parse("expected `:` in JSON object".into()));
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let vstart = i;
        if i < bytes.len() && bytes[i] == b'"' {
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    break;
                }
                i += 1;
            }
            if i >= bytes.len() {
                return Err(SttError::Parse("unterminated JSON string".into()));
            }
            i += 1;
        } else if i < bytes.len() && bytes[i] == b'[' {
            while i < bytes.len() && bytes[i] != b']' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(SttError::Parse("unterminated JSON array".into()));
            }
            i += 1;
        } else {
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
        }
        out.push((key, inner[vstart..i].trim().to_string()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_stt::{Field, GeoPoint, Schema, SensorId, Theme, Timestamp};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("temperature", AttrType::Float),
            Field::new("station", AttrType::Str),
            Field::new("hits", AttrType::Int),
            Field::new("pos", AttrType::Geo),
        ])
        .unwrap()
        .into_ref()
    }

    fn meta() -> SttMeta {
        SttMeta::new(
            Timestamp::from_secs(1),
            GeoPoint::new_unchecked(34.7, 135.5),
            Theme::new("weather").unwrap(),
            SensorId(5),
        )
    }

    fn tuple() -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::Float(25.5),
                Value::Str("osaka,main".into()),
                Value::Int(7),
                Value::Geo(GeoPoint::new_unchecked(34.7, 135.5)),
            ],
            meta(),
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trip_all_formats() {
        for fmt in WireFormat::ALL {
            let t = tuple();
            let payload = fmt.encode(&t);
            let back = decode_payload(&payload, fmt, &schema(), meta()).unwrap();
            assert_eq!(
                back.get("temperature").unwrap(),
                &Value::Float(25.5),
                "{fmt:?}"
            );
            assert_eq!(back.get("hits").unwrap(), &Value::Int(7), "{fmt:?}");
            let g = back.get("pos").unwrap().as_geo().unwrap();
            assert!((g.lat - 34.7).abs() < 1e-9, "{fmt:?}");
            // Key-value flattens the comma-containing string; CSV/JSON keep it.
            if fmt != WireFormat::KeyValue {
                assert_eq!(
                    back.get("station").unwrap(),
                    &Value::Str("osaka,main".into()),
                    "{fmt:?}"
                );
            }
        }
    }

    #[test]
    fn csv_quoted_cells() {
        let cells = split_csv("a,\"b,c\",\"say \"\"hi\"\"\",d");
        assert_eq!(cells, vec!["a", "b,c", "say \"hi\"", "d"]);
    }

    #[test]
    fn missing_attributes_become_null() {
        let payload = Bytes::from("{\"temperature\": 20.5}");
        let t = decode_payload(&payload, WireFormat::Json, &schema(), meta()).unwrap();
        assert_eq!(t.get("temperature").unwrap(), &Value::Float(20.5));
        assert_eq!(t.get("station").unwrap(), &Value::Null);
        assert_eq!(t.get("hits").unwrap(), &Value::Null);
    }

    #[test]
    fn malformed_values_become_null_not_errors() {
        let payload = Bytes::from("not_a_number,osaka,many,nowhere");
        let t = decode_payload(&payload, WireFormat::Csv, &schema(), meta()).unwrap();
        assert_eq!(t.get("temperature").unwrap(), &Value::Null);
        assert_eq!(t.get("station").unwrap(), &Value::Str("osaka".into()));
        assert_eq!(t.get("hits").unwrap(), &Value::Null);
        assert_eq!(t.get("pos").unwrap(), &Value::Null);
    }

    #[test]
    fn extra_attributes_ignored() {
        let payload = Bytes::from("temperature=20;wind=99;station=osaka");
        let t = decode_payload(&payload, WireFormat::KeyValue, &schema(), meta()).unwrap();
        assert_eq!(t.get("temperature").unwrap(), &Value::Float(20.0));
        assert_eq!(t.get("station").unwrap(), &Value::Str("osaka".into()));
    }

    #[test]
    fn non_utf8_payload_is_an_error() {
        let payload = Bytes::from(vec![0xFF, 0xFE, 0x00]);
        assert!(decode_payload(&payload, WireFormat::Csv, &schema(), meta()).is_err());
    }

    #[test]
    fn broken_json_is_an_error() {
        for bad in ["not json", "{\"k\" 1}", "{\"k\": \"unterminated}", "{k: 1}"] {
            let payload = Bytes::from(bad.to_string());
            assert!(
                decode_payload(&payload, WireFormat::Json, &schema(), meta()).is_err(),
                "`{bad}` should fail"
            );
        }
    }

    #[test]
    fn json_escapes_round_trip() {
        let s = Schema::new(vec![Field::new("msg", AttrType::Str)])
            .unwrap()
            .into_ref();
        let t = Tuple::new(
            s.clone(),
            vec![Value::Str("say \"hi\" \\ ok".into())],
            meta(),
        )
        .unwrap();
        let payload = WireFormat::Json.encode(&t);
        let back = decode_payload(&payload, WireFormat::Json, &s, meta()).unwrap();
        assert_eq!(
            back.get("msg").unwrap(),
            &Value::Str("say \"hi\" \\ ok".into())
        );
    }

    #[test]
    fn null_cells_encode_and_decode() {
        let s = Schema::new(vec![
            Field::new("a", AttrType::Float),
            Field::new("b", AttrType::Str),
        ])
        .unwrap()
        .into_ref();
        let t = Tuple::new(s.clone(), vec![Value::Null, Value::Str("x".into())], meta()).unwrap();
        for fmt in WireFormat::ALL {
            let back = decode_payload(&fmt.encode(&t), fmt, &s, meta()).unwrap();
            assert_eq!(back.get("a").unwrap(), &Value::Null, "{fmt:?}");
            assert_eq!(back.get("b").unwrap(), &Value::Str("x".into()), "{fmt:?}");
        }
    }
}
