//! Physical sensor models: temperature, humidity, rain, wind, pressure and
//! water level (the phenomena paper §1 lists).

use crate::driver::SensorSim;
use crate::formats::WireFormat;
use crate::gen::{BoundedWalk, DiurnalWave, RainProcess};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sl_netsim::NodeId;
use sl_pubsub::{SensorAdvertisement, SensorKind};
use sl_stt::{
    AttrType, Duration, Field, GeoPoint, Schema, SchemaRef, SensorId, SttMeta, Theme, Timestamp,
    Tuple, Unit, Value,
};

fn meta_for(ad: &SensorAdvertisement, now: Timestamp) -> SttMeta {
    SttMeta {
        timestamp: now,
        location: ad.location,
        theme: ad.theme.clone(),
        sensor: ad.id,
        trace: 0,
    }
}

/// A weather station reporting temperature (and optionally humidity).
///
/// Heterogeneity knobs: the reporting unit (Celsius or Fahrenheit — a
/// downstream Transform normalises) and whether humidity is included in the
/// schema at all.
pub struct TemperatureSensor {
    ad: SensorAdvertisement,
    wave: DiurnalWave,
    humidity_wave: Option<DiurnalWave>,
    unit: Unit,
    station: String,
    format: WireFormat,
    rng: StdRng,
}

impl TemperatureSensor {
    /// Build a station. `fahrenheit` selects the legacy-unit variant;
    /// `with_humidity` adds a humidity attribute.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: SensorId,
        name: &str,
        location: GeoPoint,
        node: NodeId,
        period: Duration,
        fahrenheit: bool,
        with_humidity: bool,
        seed: u64,
    ) -> TemperatureSensor {
        let unit = if fahrenheit {
            Unit::Fahrenheit
        } else {
            Unit::Celsius
        };
        let mut fields = vec![
            Field::with_unit("temperature", AttrType::Float, unit),
            Field::new("station", AttrType::Str),
        ];
        if with_humidity {
            fields.insert(
                1,
                Field::with_unit("humidity", AttrType::Float, Unit::Percent),
            );
        }
        let schema: SchemaRef = Schema::new(fields).expect("static schema").into_ref();
        let ad = SensorAdvertisement {
            id,
            name: name.to_string(),
            kind: SensorKind::Physical,
            schema,
            theme: Theme::new("weather/temperature").expect("static theme"),
            period,
            location: Some(location),
            node,
        };
        TemperatureSensor {
            ad,
            wave: DiurnalWave {
                base: 22.0,
                amplitude: 7.0,
                peak_hour: 14.0,
                noise_std: 0.6,
            },
            humidity_wave: with_humidity.then_some(DiurnalWave {
                base: 60.0,
                amplitude: 15.0,
                peak_hour: 4.0,
                noise_std: 3.0,
            }),
            unit,
            station: name.to_string(),
            format: if fahrenheit {
                WireFormat::KeyValue
            } else {
                WireFormat::Csv
            },
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Override the diurnal profile (scenario heat waves).
    pub fn set_wave(&mut self, wave: DiurnalWave) {
        self.wave = wave;
    }
}

impl SensorSim for TemperatureSensor {
    fn advertisement(&self) -> SensorAdvertisement {
        self.ad.clone()
    }

    fn sample(&mut self, now: Timestamp) -> Tuple {
        let celsius = self.wave.value(now, &mut self.rng);
        let reported = Unit::Celsius
            .convert(celsius, self.unit)
            .expect("temp units");
        let mut values = vec![Value::Float((reported * 10.0).round() / 10.0)];
        if let Some(hw) = &self.humidity_wave {
            let h = hw.value(now, &mut self.rng).clamp(5.0, 100.0);
            values.push(Value::Float((h * 10.0).round() / 10.0));
        }
        values.push(Value::Str(self.station.clone()));
        Tuple::new(self.ad.schema.clone(), values, meta_for(&self.ad, now)).expect("schema matches")
    }

    fn wire_format(&self) -> WireFormat {
        self.format
    }
}

/// A rain gauge: bursty precipitation in mm/h, plus a torrential flag.
pub struct RainSensor {
    ad: SensorAdvertisement,
    process: RainProcess,
    station: String,
    rng: StdRng,
}

impl RainSensor {
    /// Build a rain gauge.
    pub fn new(
        id: SensorId,
        name: &str,
        location: GeoPoint,
        node: NodeId,
        period: Duration,
        seed: u64,
    ) -> RainSensor {
        let schema: SchemaRef = Schema::new(vec![
            Field::with_unit("rain", AttrType::Float, Unit::MillimeterRain),
            Field::new("torrential", AttrType::Bool),
            Field::new("station", AttrType::Str),
        ])
        .expect("static schema")
        .into_ref();
        let ad = SensorAdvertisement {
            id,
            name: name.to_string(),
            kind: SensorKind::Physical,
            schema,
            theme: Theme::new("weather/rain").expect("static theme"),
            period,
            location: Some(location),
            node,
        };
        RainSensor {
            ad,
            process: RainProcess::new(0.04, 0.15, 12.0),
            station: name.to_string(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Force the burst parameters (scenario storms).
    pub fn set_process(&mut self, process: RainProcess) {
        self.process = process;
    }
}

impl SensorSim for RainSensor {
    fn advertisement(&self) -> SensorAdvertisement {
        self.ad.clone()
    }

    fn sample(&mut self, now: Timestamp) -> Tuple {
        let mm = self.process.step(&mut self.rng);
        let values = vec![
            Value::Float((mm * 100.0).round() / 100.0),
            Value::Bool(mm > 20.0),
            Value::Str(self.station.clone()),
        ];
        Tuple::new(self.ad.schema.clone(), values, meta_for(&self.ad, now)).expect("schema matches")
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::Json
    }
}

/// A combined wind/pressure station.
pub struct WindPressureSensor {
    ad: SensorAdvertisement,
    wind: BoundedWalk,
    pressure: BoundedWalk,
    rng: StdRng,
}

impl WindPressureSensor {
    /// Build a station.
    pub fn new(
        id: SensorId,
        name: &str,
        location: GeoPoint,
        node: NodeId,
        period: Duration,
        seed: u64,
    ) -> WindPressureSensor {
        let schema: SchemaRef = Schema::new(vec![
            Field::with_unit("wind_speed", AttrType::Float, Unit::MeterPerSecond),
            Field::with_unit("pressure", AttrType::Float, Unit::Hectopascal),
        ])
        .expect("static schema")
        .into_ref();
        let ad = SensorAdvertisement {
            id,
            name: name.to_string(),
            kind: SensorKind::Physical,
            schema,
            theme: Theme::new("weather/wind").expect("static theme"),
            period,
            location: Some(location),
            node,
        };
        WindPressureSensor {
            ad,
            wind: BoundedWalk::new(4.0, 0.0, 40.0, 0.8, 0.02),
            pressure: BoundedWalk::new(1013.0, 960.0, 1050.0, 0.5, 0.01),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SensorSim for WindPressureSensor {
    fn advertisement(&self) -> SensorAdvertisement {
        self.ad.clone()
    }

    fn sample(&mut self, now: Timestamp) -> Tuple {
        let values = vec![
            Value::Float((self.wind.step(&mut self.rng) * 10.0).round() / 10.0),
            Value::Float((self.pressure.step(&mut self.rng) * 10.0).round() / 10.0),
        ];
        Tuple::new(self.ad.schema.clone(), values, meta_for(&self.ad, now)).expect("schema matches")
    }
}

/// A water-level sensor (sea/river level, paper §1) that rises during rain.
pub struct WaterLevelSensor {
    ad: SensorAdvertisement,
    level: BoundedWalk,
    rng: StdRng,
}

impl WaterLevelSensor {
    /// Build a level sensor.
    pub fn new(
        id: SensorId,
        name: &str,
        location: GeoPoint,
        node: NodeId,
        period: Duration,
        seed: u64,
    ) -> WaterLevelSensor {
        let schema: SchemaRef = Schema::new(vec![
            Field::with_unit("level", AttrType::Float, Unit::Meter),
            Field::new("gauge", AttrType::Str),
        ])
        .expect("static schema")
        .into_ref();
        let ad = SensorAdvertisement {
            id,
            name: name.to_string(),
            kind: SensorKind::Physical,
            schema,
            theme: Theme::new("water/level").expect("static theme"),
            period,
            location: Some(location),
            node,
        };
        WaterLevelSensor {
            ad,
            level: BoundedWalk::new(1.2, 0.0, 6.0, 0.05, 0.01),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SensorSim for WaterLevelSensor {
    fn advertisement(&self) -> SensorAdvertisement {
        self.ad.clone()
    }

    fn sample(&mut self, now: Timestamp) -> Tuple {
        let name = self.ad.name.clone();
        let values = vec![
            Value::Float((self.level.step(&mut self.rng) * 100.0).round() / 100.0),
            Value::Str(name),
        ];
        Tuple::new(self.ad.schema.clone(), values, meta_for(&self.ad, now)).expect("schema matches")
    }

    fn wire_format(&self) -> WireFormat {
        WireFormat::KeyValue
    }
}

/// Convenience: is a value plausibly a temperature in the advertised unit?
/// Used by tests and failure-injection checks.
pub fn plausible_temperature(v: f64, unit: Unit) -> bool {
    let celsius = unit.convert(v, Unit::Celsius).unwrap_or(f64::NAN);
    (-40.0..=50.0).contains(&celsius)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osaka() -> GeoPoint {
        GeoPoint::new_unchecked(34.6937, 135.5023)
    }

    fn noon() -> Timestamp {
        Timestamp::from_civil(2016, 7, 1, 12, 0, 0)
    }

    #[test]
    fn temperature_sensor_celsius() {
        let mut s = TemperatureSensor::new(
            SensorId(1),
            "osaka-temp-0",
            osaka(),
            NodeId(0),
            Duration::from_secs(10),
            false,
            true,
            42,
        );
        let t = s.sample(noon());
        let v = t.get("temperature").unwrap().as_f64().unwrap();
        assert!(plausible_temperature(v, Unit::Celsius), "{v}");
        let h = t.get("humidity").unwrap().as_f64().unwrap();
        assert!((5.0..=100.0).contains(&h));
        assert_eq!(
            t.get("station").unwrap(),
            &Value::Str("osaka-temp-0".into())
        );
        assert_eq!(t.meta.theme.as_str(), "weather/temperature");
        assert_eq!(t.meta.location, Some(osaka()));
    }

    #[test]
    fn fahrenheit_variant_reports_fahrenheit() {
        let mut s = TemperatureSensor::new(
            SensorId(2),
            "legacy",
            osaka(),
            NodeId(0),
            Duration::from_secs(10),
            true,
            false,
            42,
        );
        assert_eq!(
            s.advertisement().schema.field("temperature").unwrap().unit,
            Some(Unit::Fahrenheit)
        );
        let t = s.sample(noon());
        let v = t.get("temperature").unwrap().as_f64().unwrap();
        // Midday in July: roughly 70–100 °F.
        assert!((40.0..120.0).contains(&v), "{v}");
        assert!(plausible_temperature(v, Unit::Fahrenheit));
        // No humidity attribute in this variant.
        assert!(t.get("humidity").is_err());
        assert_eq!(s.wire_format(), WireFormat::KeyValue);
    }

    #[test]
    fn determinism_per_seed() {
        let mk = || {
            TemperatureSensor::new(
                SensorId(1),
                "s",
                osaka(),
                NodeId(0),
                Duration::from_secs(10),
                false,
                true,
                7,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..20 {
            let t = Timestamp::from_secs(i * 10);
            assert_eq!(a.sample(t), b.sample(t));
        }
    }

    #[test]
    fn rain_sensor_flags_torrential() {
        let mut s = RainSensor::new(
            SensorId(3),
            "rain-0",
            osaka(),
            NodeId(0),
            Duration::from_secs(60),
            1,
        );
        // Force a violent process so we observe both states.
        s.set_process(RainProcess::new(0.5, 0.1, 30.0));
        let mut saw_torrential = false;
        let mut saw_dry = false;
        for i in 0..500 {
            let t = s.sample(Timestamp::from_secs(i * 60));
            let mm = t.get("rain").unwrap().as_f64().unwrap();
            let flag = t.get("torrential").unwrap().as_bool().unwrap();
            assert_eq!(flag, mm > 20.0);
            saw_torrential |= flag;
            saw_dry |= mm == 0.0;
        }
        assert!(saw_torrential && saw_dry);
    }

    #[test]
    fn wind_pressure_in_physical_ranges() {
        let mut s = WindPressureSensor::new(
            SensorId(4),
            "wp-0",
            osaka(),
            NodeId(0),
            Duration::from_secs(30),
            5,
        );
        for i in 0..200 {
            let t = s.sample(Timestamp::from_secs(i * 30));
            let w = t.get("wind_speed").unwrap().as_f64().unwrap();
            let p = t.get("pressure").unwrap().as_f64().unwrap();
            assert!((0.0..=40.0).contains(&w));
            assert!((960.0..=1050.0).contains(&p));
        }
    }

    #[test]
    fn water_level_bounded() {
        let mut s = WaterLevelSensor::new(
            SensorId(5),
            "river-0",
            osaka(),
            NodeId(0),
            Duration::from_mins(5),
            5,
        );
        for i in 0..100 {
            let t = s.sample(Timestamp::from_secs(i * 300));
            let l = t.get("level").unwrap().as_f64().unwrap();
            assert!((0.0..=6.0).contains(&l));
        }
        assert_eq!(s.advertisement().theme.as_str(), "water/level");
    }

    #[test]
    fn wire_round_trip_through_formats() {
        let mut s = TemperatureSensor::new(
            SensorId(1),
            "s",
            osaka(),
            NodeId(0),
            Duration::from_secs(10),
            false,
            true,
            7,
        );
        let (payload, original) = s.emit(noon());
        let decoded = crate::formats::decode_payload(
            &payload,
            s.wire_format(),
            &s.advertisement().schema,
            original.meta.clone(),
        )
        .unwrap();
        assert_eq!(
            decoded.get("temperature").unwrap(),
            original.get("temperature").unwrap()
        );
        assert_eq!(
            decoded.get("station").unwrap(),
            original.get("station").unwrap()
        );
    }
}
