//! # sl-sensors — synthetic heterogeneous sensor data
//!
//! The paper demos against live Osaka-area feeds: temperatures, rain
//! levels, tweets and traffic information (§3, Scenario). Those feeds are
//! not available, so this crate simulates them with the properties the
//! system actually exercises:
//!
//! * **heterogeneous schemas and units** — different stations report
//!   different attribute sets; some temperature sensors report Fahrenheit
//!   (the Transform operator's job to fix),
//! * **heterogeneous wire formats** — CSV, JSON and key-value payloads
//!   ([`formats`]), decoded by the extraction layer,
//! * **different rates and granularities** — from 1 s traffic probes to
//!   10 min rain gauges,
//! * **missing spatio-temporal metadata** — mobile tweet sources advertise
//!   no fixed position (exercising pub/sub enrichment),
//! * **event-driven dynamics** — diurnal temperature waves, bursty rain
//!   fronts, tweet storms correlated with weather ([`gen`]).
//!
//! Everything is deterministic per seed.

pub mod driver;
pub mod formats;
pub mod gen;
pub mod physical;
pub mod scenario;
pub mod social;

pub use driver::SensorSim;
pub use formats::{decode_payload, WireFormat};
pub use scenario::{osaka_fleet, OsakaScenario, ScenarioConfig};
