//! # sl-lint — static analysis for streamLoader dataflows
//!
//! The paper activates a dataflow only "once the dataflow is consistent
//! (i.e. it can be soundly activated at network level)" (§1). The
//! accumulating validators in `sl-dsn`/`sl-dataflow` implement the hard
//! structural half of that gate; this crate layers the *advisory* half on
//! top: a multi-pass static analyzer over the validated dataflow, its
//! canonical DSN document, and the target netsim topology.
//!
//! Passes (see [`passes`]):
//!
//! 1. **granularity** — the finer/coarser STT granule lattice (paper §2)
//!    applied to joins and aggregations (`SL010`–`SL013`);
//! 2. **bounded** — blocking-operator cache boundedness (`SL020`–`SL022`);
//! 3. **rate** — abstract interpretation of advertised sensor frequencies
//!    and schema widths against network bandwidth/CPU (`SL030`–`SL034`);
//! 4. **deadcode** — unreachable operators, redundant triggers, unused
//!    virtual properties, constant predicates (`SL040`–`SL044`).
//!
//! Every finding is a [`Diagnostic`] with a stable `SL0xx` [`LintCode`], a
//! severity, and node + DSN-line attribution; a run never stops at the
//! first problem. Entry points: [`lint_dataflow`] for conceptual dataflows
//! (the `Session::lint` path) and [`lint_document`] for DSN text (the
//! `sl-lint` CLI path).

pub mod analysis;
pub mod diag;
pub mod passes;

pub use analysis::StreamProps;
pub use diag::{Diagnostic, LintCode, LintReport, Severity};

use sl_dataflow::{to_dsn, Dataflow, NodeKind};
use sl_dsn::DsnDocument;
use sl_netsim::Topology;
use sl_pubsub::SensorRegistry;
use sl_stt::SchemaRef;
use std::collections::HashMap;

/// Thresholds for the heuristic passes.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Estimated tuples a blocking operator may cache per window before
    /// `SL022` fires.
    pub cache_budget_tuples: f64,
    /// The deploying engine has an overload-control policy configured
    /// (bounded queues with shedding or backpressure). Silences `SL034`:
    /// demand overshoot is mitigated at run time instead of being a silent
    /// unbounded queue.
    pub overload_policy_configured: bool,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            cache_budget_tuples: 100_000.0,
            overload_policy_configured: false,
        }
    }
}

/// What the analyzer knows about the deployment environment. Everything is
/// optional: absent knowledge skips the passes that need it.
#[derive(Default)]
pub struct LintContext<'a> {
    /// The target network (enables `SL030`–`SL032`).
    pub topology: Option<&'a Topology>,
    /// The live sensor registry (enables rate estimation and `SL033`).
    pub registry: Option<&'a SensorRegistry>,
    /// Thresholds.
    pub config: LintConfig,
}

impl<'a> LintContext<'a> {
    /// A context that knows nothing about the environment: structural,
    /// granularity, boundedness, and dead-code passes only.
    pub fn bare() -> LintContext<'a> {
        LintContext::default()
    }
}

/// Lint a conceptual dataflow (the `Session::lint` path): translate to the
/// canonical document, carry the sources' declared schemas over, and run
/// the full pipeline.
pub fn lint_dataflow(df: &Dataflow, ctx: &LintContext<'_>) -> LintReport {
    let doc = to_dsn(df);
    let mut schemas = HashMap::new();
    for node in df.sources() {
        if let NodeKind::Source { schema, .. } = &node.kind {
            schemas.insert(node.name.clone(), schema.clone());
        }
    }
    lint_document(&doc, &schemas, ctx)
}

/// Lint a DSN document against the source schemas that are known.
///
/// Hand-authored documents may not determine every schema (`sl-lint` the
/// CLI infers them from `has name:type` filter clauses); sources missing
/// from `schemas` get an `SL009` note and the schema-dependent checks skip
/// the affected region rather than guessing.
pub fn lint_document(
    doc: &DsnDocument,
    schemas: &HashMap<String, SchemaRef>,
    ctx: &LintContext<'_>,
) -> LintReport {
    let mut diagnostics = Vec::new();

    // Structural mapping (SL001–SL007) via the accumulating validator.
    let structural = sl_dsn::validate::validate_full(doc);
    passes::structure::from_dsn_errors(&structural.errors, &mut diagnostics);
    let topo_order = structural.topo_order.unwrap_or_default();

    // SL009 + source rate estimation.
    let mut source_rates = HashMap::new();
    for src in &doc.sources {
        if !schemas.contains_key(&src.name) {
            diagnostics.push(Diagnostic::new(
                LintCode::NoSchema,
                &src.name,
                format!(
                    "source `{}` has no known schema (no `has name:type` clauses and no \
                     registry to infer from); schema-dependent checks are skipped \
                     downstream of it",
                    src.name
                ),
            ));
        }
        if let Some(registry) = ctx.registry {
            let rate: f64 = registry
                .discover(&src.filter)
                .filter(|ad| {
                    schemas
                        .get(&src.name)
                        .is_none_or(|schema| schema.subsumed_by(&ad.schema))
                })
                .map(|ad| ad.rate_hz())
                .sum();
            if rate > 0.0 {
                source_rates.insert(src.name.clone(), rate);
            }
        }
    }

    // Property propagation + schema errors (SL008).
    let propagation = analysis::propagate(doc, schemas, &source_rates, &topo_order);
    for (service, err) in &propagation.schema_errors {
        diagnostics.push(passes::structure::schema_error(service, err));
    }

    // The pass pipeline.
    let consumers = consumer_map(doc);
    let cx = passes::PassCx {
        doc,
        schemas,
        props: &propagation.props,
        topo_order: &topo_order,
        consumers: &consumers,
        topology: ctx.topology,
        registry: ctx.registry,
        config: &ctx.config,
    };
    for (_, pass) in passes::PIPELINE {
        pass(&cx, &mut diagnostics);
    }

    // DSN-span attribution against the canonical text.
    let spans = declaration_lines(doc);
    for d in &mut diagnostics {
        if let Some(node) = &d.node {
            d.dsn_line = spans.get(node.as_str()).copied();
        }
    }

    LintReport::new(doc.name.clone(), diagnostics)
}

/// `producer → (consumer, port)` adjacency of the document.
fn consumer_map(doc: &DsnDocument) -> HashMap<String, Vec<(String, usize)>> {
    let mut map: HashMap<String, Vec<(String, usize)>> = HashMap::new();
    for (from, to, port) in doc.edges() {
        map.entry(from).or_default().push((to, port));
    }
    map
}

/// 1-based line of each declaration in the canonical DSN text. Channel
/// diagnostics are keyed `from -> to`, matching their `node` attribution.
fn declaration_lines(doc: &DsnDocument) -> HashMap<String, usize> {
    let text = sl_dsn::print_document(doc);
    let mut lines = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        let mut words = trimmed.split_whitespace();
        match words.next() {
            Some("source") | Some("service") | Some("sink") => {
                if let Some(name) = words.next() {
                    lines.entry(name.to_string()).or_insert(i + 1);
                }
            }
            Some("channel") => {
                let decl: Vec<&str> = words.take_while(|w| *w != "{").collect();
                lines.entry(decl.join(" ")).or_insert(i + 1);
            }
            _ => {}
        }
    }
    lines
}
