//! # sl-lint — static analysis for streamLoader dataflows
//!
//! The paper activates a dataflow only "once the dataflow is consistent
//! (i.e. it can be soundly activated at network level)" (§1). The
//! accumulating validators in `sl-dsn`/`sl-dataflow` implement the hard
//! structural half of that gate; this crate layers the *advisory* half on
//! top: a multi-pass static analyzer over the validated dataflow, its
//! canonical DSN document, and the target netsim topology.
//!
//! Passes (see [`passes`]):
//!
//! 1. **granularity** — the finer/coarser STT granule lattice (paper §2)
//!    applied to joins and aggregations (`SL010`–`SL013`);
//! 2. **bounded** — blocking-operator cache boundedness (`SL020`–`SL022`);
//! 3. **rate** — abstract interpretation of advertised sensor frequencies
//!    and schema widths against network bandwidth/CPU (`SL030`–`SL034`);
//! 4. **deadcode** — unreachable operators, redundant triggers, unused
//!    virtual properties, constant predicates (`SL040`–`SL044`).
//!
//! A second, deployment tier analyzes the full `(dataflow, DSN,
//! EngineConfig, optional FaultPlan)` tuple via [`DeployModel`] and the
//! derived [`DeployGraph`]:
//!
//! 5. **deadlock** — trigger activation liveness and credit/backpressure
//!    stalls under the `Block` policy (`SL050`–`SL053`);
//! 6. **shard** — does the configured parallelism help, and can it change
//!    observable behaviour (`SL060`–`SL063`);
//! 7. **recovery** — checkpoint/durability/retry coverage of the attached
//!    fault plan (`SL070`–`SL072`);
//! 8. **resource** — worst-case queue depth, memory, and shedding volume
//!    by abstract interpretation of advertised rates (`SL080`–`SL083`).
//!
//! A third, run-time tier ([`cq`], the `Session::lint_cq` path) checks a
//! live session's continuous-query registrations against its engine
//! configuration: unbounded materialized-view growth and unbounded
//! subscriber queues under admission control (`SL090`–`SL091`).
//!
//! Every finding is a [`Diagnostic`] with a stable `SL0xx` [`LintCode`], a
//! severity, and node + DSN-line attribution; a run never stops at the
//! first problem. Entry points: [`lint_dataflow`] for conceptual dataflows
//! (the `Session::lint` path) and [`lint_document`] for DSN text (the
//! `sl-lint` CLI path).

pub mod analysis;
pub mod cq;
pub mod deployfile;
pub mod diag;
pub mod model;
pub mod passes;

pub use analysis::StreamProps;
pub use cq::{lint_cq, CqModel, CqSubFacts, CqViewFacts};
pub use deployfile::DeploySpec;
pub use diag::{Diagnostic, LintCode, LintReport, Severity};
pub use model::{BurstWindow, DeployGraph, DeployModel, OpFacts};

use sl_dataflow::{to_dsn, Dataflow, NodeKind};
use sl_dsn::DsnDocument;
use sl_engine::EngineConfig;
use sl_netsim::Topology;
use sl_pubsub::SensorRegistry;
use sl_stt::SchemaRef;
use std::collections::{BTreeMap, HashMap};

/// Thresholds for the heuristic passes.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Estimated tuples a blocking operator may cache per window before
    /// `SL022` fires.
    pub cache_budget_tuples: f64,
    /// The deploying engine has an overload-control policy configured
    /// (bounded queues with shedding or backpressure). Silences `SL034`:
    /// demand overshoot is mitigated at run time instead of being a silent
    /// unbounded queue.
    pub overload_policy_configured: bool,
    /// Peak-memory budget for `SL081` (in-flight queues plus blocking
    /// window caches at advertised rates).
    pub memory_budget_bytes: f64,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            cache_budget_tuples: 100_000.0,
            overload_policy_configured: false,
            memory_budget_bytes: 256.0 * 1024.0 * 1024.0,
        }
    }
}

impl LintConfig {
    /// Thresholds derived from an engine configuration: the overload flag
    /// follows [`admission_enabled`](sl_engine::OverloadConfig::admission_enabled)
    /// — bounded queues *or* a global capacity both mitigate demand
    /// overshoot, so either silences `SL034`.
    pub fn for_engine(config: &EngineConfig) -> LintConfig {
        LintConfig {
            overload_policy_configured: config.overload.admission_enabled(),
            ..LintConfig::default()
        }
    }
}

/// What the analyzer knows about the deployment environment. Everything is
/// optional: absent knowledge skips the passes that need it.
#[derive(Default)]
pub struct LintContext<'a> {
    /// The target network (enables `SL030`–`SL032`).
    pub topology: Option<&'a Topology>,
    /// The live sensor registry (enables rate estimation and `SL033`).
    pub registry: Option<&'a SensorRegistry>,
    /// Thresholds.
    pub config: LintConfig,
}

impl<'a> LintContext<'a> {
    /// A context that knows nothing about the environment: structural,
    /// granularity, boundedness, and dead-code passes only.
    pub fn bare() -> LintContext<'a> {
        LintContext::default()
    }
}

/// Lint a conceptual dataflow (the `Session::lint` path): translate to the
/// canonical document, carry the sources' declared schemas over, and run
/// the full pipeline.
pub fn lint_dataflow(df: &Dataflow, ctx: &LintContext<'_>) -> LintReport {
    let doc = to_dsn(df);
    let mut schemas = HashMap::new();
    for node in df.sources() {
        if let NodeKind::Source { schema, .. } = &node.kind {
            schemas.insert(node.name.clone(), schema.clone());
        }
    }
    lint_document(&doc, &schemas, ctx)
}

/// Lint a DSN document against the source schemas that are known.
///
/// Hand-authored documents may not determine every schema (`sl-lint` the
/// CLI infers them from `has name:type` filter clauses); sources missing
/// from `schemas` get an `SL009` note and the schema-dependent checks skip
/// the affected region rather than guessing.
pub fn lint_document(
    doc: &DsnDocument,
    schemas: &HashMap<String, SchemaRef>,
    ctx: &LintContext<'_>,
) -> LintReport {
    lint_document_with_model(doc, schemas, ctx, None)
}

/// Lint a conceptual dataflow against a full deployment model: the
/// document tier plus the `SL05x`–`SL08x` deployment passes (deadlock,
/// shard-safety, recovery coverage, resource bounds). This is the
/// `Session::lint_deployment` path.
pub fn lint_deployment(
    df: &Dataflow,
    ctx: &LintContext<'_>,
    model: &DeployModel<'_>,
) -> LintReport {
    let doc = to_dsn(df);
    let mut schemas = HashMap::new();
    for node in df.sources() {
        if let NodeKind::Source { schema, .. } = &node.kind {
            schemas.insert(node.name.clone(), schema.clone());
        }
    }
    lint_document_with_model(&doc, &schemas, ctx, Some(model))
}

/// [`lint_document`] with an optional deployment model attached. With a
/// model the deployment passes run and `SL034` hands its question to
/// `SL080` (which sees the real admission settings).
pub fn lint_document_with_model(
    doc: &DsnDocument,
    schemas: &HashMap<String, SchemaRef>,
    ctx: &LintContext<'_>,
    model: Option<&DeployModel<'_>>,
) -> LintReport {
    let mut diagnostics = Vec::new();

    // Structural mapping (SL001–SL007) via the accumulating validator.
    let structural = sl_dsn::validate::validate_full(doc);
    passes::structure::from_dsn_errors(&structural.errors, &mut diagnostics);
    let topo_order = structural.topo_order.unwrap_or_default();

    // SL009 + source rate estimation.
    for src in &doc.sources {
        if !schemas.contains_key(&src.name) {
            diagnostics.push(Diagnostic::new(
                LintCode::NoSchema,
                &src.name,
                format!(
                    "source `{}` has no known schema (no `has name:type` clauses and no \
                     registry to infer from); schema-dependent checks are skipped \
                     downstream of it",
                    src.name
                ),
            ));
        }
    }
    let source_rates = estimate_source_rates(doc, schemas, ctx);

    // Property propagation + schema errors (SL008).
    let propagation = analysis::propagate(doc, schemas, &source_rates, &topo_order);
    for (service, err) in &propagation.schema_errors {
        diagnostics.push(passes::structure::schema_error(service, err));
    }

    // The pass pipeline.
    let consumers = consumer_map(doc);
    let graph = model
        .map(|m| model::DeployGraph::build(doc, &propagation.props, ctx.registry, ctx.topology, m));
    let cx = passes::PassCx {
        doc,
        schemas,
        props: &propagation.props,
        topo_order: &topo_order,
        consumers: &consumers,
        topology: ctx.topology,
        registry: ctx.registry,
        config: &ctx.config,
        model,
        graph: graph.as_ref(),
    };
    for (_, pass) in passes::PIPELINE {
        pass(&cx, &mut diagnostics);
    }

    // DSN-span attribution against the canonical text.
    let spans = declaration_lines(doc);
    for d in &mut diagnostics {
        if let Some(node) = &d.node {
            d.dsn_line = spans.get(node.as_str()).copied();
        }
    }

    LintReport::new(doc.name.clone(), diagnostics)
}

/// The statically predicted per-service peak ingress-depth bounds for a
/// dataflow under a deployment model — the exact numbers the `SL080`-tier
/// abstract interpretation reasons with, exposed so the soundness property
/// test (and operators sizing queues) can hold measured behaviour against
/// the prediction. Services whose input rates are unknown (no registry)
/// are omitted.
pub fn predicted_peak_depths(
    df: &Dataflow,
    ctx: &LintContext<'_>,
    model: &DeployModel<'_>,
) -> BTreeMap<String, f64> {
    let doc = to_dsn(df);
    let mut schemas = HashMap::new();
    for node in df.sources() {
        if let NodeKind::Source { schema, .. } = &node.kind {
            schemas.insert(node.name.clone(), schema.clone());
        }
    }
    let structural = sl_dsn::validate::validate_full(&doc);
    let topo_order = structural.topo_order.unwrap_or_default();
    let source_rates = estimate_source_rates(&doc, &schemas, ctx);
    let propagation = analysis::propagate(&doc, &schemas, &source_rates, &topo_order);
    model::DeployGraph::build(&doc, &propagation.props, ctx.registry, ctx.topology, model)
        .peak_depth_bounds()
}

/// Advertised source rates from the registry: the sum of matching sensors'
/// rates, filtered to sensors whose schema satisfies the source's declared
/// schema (when one is known).
fn estimate_source_rates(
    doc: &DsnDocument,
    schemas: &HashMap<String, SchemaRef>,
    ctx: &LintContext<'_>,
) -> HashMap<String, f64> {
    let mut source_rates = HashMap::new();
    if let Some(registry) = ctx.registry {
        for src in &doc.sources {
            let rate: f64 = registry
                .discover(&src.filter)
                .filter(|ad| {
                    schemas
                        .get(&src.name)
                        .is_none_or(|schema| schema.subsumed_by(&ad.schema))
                })
                .map(|ad| ad.rate_hz())
                .sum();
            if rate > 0.0 {
                source_rates.insert(src.name.clone(), rate);
            }
        }
    }
    source_rates
}

/// `producer → (consumer, port)` adjacency of the document.
fn consumer_map(doc: &DsnDocument) -> HashMap<String, Vec<(String, usize)>> {
    let mut map: HashMap<String, Vec<(String, usize)>> = HashMap::new();
    for (from, to, port) in doc.edges() {
        map.entry(from).or_default().push((to, port));
    }
    map
}

/// 1-based line of each declaration in the canonical DSN text. Channel
/// diagnostics are keyed `from -> to`, matching their `node` attribution.
fn declaration_lines(doc: &DsnDocument) -> HashMap<String, usize> {
    let text = sl_dsn::print_document(doc);
    let mut lines = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        let mut words = trimmed.split_whitespace();
        match words.next() {
            Some("source") | Some("service") | Some("sink") => {
                if let Some(name) = words.next() {
                    lines.entry(name.to_string()).or_insert(i + 1);
                }
            }
            Some("channel") => {
                let decl: Vec<&str> = words.take_while(|w| *w != "{").collect();
                lines.entry(decl.join(" ")).or_insert(i + 1);
            }
            _ => {}
        }
    }
    lines
}
