//! The deployment-graph IR for the second analysis tier.
//!
//! The SL00x–SL04x passes see only the document; the SL05x–SL08x passes
//! additionally see *how* the document will be run: the [`DeployModel`]
//! (engine configuration, optional fault plan, durability) and the
//! [`DeployGraph`] — per-operator facts joined from the document, the
//! propagated stream properties, and the live sensor registry. Everything
//! here is read-only and static: nothing is deployed to compute it.

use crate::analysis::{width_bytes, StreamProps};
use sl_dsn::DsnDocument;
use sl_engine::{EngineConfig, OverflowPolicy};
use sl_faults::{FaultAction, FaultPlan};
use sl_netsim::{LinkId, Topology};
use sl_pubsub::{SensorRegistry, SubscriptionFilter};
use sl_stt::Duration;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Everything the deployment-tier passes know about the target engine:
/// the `(EngineConfig, optional FaultPlan, durability)` half of the
/// analyzed tuple. Borrowed, read-only — build one per lint run.
pub struct DeployModel<'a> {
    /// The engine configuration the dataflow will run under.
    pub config: &'a EngineConfig,
    /// The chaos schedule that will be installed, when one is known.
    pub fault_plan: Option<&'a FaultPlan>,
    /// Whether the engine persists checkpoints and the warehouse to a
    /// write-ahead log (`Engine::open_durable`).
    pub durable: bool,
    /// Whether the durable warehouse runs cold-tier compaction (segment
    /// merging plus retention-driven age-out of cold events).
    pub compaction: bool,
}

/// One burst window extracted from the fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstWindow {
    /// The bursting sensor.
    pub sensor: u64,
    /// Window length (BurstStart → BurstStop, or to the plan horizon).
    pub window: Duration,
    /// Rate multiplier.
    pub factor: u32,
}

impl DeployModel<'_> {
    /// True when bounded queues run the zero-loss credit policy.
    pub fn block_mode(&self) -> bool {
        self.config.overload.queue_capacity.is_some()
            && matches!(self.config.overload.policy, OverflowPolicy::Block)
    }

    /// True when bounded queues shed on overflow (any non-Block policy).
    pub fn shed_mode(&self) -> bool {
        self.config.overload.queue_capacity.is_some()
            && !matches!(self.config.overload.policy, OverflowPolicy::Block)
    }

    /// The plan crashes at least one node.
    pub fn crash_bearing(&self) -> bool {
        self.has_action(|a| matches!(a, FaultAction::NodeCrash { .. }))
    }

    /// The plan takes at least one link down (a flap).
    pub fn flap_bearing(&self) -> bool {
        self.has_action(|a| matches!(a, FaultAction::LinkDown { .. }))
    }

    /// The largest burst multiplier the plan schedules (1 when none).
    pub fn burst_factor(&self) -> f64 {
        self.burst_windows()
            .iter()
            .map(|w| w.factor.max(1) as f64)
            .fold(1.0, f64::max)
    }

    /// Every burst window in the plan, `BurstStart` paired with the next
    /// `BurstStop` for the same sensor (or the plan horizon).
    pub fn burst_windows(&self) -> Vec<BurstWindow> {
        let Some(plan) = self.fault_plan else {
            return Vec::new();
        };
        let events = plan.events();
        let mut out = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            if let FaultAction::BurstStart { sensor, factor } = ev.action {
                let end = events[i..]
                    .iter()
                    .find(|e| e.action == FaultAction::BurstStop { sensor })
                    .map(|e| e.at)
                    .unwrap_or_else(|| plan.horizon());
                out.push(BurstWindow {
                    sensor,
                    window: Duration::from_millis(
                        end.as_millis().saturating_sub(ev.at.as_millis()),
                    ),
                    factor,
                });
            }
        }
        out
    }

    fn has_action(&self, pred: impl Fn(&FaultAction) -> bool) -> bool {
        self.fault_plan
            .is_some_and(|p| p.events().iter().any(|e| pred(&e.action)))
    }
}

/// Static facts about one service, joined from the spec, the propagated
/// stream properties, and the registry.
#[derive(Debug, Clone)]
pub struct OpFacts {
    /// [`sl_ops::OpSpec::kind`].
    pub kind: &'static str,
    /// Blocking (tick-driven window) operator.
    pub blocking: bool,
    /// Safe to replicate across shard workers.
    pub shardable: bool,
    /// Output depends on input arrival order (decimation counters).
    pub order_sensitive: bool,
    /// Tick period, in seconds, for blocking operators.
    pub period_s: Option<f64>,
    /// Estimated steady-state input rate (sum over input ports), when the
    /// registry advertises the feeding sensors.
    pub in_rate_hz: Option<f64>,
    /// Estimated bytes per input tuple (widest input schema).
    pub in_width_bytes: Option<f64>,
    /// Sensors bound to this operator's direct source inputs (first-hop
    /// simultaneity: that many deliveries can land at one instant).
    pub first_hop_sensors: usize,
    /// Expected per-tick output batch of direct blocking producers (the
    /// abstract-domain estimate, `out_rate × period`).
    pub tick_burst_est: f64,
    /// Worst-case per-tick batch of direct blocking producers (everything
    /// a producer buffered over one period released at once).
    pub tick_burst_max: f64,
    /// A join lies transitively upstream (the stream is a merge of two
    /// independently-timed streams).
    pub downstream_of_join: bool,
}

/// The deployment graph: [`OpFacts`] per service plus the model-derived
/// constants the resource bounds need.
pub struct DeployGraph {
    /// Facts per service name.
    pub ops: BTreeMap<String, OpFacts>,
    /// The largest burst multiplier of the analyzed plan (≥ 1).
    pub burst_factor: f64,
    /// The in-flight window of one delivery, in seconds: processing delay
    /// plus worst-case route latency plus margin.
    pub window_s: f64,
}

impl DeployGraph {
    /// Join the document, the propagated properties, and the environment
    /// into per-service facts.
    pub fn build(
        doc: &DsnDocument,
        props: &BTreeMap<String, StreamProps>,
        registry: Option<&SensorRegistry>,
        topology: Option<&Topology>,
        model: &DeployModel<'_>,
    ) -> DeployGraph {
        let source_names: BTreeSet<&str> = doc.sources.iter().map(|s| s.name.as_str()).collect();
        let sensors_of: HashMap<&str, usize> = doc
            .sources
            .iter()
            .map(|s| (s.name.as_str(), count_sensors(registry, &s.filter)))
            .collect();

        // Transitive join-reachability, computed in declaration order with a
        // fixpoint (documents are validated acyclic, so this converges).
        let mut merged: BTreeSet<String> = BTreeSet::new();
        let mut changed = true;
        while changed {
            changed = false;
            for svc in &doc.services {
                let is_merged =
                    svc.spec.input_ports() > 1 || svc.inputs.iter().any(|i| merged.contains(i));
                if is_merged && merged.insert(svc.name.clone()) {
                    changed = true;
                }
            }
        }

        let mut ops = BTreeMap::new();
        for svc in &doc.services {
            let in_rate: Option<f64> = svc
                .inputs
                .iter()
                .map(|i| props.get(i).and_then(|p| p.rate_hz))
                .sum::<Option<f64>>();
            let in_width = svc
                .inputs
                .iter()
                .filter_map(|i| props.get(i).and_then(|p| p.schema.as_ref()))
                .map(|s| width_bytes(s))
                .fold(None, |acc: Option<f64>, w| {
                    Some(acc.map_or(w, |a| a.max(w)))
                });
            let first_hop_sensors = svc
                .inputs
                .iter()
                .filter(|i| source_names.contains(i.as_str()))
                .map(|i| sensors_of.get(i.as_str()).copied().unwrap_or(0))
                .sum();
            let mut tick_burst_est = 0.0;
            let mut tick_burst_max = 0.0;
            for input in &svc.inputs {
                let Some(producer) = doc.service(input) else {
                    continue;
                };
                let Some(period) = producer.spec.period() else {
                    continue;
                };
                let period_s = period.as_secs_f64();
                // Expected: the producer's estimated output rate over one
                // period. Worst case: everything the producer buffered in a
                // period comes out at once (groups ≤ buffered tuples).
                if let Some(out_rate) = props.get(input).and_then(|p| p.rate_hz) {
                    tick_burst_est += out_rate * period_s;
                }
                if let Some(prod_in) = producer
                    .inputs
                    .iter()
                    .map(|i| props.get(i).and_then(|p| p.rate_hz))
                    .sum::<Option<f64>>()
                {
                    tick_burst_max += prod_in * period_s;
                }
            }
            ops.insert(
                svc.name.clone(),
                OpFacts {
                    kind: svc.spec.kind(),
                    blocking: svc.spec.is_blocking(),
                    shardable: svc.spec.is_shardable(),
                    order_sensitive: svc.spec.is_order_sensitive(),
                    period_s: svc.spec.period().map(|p| p.as_secs_f64()),
                    in_rate_hz: in_rate,
                    in_width_bytes: in_width,
                    first_hop_sensors,
                    tick_burst_est,
                    tick_burst_max,
                    downstream_of_join: merged.contains(&svc.name),
                },
            );
        }

        // In-flight window: a delivery is scheduled ahead by its route
        // latency (bounded by a few worst-case hops) plus the per-hop
        // processing delay; 5 ms of margin absorbs serialization delay.
        let max_latency_s = topology
            .map(|t| {
                (0..t.link_count() as u32)
                    .filter_map(|i| t.link(LinkId(i)).ok())
                    .map(|l| l.latency.as_secs_f64())
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0);
        let window_s = model.config.processing_delay.as_secs_f64() + 4.0 * max_latency_s + 0.005;

        DeployGraph {
            ops,
            burst_factor: model.burst_factor(),
            window_s,
        }
    }

    /// The statically predicted upper bound on one service's in-flight
    /// ingress depth: burst-amplified arrivals over one in-flight window,
    /// plus first-hop sensor simultaneity, plus worst-case tick batches of
    /// blocking producers, plus slack. `None` when the input rate is
    /// unknown (no registry). The soundness property test holds measured
    /// peaks against exactly this number.
    pub fn peak_depth_bound(&self, service: &str) -> Option<f64> {
        let f = self.ops.get(service)?;
        let rate = f.in_rate_hz?;
        Some(
            self.burst_factor * rate * self.window_s
                + self.burst_factor * f.first_hop_sensors as f64
                + f.tick_burst_max
                + 16.0,
        )
    }

    /// [`DeployGraph::peak_depth_bound`] for every service with a known
    /// input rate.
    pub fn peak_depth_bounds(&self) -> BTreeMap<String, f64> {
        self.ops
            .keys()
            .filter_map(|name| self.peak_depth_bound(name).map(|b| (name.clone(), b)))
            .collect()
    }
}

/// Sensors currently advertised that a source filter binds.
fn count_sensors(registry: Option<&SensorRegistry>, filter: &SubscriptionFilter) -> usize {
    registry.map_or(0, |r| r.discover(filter).count())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely
    use super::*;

    #[test]
    fn burst_windows_pair_start_with_stop() {
        let plan = FaultPlan::new()
            .burst(3, Duration::from_secs(10), Duration::from_secs(60), 4)
            .node_crash(1, Duration::from_secs(5));
        let cfg = EngineConfig::default();
        let model = DeployModel {
            config: &cfg,
            fault_plan: Some(&plan),
            durable: false,
            compaction: false,
        };
        assert_eq!(
            model.burst_windows(),
            vec![BurstWindow {
                sensor: 3,
                window: Duration::from_secs(60),
                factor: 4,
            }]
        );
        assert_eq!(model.burst_factor(), 4.0);
        assert!(model.crash_bearing());
        assert!(!model.flap_bearing());
    }

    #[test]
    fn no_plan_means_no_chaos() {
        let cfg = EngineConfig::default();
        let model = DeployModel {
            config: &cfg,
            fault_plan: None,
            durable: true,
            compaction: false,
        };
        assert!(!model.crash_bearing());
        assert!(!model.flap_bearing());
        assert_eq!(model.burst_factor(), 1.0);
        assert!(model.burst_windows().is_empty());
        // Default config: unbounded queues, so neither bounded mode.
        assert!(!model.block_mode());
        assert!(!model.shed_mode());
    }
}
