//! The abstract domain shared by the lint passes: per-stream properties
//! (schema, STT granularities, estimated rate) propagated source→sink
//! through the document, plus small expression-analysis helpers.
//!
//! Everything here is an *estimate* biased toward catching problems: rates
//! are upper bounds except where an operator's semantics guarantee a
//! reduction (culls, aggregates), and unknown quantities stay `None` so the
//! passes can skip rather than guess.

use sl_dsn::DsnDocument;
use sl_expr::{Bindings, Expr, ExprError};
use sl_ops::OpSpec;
use sl_stt::{
    AttrType, Schema, SchemaRef, SpatialGranularity, SttError, TemporalGranularity, Value,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// How many groups a grouped aggregation is assumed to emit per tick when
/// the true key cardinality is unknown.
const GROUPS_ESTIMATE: f64 = 8.0;

/// Statically-known properties of the stream a producer emits.
#[derive(Debug, Clone)]
pub struct StreamProps {
    /// The tuple schema, when it resolved.
    pub schema: Option<SchemaRef>,
    /// Temporal granularity: raw sensor streams are millisecond-granular;
    /// aggregations coarsen to their window.
    pub tgran: TemporalGranularity,
    /// Spatial granularity: located streams are point-granular; ungrouped
    /// aggregations collapse to the whole world.
    pub sgran: SpatialGranularity,
    /// Estimated tuples per second, when advertised sensor frequencies are
    /// available.
    pub rate_hz: Option<f64>,
}

/// The outcome of propagation: properties per producer, plus the
/// schema-resolution errors found on the way (one per failing operator).
#[derive(Debug, Default)]
pub struct Propagation {
    /// Properties for every producer whose inputs resolved.
    pub props: BTreeMap<String, StreamProps>,
    /// `(service, error)` for every operator whose spec failed against its
    /// input schemas.
    pub schema_errors: Vec<(String, sl_ops::OpError)>,
}

/// Propagate stream properties through `doc` in `topo_order`.
///
/// `schemas` maps source names to their declared schemas (possibly partial:
/// hand-authored DSN text may not determine every schema); `source_rates`
/// maps source names to estimated tuples/sec where known.
pub fn propagate(
    doc: &DsnDocument,
    schemas: &HashMap<String, SchemaRef>,
    source_rates: &HashMap<String, f64>,
    topo_order: &[String],
) -> Propagation {
    let mut out = Propagation::default();
    for src in &doc.sources {
        out.props.insert(
            src.name.clone(),
            StreamProps {
                schema: schemas.get(&src.name).cloned(),
                tgran: TemporalGranularity::Millisecond,
                sgran: SpatialGranularity::Point,
                rate_hz: source_rates.get(&src.name).copied(),
            },
        );
    }
    for name in topo_order {
        let Some(svc) = doc.service(name) else {
            continue;
        };
        let Some(inputs) = svc
            .inputs
            .iter()
            .map(|i| out.props.get(i).cloned())
            .collect::<Option<Vec<_>>>()
        else {
            continue; // starved by an upstream failure, already reported
        };
        let schema = match inputs
            .iter()
            .map(|p| p.schema.clone())
            .collect::<Option<Vec<_>>>()
        {
            Some(in_schemas) => match svc.spec.output_schema(&in_schemas) {
                Ok(s) => Some(s),
                Err(e) => {
                    out.schema_errors.push((name.clone(), e));
                    None
                }
            },
            None => None,
        };
        let props = transfer(&svc.spec, schema, &inputs);
        out.props.insert(name.clone(), props);
    }
    out
}

/// The per-operator transfer function of the abstract domain.
fn transfer(spec: &OpSpec, schema: Option<SchemaRef>, inputs: &[StreamProps]) -> StreamProps {
    let first = &inputs[0];
    match spec {
        OpSpec::Filter { .. }
        | OpSpec::Transform { .. }
        | OpSpec::VirtualProperty { .. }
        | OpSpec::TriggerOn { .. }
        | OpSpec::TriggerOff { .. } => StreamProps {
            schema,
            tgran: first.tgran,
            sgran: first.sgran,
            // Filters/triggers pass tuples through; upper bound is the input.
            rate_hz: first.rate_hz,
        },
        OpSpec::CullTime { rate, .. } | OpSpec::CullSpace { rate, .. } => StreamProps {
            schema,
            tgran: first.tgran,
            sgran: first.sgran,
            // Assume the targeted region covers the stream: 1-of-r survives.
            rate_hz: first.rate_hz.map(|r| r / (*rate).max(1) as f64),
        },
        OpSpec::Aggregate {
            period, group_by, ..
        } => {
            let groups = if group_by.is_empty() {
                1.0
            } else {
                GROUPS_ESTIMATE
            };
            let out_rate = first
                .rate_hz
                .map(|r| r.min(groups / period.as_secs_f64().max(1e-9)));
            StreamProps {
                schema,
                tgran: TemporalGranularity::Custom(period.as_millis().max(1)),
                sgran: if group_by.is_empty() {
                    SpatialGranularity::World
                } else {
                    first.sgran
                },
                rate_hz: out_rate,
            }
        }
        OpSpec::Join { period, predicate } => {
            let second = inputs.get(1).unwrap_or(first);
            let correlated = join_sides(predicate, inputs)
                .map(|s| !s.left_refs.is_empty() && !s.right_refs.is_empty())
                .unwrap_or(false);
            let rate_hz = match (first.rate_hz, second.rate_hz) {
                (Some(l), Some(r)) => Some(if correlated {
                    l.max(r)
                } else {
                    // Uncorrelated sides multiply: per second, up to
                    // l·period × r·period matches every period.
                    l * r * period.as_secs_f64()
                }),
                _ => None,
            };
            StreamProps {
                schema,
                tgran: first.tgran.meet(second.tgran),
                sgran: first.sgran.meet(second.sgran),
                rate_hz,
            }
        }
    }
}

/// Which side of a join each predicate attribute constrains.
#[derive(Debug, Default)]
pub struct JoinSides {
    /// Predicate attributes resolved against the left input.
    pub left_refs: Vec<String>,
    /// Predicate attributes resolved against the right input (under their
    /// joined names, i.e. `right_`-prefixed on collision).
    pub right_refs: Vec<String>,
}

/// Classify a join predicate's attribute references by input side. `None`
/// when the predicate does not parse or either input schema is unknown.
pub fn join_sides(predicate: &str, inputs: &[StreamProps]) -> Option<JoinSides> {
    let left = inputs.first()?.schema.clone()?;
    let right = inputs.get(1)?.schema.clone()?;
    let expr = sl_expr::parse(predicate).ok()?;
    let left_names: HashSet<&str> = left.fields().iter().map(|f| f.name.as_str()).collect();
    let right_names: HashSet<String> = joined_right_names(&left, &right).into_iter().collect();
    let mut sides = JoinSides::default();
    for attr in expr.referenced_attrs() {
        if left_names.contains(attr) {
            sides.left_refs.push(attr.to_string());
        } else if right_names.contains(attr) {
            sides.right_refs.push(attr.to_string());
        }
        // Metadata pseudo-attributes (`_ts`, ...) constrain the joined tuple,
        // not a specific side.
    }
    Some(sides)
}

/// The names the right input's fields take in the joined schema (mirrors
/// [`Schema::join`]'s collision handling: `right_` prefixes).
pub fn joined_right_names(left: &Schema, right: &Schema) -> Vec<String> {
    let mut taken: HashSet<String> = left.fields().iter().map(|f| f.name.clone()).collect();
    let mut out = Vec::with_capacity(right.len());
    for f in right.fields() {
        let mut name = f.name.clone();
        while taken.contains(&name) {
            name.insert_str(0, "right_");
        }
        taken.insert(name.clone());
        out.push(name);
    }
    out
}

/// Bytes-per-tuple estimate from a schema (values + STT metadata).
pub fn width_bytes(schema: &Schema) -> f64 {
    // Timestamp + location + sensor id + theme pointer — the serialized
    // envelope every tuple carries.
    let meta = 40.0;
    meta + schema
        .fields()
        .iter()
        .map(|f| match f.ty {
            AttrType::Bool => 1.0,
            AttrType::Int | AttrType::Float | AttrType::Time => 8.0,
            AttrType::Geo => 16.0,
            AttrType::Str => 24.0, // average short string
        })
        .sum::<f64>()
}

struct NoAttrs;

impl Bindings for NoAttrs {
    fn lookup(&self, name: &str) -> Result<Value, ExprError> {
        Err(ExprError::Stt(SttError::UnknownAttribute(name.to_string())))
    }
}

/// Constant-fold an expression that references no attributes. `None` when
/// the expression references attributes, does not parse, or fails to
/// evaluate (e.g. division by zero — someone else's diagnostic).
pub fn fold_constant(source: &str) -> Option<Value> {
    let expr = sl_expr::parse(source).ok()?;
    fold_expr(&expr)
}

/// Constant-fold an already-parsed expression (see [`fold_constant`]).
pub fn fold_expr(expr: &Expr) -> Option<Value> {
    if !expr.referenced_attrs().is_empty() {
        return None;
    }
    sl_expr::eval(expr, &NoAttrs).ok()
}

/// All expression source texts carried by a spec, with the parameter each
/// belongs to (mirrors the contexts attached by the operator constructors).
pub fn spec_exprs(spec: &OpSpec) -> Vec<(String, &str)> {
    match spec {
        OpSpec::Filter { condition } => vec![("filter condition".into(), condition.as_str())],
        OpSpec::Transform { assignments } => assignments
            .iter()
            .map(|(attr, src)| (format!("assignment to `{attr}`"), src.as_str()))
            .collect(),
        OpSpec::VirtualProperty { property, spec } => {
            vec![(
                format!("specification of property `{property}`"),
                spec.as_str(),
            )]
        }
        OpSpec::Join { predicate, .. } => vec![("join predicate".into(), predicate.as_str())],
        OpSpec::TriggerOn { condition, .. } | OpSpec::TriggerOff { condition, .. } => {
            vec![("trigger condition".into(), condition.as_str())]
        }
        OpSpec::CullTime { .. } | OpSpec::CullSpace { .. } | OpSpec::Aggregate { .. } => Vec::new(),
    }
}

/// Attribute names a spec consumes *outside* expressions (aggregation keys
/// and the aggregated attribute).
pub fn spec_attr_refs(spec: &OpSpec) -> Vec<&str> {
    match spec {
        OpSpec::Aggregate { group_by, attr, .. } => group_by
            .iter()
            .map(String::as_str)
            .chain(attr.as_deref())
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic freely
mod tests {
    use super::*;
    use sl_stt::Field;

    fn schema(fields: &[(&str, AttrType)]) -> SchemaRef {
        Schema::new(fields.iter().map(|(n, t)| Field::new(n, *t)).collect())
            .unwrap()
            .into_ref()
    }

    #[test]
    fn fold_constant_evaluates_literal_predicates() {
        assert_eq!(fold_constant("1 > 2"), Some(Value::Bool(false)));
        assert_eq!(fold_constant("true or false"), Some(Value::Bool(true)));
        assert_eq!(fold_constant("temperature > 2"), None); // has attrs
        assert_eq!(fold_constant("1 / 0"), None); // eval error
    }

    #[test]
    fn joined_right_names_prefix_on_collision() {
        let l = schema(&[("station", AttrType::Str), ("temperature", AttrType::Float)]);
        let r = schema(&[("station", AttrType::Str), ("rain", AttrType::Float)]);
        assert_eq!(
            joined_right_names(&l, &r),
            vec!["right_station".to_string(), "rain".into()]
        );
    }

    #[test]
    fn width_counts_fields_and_meta() {
        let s = schema(&[("a", AttrType::Float), ("b", AttrType::Str)]);
        assert_eq!(width_bytes(&s), 40.0 + 8.0 + 24.0);
    }
}
