//! The continuous-query tier (`SL09x`): live `sl-cq` registrations
//! checked against the session's engine configuration.
//!
//! Unlike the dataflow and deployment tiers, which analyze a document
//! before activation, this tier analyzes a *running* session's standing
//! queries: the registrations exist only at run time, so `Session::lint_cq`
//! distils them into a plain-facts [`CqModel`] (no `sl-cq` dependency
//! here) and this pass reasons about the combination.
//!
//! * **SL090** — a materialized view whose standing query never bounds its
//!   time range, in a session with no retention window: every ingested
//!   event contributes forever, so the view's contribution lists (kept for
//!   exact retraction) grow without bound. Either bound the query's time
//!   range or configure `EngineConfig::retention`.
//! * **SL091** — an unbounded subscriber queue while ingress admission
//!   control is on: the operator queues are carefully bounded, but every
//!   shed-survivor lands in a subscriber queue nothing bounds, so the
//!   serving side silently undoes the ingest side's memory guarantee.

use crate::diag::{Diagnostic, LintCode, LintReport};

/// What lint needs to know about one materialized view.
#[derive(Debug, Clone)]
pub struct CqViewFacts {
    /// Registration name.
    pub name: String,
    /// True if the standing query bounds its time range.
    pub time_bounded: bool,
}

/// What lint needs to know about one subscription.
#[derive(Debug, Clone)]
pub struct CqSubFacts {
    /// Registration name.
    pub name: String,
    /// True if the push queue has a capacity bound.
    pub bounded: bool,
}

/// The facts the continuous-query tier reasons about: live registrations
/// plus the two engine knobs that bound their memory.
#[derive(Debug, Clone, Default)]
pub struct CqModel {
    /// Live materialized views.
    pub views: Vec<CqViewFacts>,
    /// Live subscriptions.
    pub subscriptions: Vec<CqSubFacts>,
    /// True if `EngineConfig::retention` is set (eviction horizon exists).
    pub retention_configured: bool,
    /// True if ingress admission control is on (bounded operator queues).
    pub admission_enabled: bool,
}

/// Lint a session's continuous-query registrations. See the module docs
/// for the codes.
pub fn lint_cq(model: &CqModel) -> LintReport {
    let mut diags = Vec::new();
    if !model.retention_configured {
        for view in &model.views {
            if !view.time_bounded {
                diags.push(Diagnostic::new(
                    LintCode::UnboundedViewGrowth,
                    view.name.clone(),
                    format!(
                        "view '{}' has no time bound and the engine has no retention \
                         window: its per-cell contribution lists grow with every \
                         ingested event, forever. Bound the query's time range or set \
                         `EngineConfig::retention`",
                        view.name
                    ),
                ));
            }
        }
    }
    if model.admission_enabled {
        for sub in &model.subscriptions {
            if !sub.bounded {
                diags.push(Diagnostic::new(
                    LintCode::UnboundedSubscriberQueue,
                    sub.name.clone(),
                    format!(
                        "subscription '{}' has an unbounded delta queue while ingress \
                         admission control bounds the operator queues: a slow consumer \
                         re-opens the memory exposure admission control closed. Give \
                         the subscription a capacity (any overflow policy)",
                        sub.name
                    ),
                ));
            }
        }
    }
    LintReport::new("continuous-queries", diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(name: &str, time_bounded: bool) -> CqViewFacts {
        CqViewFacts {
            name: name.into(),
            time_bounded,
        }
    }

    fn sub(name: &str, bounded: bool) -> CqSubFacts {
        CqSubFacts {
            name: name.into(),
            bounded,
        }
    }

    #[test]
    fn empty_model_is_clean() {
        assert!(lint_cq(&CqModel::default()).diagnostics.is_empty());
    }

    #[test]
    fn sl090_retention_silences() {
        let mut model = CqModel {
            views: vec![view("dash", false)],
            ..CqModel::default()
        };
        assert_eq!(lint_cq(&model).diagnostics.len(), 1);
        model.retention_configured = true;
        assert!(lint_cq(&model).diagnostics.is_empty());
    }

    #[test]
    fn sl091_needs_admission_on() {
        let mut model = CqModel {
            subscriptions: vec![sub("slow", false)],
            ..CqModel::default()
        };
        assert!(lint_cq(&model).diagnostics.is_empty());
        model.admission_enabled = true;
        assert_eq!(lint_cq(&model).diagnostics.len(), 1);
    }
}
