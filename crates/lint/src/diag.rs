//! The diagnostics framework: stable lint codes, severities, and the
//! accumulated report.
//!
//! Codes are grouped by decade — `SL00x` structural, `SL01x` granularity,
//! `SL02x` boundedness, `SL03x` rate/volume, `SL04x` dead code — and are
//! stable identifiers: tooling (and DESIGN.md) may reference them by name.

use std::collections::BTreeSet;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; the dataflow is still sound.
    Info,
    /// Almost certainly a mistake; deployment proceeds but will misbehave.
    Warning,
    /// The dataflow cannot be soundly activated (paper §1's consistency gate).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

macro_rules! lint_codes {
    ($( $variant:ident = ($code:literal, $sev:ident, $title:literal), )*) => {
        /// A stable lint code.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum LintCode {
            $(
                #[doc = $title]
                $variant,
            )*
        }

        impl LintCode {
            /// Every code, in numeric order.
            pub const ALL: &'static [LintCode] = &[$(LintCode::$variant),*];

            /// The stable `SL0xx` identifier.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(LintCode::$variant => $code,)*
                }
            }

            /// The code's default severity.
            pub fn severity(self) -> Severity {
                match self {
                    $(LintCode::$variant => Severity::$sev,)*
                }
            }

            /// One-line description of what the code means.
            pub fn title(self) -> &'static str {
                match self {
                    $(LintCode::$variant => $title,)*
                }
            }
        }
    };
}

lint_codes! {
    // SL00x — structural consistency (the paper §3 "checks in order to draw
    // only dataflows that can be soundly translated").
    DuplicateName = ("SL001", Error, "duplicate declaration name"),
    UnknownInput = ("SL002", Error, "input references a name that is not a producer"),
    WrongArity = ("SL003", Error, "operator consumes the wrong number of streams"),
    Cycle = ("SL004", Error, "dataflow contains a dependency cycle"),
    BadTriggerTarget = ("SL005", Error, "trigger targets a name that is not a source"),
    GatedNeverActivated = ("SL006", Error, "gated source is never activated by a trigger-on"),
    BadWiring = ("SL007", Error, "malformed sink or channel wiring"),
    SchemaError = ("SL008", Error, "expression or schema error at an operator"),
    NoSchema = ("SL009", Info, "source schema unknown; schema-dependent passes skipped"),
    // SL01x — STT granularity consistency (paper §2).
    IncomparableGranularity = ("SL010", Warning, "join composes incomparable temporal granularities"),
    MisalignedAggregation = ("SL011", Warning, "aggregation window does not align with input granularity"),
    SpatialCollapse = ("SL012", Info, "ungrouped aggregation collapses spatial granularity"),
    MixedGranularityJoin = ("SL013", Info, "join composes streams at different temporal granularities"),
    // SL02x — boundedness of blocking-operator caches.
    WindowGap = ("SL020", Warning, "sliding window span shorter than its evaluation period"),
    UnconstrainedJoin = ("SL021", Warning, "join predicate leaves one side unconstrained"),
    UnboundedCache = ("SL022", Warning, "blocking-operator cache exceeds the tuple budget"),
    // SL03x — rate/volume feasibility against the target network.
    UnsatisfiableQos = ("SL030", Warning, "channel QoS cannot be satisfied by any link"),
    LinkOverload = ("SL031", Warning, "estimated stream volume exceeds link capacity"),
    CpuOverload = ("SL032", Warning, "estimated operator demand exceeds cluster capacity"),
    SilentSource = ("SL033", Warning, "source filter matches no advertised sensors"),
    UnmitigatedOverload = ("SL034", Warning, "sensor rates exceed operator capacity with no overload policy"),
    // SL04x — dead code.
    DeadEnd = ("SL040", Warning, "operator output reaches no sink or trigger"),
    RedundantTrigger = ("SL041", Warning, "trigger-on activates an already-active source"),
    UnusedProperty = ("SL042", Warning, "virtual property is never used downstream"),
    AlwaysFalse = ("SL043", Warning, "predicate is constantly false"),
    AlwaysTrue = ("SL044", Info, "filter predicate is constantly true"),
    // SL05x — deployment concurrency: activation liveness and the
    // credit-based backpressure layer (DESIGN.md §5g). Warnings, not
    // errors: the validator accepts these documents; they misbehave only
    // under the analyzed engine configuration.
    ActivationDeadlock = ("SL050", Warning, "gated sources form an activation cycle no trigger can break"),
    IneffectiveBackpressure = ("SL051", Warning, "Block policy cannot absorb a blocking producer's tick burst"),
    SharedCreditStarvation = ("SL052", Warning, "sources share sensors, so Block throttling one starves the other"),
    LossyBlockPreemption = ("SL053", Warning, "global-capacity preemption sheds despite the Block policy"),
    // SL06x — shard safety under `parallelism > 1` (DESIGN.md §5f).
    FruitlessParallelism = ("SL060", Warning, "parallelism configured but no operator is shardable"),
    OrderSensitiveMerge = ("SL061", Warning, "order-sensitive operator downstream of a merge under parallelism"),
    SpaceShardWithoutLocation = ("SL062", Warning, "Space shard key with unlocated sensors degrades to sensor hashing"),
    ShardSkew = ("SL063", Warning, "fewer distinct bound sensors than shard workers"),
    // SL07x — recovery coverage under the analyzed fault plan.
    UncheckpointedState = ("SL070", Warning, "crash plan with checkpoints disabled loses blocking-operator state"),
    VolatileCheckpoints = ("SL071", Warning, "checkpoints enabled but not durable under a crash plan"),
    BreakerRetryConflict = ("SL072", Warning, "breaker opens mid-retry and outlives the remaining backoff budget"),
    // SL08x — worst-case resource bounds (abstract interpretation of
    // advertised rates against the overload-control configuration).
    UnboundedQueueGrowth = ("SL080", Warning, "ingress queue grows without bound at advertised rates"),
    PeakMemoryExceedsBudget = ("SL081", Warning, "predicted peak memory exceeds the configured budget"),
    TickBurstOverflow = ("SL082", Warning, "blocking producer's tick burst overflows the bounded queue"),
    DlqUndershoot = ("SL083", Warning, "predicted burst shedding exceeds dead-letter capacity"),

    // SL09x — continuous queries (live sl-cq registrations checked
    // against the session's engine configuration).
    UnboundedViewGrowth = ("SL090", Warning, "materialized view with unbounded time range and no retention horizon"),
    UnboundedSubscriberQueue = ("SL091", Warning, "unbounded subscriber queue while ingress admission control is on"),
    CompactionDisabled = ("SL092", Warning, "retention configured but cold-tier compaction disabled on a durable deployment"),
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a coded, severity-ranked message attributed to a dataflow
/// node and (when the document form is available) a DSN source line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: LintCode,
    /// Severity (defaults to the code's).
    pub severity: Severity,
    /// The node (source/service/sink) or channel the finding is about, when
    /// attributable.
    pub node: Option<String>,
    /// 1-based line of the node's declaration in the canonical DSN text.
    pub dsn_line: Option<usize>,
    /// Human-readable explanation, including the remedy where one exists.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity, attributed to `node`.
    pub fn new(code: LintCode, node: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            node: Some(node.into()),
            dsn_line: None,
            message: message.into(),
        }
    }

    /// A diagnostic about the document as a whole.
    pub fn global(code: LintCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            node: None,
            dsn_line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(node) = &self.node {
            write!(f, "\n  --> `{node}`")?;
            if let Some(line) = self.dsn_line {
                write!(f, " (dsn line {line})")?;
            }
        }
        Ok(())
    }
}

/// Every finding from one lint run, ordered worst-first.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// The dataflow name (the DSN document name).
    pub dataflow: String,
    /// All findings, sorted by severity (errors first), then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Build a report, sorting findings worst-first (then by code and site).
    pub fn new(dataflow: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.node.cmp(&b.node))
        });
        LintReport {
            dataflow: dataflow.into(),
            diagnostics,
        }
    }

    /// Findings at exactly this severity.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.at(Severity::Error).count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.at(Severity::Warning).count()
    }

    /// True when the report has no errors and no warnings (infos allowed) —
    /// the bar the bundled examples are held to.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.warning_count() == 0
    }

    /// True when at least one finding carries this code.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct codes present.
    pub fn codes(&self) -> BTreeSet<LintCode> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Render the report as one line of JSON with the stable schema the
    /// `sl-lint --format json` contract documents:
    ///
    /// ```json
    /// {"dataflow": "...",
    ///  "summary": {"errors": 0, "warnings": 0, "infos": 0},
    ///  "diagnostics": [{"code": "SL0xx", "severity": "...",
    ///                   "node": "..."|null, "span": {"line": 1}|null,
    ///                   "message": "..."}]}
    /// ```
    ///
    /// Field order, names, and the `null` encodings are stable; CI tooling
    /// may parse this without a version guard.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"dataflow\":\"{}\",\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}},\"diagnostics\":[",
            json_escape(&self.dataflow),
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len() - self.error_count() - self.warning_count(),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let node = match &d.node {
                Some(n) => format!("\"{}\"", json_escape(n)),
                None => "null".to_string(),
            };
            let span = match d.dsn_line {
                Some(line) => format!("{{\"line\":{line}}}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"node\":{node},\"span\":{span},\"message\":\"{}\"}}",
                d.code,
                d.severity,
                json_escape(&d.message),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Render the whole report in `rustc` style, with a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (e, w) = (self.error_count(), self.warning_count());
        let i = self.diagnostics.len() - e - w;
        out.push_str(&format!(
            "{}: {e} error(s), {w} warning(s), {i} info(s)\n",
            self.dataflow
        ));
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        for c in LintCode::ALL {
            assert!(c.as_str().starts_with("SL0"), "{c}");
            assert_eq!(c.as_str().len(), 5, "{c}");
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(!c.title().is_empty());
        }
        assert!(LintCode::ALL.len() >= 8);
    }

    #[test]
    fn report_sorts_errors_first_and_counts() {
        let report = LintReport::new(
            "t",
            vec![
                Diagnostic::new(LintCode::AlwaysTrue, "f", "noop"),
                Diagnostic::new(LintCode::DuplicateName, "x", "dup"),
                Diagnostic::new(LintCode::WindowGap, "w", "gap"),
            ],
        );
        assert_eq!(report.diagnostics[0].code, LintCode::DuplicateName);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
        assert!(report.has(LintCode::WindowGap));
        assert!(report.render().contains("error[SL001]"));
    }

    #[test]
    fn json_schema_is_stable() {
        let mut d = Diagnostic::new(LintCode::WindowGap, "w\"in", "a \"gap\"\nhere");
        d.dsn_line = Some(7);
        let report = LintReport::new("t", vec![d, Diagnostic::global(LintCode::NoSchema, "n")]);
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"dataflow\":\"t\",\"summary\":{\"errors\":0,\"warnings\":1,\"infos\":1},\
             \"diagnostics\":[\
             {\"code\":\"SL020\",\"severity\":\"warning\",\"node\":\"w\\\"in\",\
             \"span\":{\"line\":7},\"message\":\"a \\\"gap\\\"\\nhere\"},\
             {\"code\":\"SL009\",\"severity\":\"info\",\"node\":null,\
             \"span\":null,\"message\":\"n\"}]}"
        );
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\tb\u{1}"), "a\\tb\\u0001");
    }

    #[test]
    fn info_only_report_is_clean() {
        let report = LintReport::new(
            "t",
            vec![Diagnostic::global(LintCode::NoSchema, "no schema")],
        );
        assert!(report.is_clean());
        assert_eq!(report.codes().len(), 1);
    }
}
