//! Plain-text deployment descriptions for the `sl-lint` CLI.
//!
//! The library entry points take an [`EngineConfig`] and a [`FaultPlan`]
//! directly; the CLI needs file formats for both. Both formats are
//! deliberately tiny — `key = value` lines for the config, one verb per
//! line for the plan — with `#` comments and blank lines ignored.
//!
//! ```text
//! # deploy.conf
//! queue_capacity = 1024        # or `none`
//! policy = block               # block | shed_oldest | shed_newest | sample:0.5
//! parallelism = 4
//! shard_key = space            # space | sensor | round_robin
//! checkpoint = on
//! durable = on
//! retention_ms = 600000        # or `none`
//! compaction = on
//! ```
//!
//! ```text
//! # chaos.plan
//! crash node=1 at_ms=5000
//! restart node=1 at_ms=20000
//! flap link=0 at_ms=30000 outage_ms=2000
//! stall sensor=2 at_ms=10000 outage_ms=15000
//! burst sensor=1 at_ms=40000 window_ms=10000 factor=3
//! ```

use sl_engine::{EngineConfig, OverflowPolicy};
use sl_faults::FaultPlan;
use sl_stt::Duration;

/// A parsed deployment description: the engine configuration plus the
/// durability flag (which is a property of how the engine is *opened*, not
/// of the config struct).
#[derive(Debug, Clone, Default)]
pub struct DeploySpec {
    /// The engine configuration.
    pub config: EngineConfig,
    /// The engine persists checkpoints and the warehouse durably.
    pub durable: bool,
    /// The durable warehouse runs cold-tier compaction.
    pub compaction: bool,
}

/// Parse a `key = value` deployment-config file. Unknown keys are errors —
/// a typo'd knob silently keeping its default would defeat the point of
/// pre-flight analysis.
pub fn parse_deploy_config(text: &str) -> Result<DeploySpec, String> {
    let mut spec = DeploySpec::default();
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| err(i, "expected `key = value`"))?;
        let cfg = &mut spec.config;
        match key {
            "queue_capacity" => {
                cfg.overload.queue_capacity = match value {
                    "none" => None,
                    n => Some(parse_num(i, key, n)?),
                }
            }
            "global_capacity" => {
                cfg.overload.global_capacity = match value {
                    "none" => None,
                    n => Some(parse_num(i, key, n)?),
                }
            }
            "policy" => {
                cfg.overload.policy = match value {
                    "block" => OverflowPolicy::Block,
                    "shed_oldest" => OverflowPolicy::ShedOldest,
                    "shed_newest" => OverflowPolicy::ShedNewest,
                    other => match other.strip_prefix("sample:") {
                        Some(p) => OverflowPolicy::Sample(
                            p.parse::<f64>()
                                .map_err(|_| err(i, &format!("bad sample probability `{p}`")))?,
                        ),
                        None => return Err(err(i, &format!("unknown policy `{other}`"))),
                    },
                }
            }
            "parallelism" => cfg.parallelism = parse_num(i, key, value)?,
            "shard_key" => {
                cfg.shard_key = match value {
                    "space" => sl_engine::ShardKey::Space,
                    "sensor" => sl_engine::ShardKey::Sensor,
                    "round_robin" => sl_engine::ShardKey::RoundRobin,
                    other => return Err(err(i, &format!("unknown shard_key `{other}`"))),
                }
            }
            "checkpoint" => cfg.checkpoint_enabled = parse_bool(i, key, value)?,
            "durable" => spec.durable = parse_bool(i, key, value)?,
            "compaction" => spec.compaction = parse_bool(i, key, value)?,
            "retention_ms" => {
                cfg.retention = match value {
                    "none" => None,
                    n => Some(Duration::from_millis(parse_num(i, key, n)?)),
                }
            }
            "retry" => cfg.retry_enabled = parse_bool(i, key, value)?,
            "retry_attempts" => cfg.retry.max_attempts = parse_num(i, key, value)?,
            "breaker" => cfg.overload.breaker_enabled = parse_bool(i, key, value)?,
            "breaker_threshold" => cfg.overload.breaker_threshold = parse_num(i, key, value)?,
            "breaker_cooldown_ms" => {
                cfg.overload.breaker_cooldown = Duration::from_millis(parse_num(i, key, value)?)
            }
            "dlq_capacity" => cfg.dlq_capacity = parse_num(i, key, value)?,
            other => return Err(err(i, &format!("unknown key `{other}`"))),
        }
    }
    Ok(spec)
}

/// Parse a one-verb-per-line fault-plan file.
pub fn parse_fault_plan(text: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let verb = words.next().unwrap_or_default();
        let mut fields = Fields::parse(i, words)?;
        plan = match verb {
            "crash" => {
                let node = fields.take(i, "node")?;
                let at = fields.take_ms(i, "at_ms")?;
                plan.node_crash(node as u32, at)
            }
            "restart" => {
                let node = fields.take(i, "node")?;
                let at = fields.take_ms(i, "at_ms")?;
                plan.node_restart(node as u32, at)
            }
            "flap" => {
                let link = fields.take(i, "link")?;
                let at = fields.take_ms(i, "at_ms")?;
                let outage = fields.take_ms(i, "outage_ms")?;
                plan.link_flap(link as u32, at, outage)
            }
            "stall" => {
                let sensor = fields.take(i, "sensor")?;
                let at = fields.take_ms(i, "at_ms")?;
                let outage = fields.take_ms(i, "outage_ms")?;
                plan.sensor_stall(sensor, at, outage)
            }
            "burst" => {
                let sensor = fields.take(i, "sensor")?;
                let at = fields.take_ms(i, "at_ms")?;
                let window = fields.take_ms(i, "window_ms")?;
                let factor = fields.take(i, "factor")?;
                plan.burst(sensor, at, window, factor as u32)
            }
            other => return Err(err(i, &format!("unknown fault verb `{other}`"))),
        };
        fields.finish(i)?;
    }
    Ok(plan)
}

/// `key=value` operands of one plan line.
struct Fields(Vec<(String, u64)>);

impl Fields {
    fn parse<'a>(line: usize, words: impl Iterator<Item = &'a str>) -> Result<Fields, String> {
        let mut fields = Vec::new();
        for w in words {
            let (k, v) = w
                .split_once('=')
                .ok_or_else(|| err(line, &format!("expected `key=value`, got `{w}`")))?;
            let n = v
                .parse::<u64>()
                .map_err(|_| err(line, &format!("bad number `{v}` for `{k}`")))?;
            fields.push((k.to_string(), n));
        }
        Ok(Fields(fields))
    }

    fn take(&mut self, line: usize, key: &str) -> Result<u64, String> {
        let pos = self
            .0
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| err(line, &format!("missing `{key}=`")))?;
        Ok(self.0.remove(pos).1)
    }

    fn take_ms(&mut self, line: usize, key: &str) -> Result<Duration, String> {
        Ok(Duration::from_millis(self.take(line, key)?))
    }

    fn finish(self, line: usize) -> Result<(), String> {
        match self.0.first() {
            None => Ok(()),
            Some((k, _)) => Err(err(line, &format!("unexpected field `{k}`"))),
        }
    }
}

fn strip_comment(line: &str) -> &str {
    line.split('#').next().unwrap_or_default().trim()
}

fn err(line: usize, msg: &str) -> String {
    format!("line {}: {msg}", line + 1)
}

fn parse_num<T: std::str::FromStr>(line: usize, key: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| err(line, &format!("bad number `{value}` for `{key}`")))
}

fn parse_bool(line: usize, key: &str, value: &str) -> Result<bool, String> {
    match value {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(err(
            line,
            &format!("bad flag `{other}` for `{key}` (on/off)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may panic freely
    use super::*;
    use sl_faults::FaultAction;

    #[test]
    fn config_round_trip() {
        let spec = parse_deploy_config(
            "# ci deployment\n\
             queue_capacity = 1024\n\
             policy = shed_oldest\n\
             global_capacity = none\n\
             parallelism = 4   # four workers\n\
             shard_key = sensor\n\
             checkpoint = on\n\
             durable = on\n\
             retention_ms = 600000\n\
             compaction = on\n\
             breaker = on\n\
             breaker_threshold = 2\n\
             breaker_cooldown_ms = 750\n\
             retry_attempts = 4\n\
             dlq_capacity = 512\n",
        )
        .unwrap();
        assert_eq!(spec.config.overload.queue_capacity, Some(1024));
        assert_eq!(spec.config.overload.policy, OverflowPolicy::ShedOldest);
        assert_eq!(spec.config.overload.global_capacity, None);
        assert_eq!(spec.config.parallelism, 4);
        assert_eq!(spec.config.shard_key, sl_engine::ShardKey::Sensor);
        assert!(spec.config.checkpoint_enabled && spec.durable);
        assert!(spec.compaction);
        assert_eq!(spec.config.retention, Some(Duration::from_millis(600_000)));
        assert_eq!(
            parse_deploy_config("retention_ms = none")
                .unwrap()
                .config
                .retention,
            None
        );
        assert!(spec.config.overload.breaker_enabled);
        assert_eq!(spec.config.overload.breaker_threshold, 2);
        assert_eq!(
            spec.config.overload.breaker_cooldown,
            Duration::from_millis(750)
        );
        assert_eq!(spec.config.retry.max_attempts, 4);
        assert_eq!(spec.config.dlq_capacity, 512);
    }

    #[test]
    fn config_rejects_unknown_and_malformed() {
        assert!(parse_deploy_config("qeue_capacity = 4").is_err());
        assert!(parse_deploy_config("parallelism four").is_err());
        assert!(parse_deploy_config("policy = drop_everything").is_err());
        assert!(parse_deploy_config("checkpoint = yes").is_err());
        assert!(parse_deploy_config("policy = sample:0.25").is_ok());
    }

    #[test]
    fn plan_round_trip() {
        let plan = parse_fault_plan(
            "crash node=1 at_ms=5000\n\
             restart node=1 at_ms=20000\n\
             flap link=0 at_ms=30000 outage_ms=2000\n\
             stall sensor=2 at_ms=1000 outage_ms=500\n\
             burst sensor=1 at_ms=40000 window_ms=10000 factor=3\n",
        )
        .unwrap();
        let events = plan.events();
        // flap = down+up, stall = stall+resume, burst = start+stop
        assert_eq!(events.len(), 8);
        assert!(events
            .iter()
            .any(|e| e.action == FaultAction::NodeCrash { node: 1 }));
        assert!(events.iter().any(|e| matches!(
            e.action,
            FaultAction::BurstStart {
                sensor: 1,
                factor: 3
            }
        )));
    }

    #[test]
    fn plan_rejects_bad_lines() {
        assert!(parse_fault_plan("explode node=1 at_ms=0").is_err());
        assert!(parse_fault_plan("crash node=1").is_err());
        assert!(parse_fault_plan("crash node=1 at_ms=0 extra=2").is_err());
        assert!(parse_fault_plan("crash node=one at_ms=0").is_err());
    }
}
