//! Boundedness pass (`SL020`–`SL022`): blocking operators cache tuples
//! between ticks (paper §2's blocking Table-1 operations); this pass bounds
//! those caches statically. A sliding window shorter than its tick period
//! leaks tuples; a join predicate that never constrains one side turns the
//! tick into a cross product; and a cache whose estimated population
//! exceeds the budget needs a cull upstream.

use super::PassCx;
use crate::analysis::join_sides;
use crate::diag::{Diagnostic, LintCode};
use sl_ops::OpSpec;

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    for svc in &cx.doc.services {
        match &svc.spec {
            OpSpec::Aggregate {
                period,
                sliding: Some(span),
                ..
            } if span < period => {
                out.push(Diagnostic::new(
                    LintCode::WindowGap,
                    &svc.name,
                    format!(
                        "sliding aggregation `{}` keeps a {span} window but only ticks \
                         every {period}: tuples arriving more than {span} before a tick \
                         are evicted unseen — widen the window to at least the period",
                        svc.name
                    ),
                ));
            }
            OpSpec::Join { predicate, .. } => {
                if let Some(sides) =
                    input_props(cx, svc).and_then(|props| join_sides(predicate, &props))
                {
                    let unconstrained =
                        match (sides.left_refs.is_empty(), sides.right_refs.is_empty()) {
                            (true, true) => Some("either"),
                            (true, false) => Some("the left"),
                            (false, true) => Some("the right"),
                            (false, false) => None,
                        };
                    if let Some(side) = unconstrained {
                        out.push(Diagnostic::new(
                            LintCode::UnconstrainedJoin,
                            &svc.name,
                            format!(
                                "join `{}` never constrains {side} input in its predicate \
                                 `{predicate}`: every cached tuple on an unconstrained side \
                                 matches, so each tick emits a cross product — correlate \
                                 the sides (e.g. an equality on a shared key)",
                                svc.name
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }

        // Cache population estimate for every blocking operator.
        let Some(period) = svc.spec.period() else {
            continue;
        };
        let span = match &svc.spec {
            OpSpec::Aggregate {
                sliding: Some(span),
                ..
            } => (*span).max(period),
            _ => period,
        };
        let mut est = 0.0;
        let mut known = true;
        for input in &svc.inputs {
            match cx.props_of(input).and_then(|p| p.rate_hz) {
                Some(rate) => est += rate * span.as_secs_f64(),
                None => known = false,
            }
        }
        if known && est > cx.config.cache_budget_tuples {
            let remedy = if has_cull_upstream(cx, &svc.name) {
                "shorten the window or cull harder upstream"
            } else {
                "add a cull_time/cull_space upstream or shorten the window"
            };
            out.push(Diagnostic::new(
                LintCode::UnboundedCache,
                &svc.name,
                format!(
                    "blocking operator `{}` caches an estimated {est:.0} tuples per \
                     {span} window (budget: {:.0}); {remedy}",
                    svc.name, cx.config.cache_budget_tuples
                ),
            ));
        }
    }
}

fn input_props(
    cx: &PassCx<'_>,
    svc: &sl_dsn::ServiceDecl,
) -> Option<Vec<crate::analysis::StreamProps>> {
    svc.inputs.iter().map(|i| cx.props_of(i).cloned()).collect()
}

/// True when any transitive input of `name` is a cull operator.
fn has_cull_upstream(cx: &PassCx<'_>, name: &str) -> bool {
    let mut stack: Vec<&str> = match cx.doc.service(name) {
        Some(svc) => svc.inputs.iter().map(String::as_str).collect(),
        None => return false,
    };
    let mut seen = std::collections::HashSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if let Some(svc) = cx.doc.service(n) {
            if matches!(svc.spec, OpSpec::CullTime { .. } | OpSpec::CullSpace { .. }) {
                return true;
            }
            stack.extend(svc.inputs.iter().map(String::as_str));
        }
    }
    false
}
