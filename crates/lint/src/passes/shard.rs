//! Shard-safety pass (`SL060`–`SL063`): does the configured parallelism
//! actually help, and can it change observable behaviour?
//!
//! Models the engine's epoch-window batching (`shard.rs`): only shardable
//! non-blocking operators are replicated across workers; partitioning
//! follows the configured `ShardKey`. All checks need a [`DeployModel`]
//! with `parallelism > 1`.
//!
//! [`DeployModel`]: crate::model::DeployModel

use super::PassCx;
use crate::diag::{Diagnostic, LintCode};
use sl_engine::ShardKey;
use std::collections::BTreeSet;

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    let Some(model) = cx.model else {
        return;
    };
    let workers = model.config.parallelism;
    if workers <= 1 {
        return;
    }
    let Some(graph) = cx.graph else {
        return;
    };

    // SL060: the pool exists but nothing can run on it. Blocking operators
    // and culls stay single-owner, so a dataflow made only of those pays
    // thread spawn/steal overhead for zero batched tuples.
    let any_shardable = graph.ops.values().any(|f| f.shardable);
    if !any_shardable && !graph.ops.is_empty() {
        out.push(Diagnostic::global(
            LintCode::FruitlessParallelism,
            format!(
                "parallelism is {workers} but no operator in the dataflow is shardable \
                 (stateless filter/transform/virtual-property): every tuple runs on the \
                 single-owner path and the shard pool only adds overhead — drop \
                 `parallelism` to 1 or restructure the per-tuple stages"
            ),
        ));
    }

    // SL061: an order-sensitive operator (cull decimation counter) fed by a
    // merge of independently timed streams. The engine merges batched
    // outputs in drained order, which is deterministic — but a join's
    // output interleaving is an artefact of tick timing, so the counter
    // keeps an arbitrary-looking subset that shifts under any retiming.
    for (name, facts) in &graph.ops {
        if facts.order_sensitive && facts.downstream_of_join {
            out.push(Diagnostic::new(
                LintCode::OrderSensitiveMerge,
                name,
                format!(
                    "service `{name}` decimates by arrival order but sits downstream of a \
                     join under parallelism {workers}: which tuples survive depends on \
                     merge interleaving — move the cull upstream of the join or key the \
                     decimation on tuple time",
                ),
            ));
        }
    }

    // SL062/SL063 reason about how the partitioner spreads real sensors.
    let Some(registry) = cx.registry else {
        return;
    };
    let bound: Vec<_> = cx
        .doc
        .sources
        .iter()
        .flat_map(|s| registry.discover(&s.filter))
        .collect();

    // SL062: the Space key hashes a tuple's spatial granule; tuples from
    // unlocated sensors (no advertised position, no enrichment yet) all
    // hash the sensor id instead, collapsing the intended geographic
    // partition.
    if model.config.shard_key == ShardKey::Space && any_shardable {
        let unlocated = bound.iter().filter(|ad| ad.location.is_none()).count();
        if unlocated > 0 {
            out.push(Diagnostic::global(
                LintCode::SpaceShardWithoutLocation,
                format!(
                    "shard key is Space but {unlocated} bound sensor(s) advertise no \
                     position: their tuples fall back to sensor-id hashing, so the \
                     spatial partition degenerates — advertise positions, enrich with a \
                     location virtual property upstream, or use the Sensor key"
                ),
            ));
        }
    }

    // SL063: the Sensor key can spread work across at most one worker per
    // distinct sensor; fewer sensors than workers leaves workers idle.
    if model.config.shard_key == ShardKey::Sensor {
        let distinct: BTreeSet<u64> = bound.iter().map(|ad| ad.id.0).collect();
        if !distinct.is_empty() && distinct.len() < workers {
            out.push(Diagnostic::global(
                LintCode::ShardSkew,
                format!(
                    "shard key is Sensor but only {} distinct sensor(s) are bound for \
                     {workers} workers: at most {} worker(s) ever receive work — lower \
                     `parallelism` or partition by Space",
                    distinct.len(),
                    distinct.len()
                ),
            ));
        }
    }
}
