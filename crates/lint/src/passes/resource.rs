//! Resource-bound pass (`SL080`–`SL083`): worst-case queue depth, memory,
//! and shedding volume by abstract interpretation of advertised rates.
//!
//! All checks need a [`DeployModel`]; the depth arithmetic lives in
//! [`DeployGraph`](crate::model::DeployGraph), shared with
//! `predicted_peak_depths` so the soundness property test holds measured
//! peaks against exactly the numbers these diagnostics reason about.
//!
//! [`DeployModel`]: crate::model::DeployModel

use super::PassCx;
use crate::diag::{Diagnostic, LintCode};

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    let Some(model) = cx.model else {
        return;
    };
    let Some(graph) = cx.graph else {
        return;
    };
    let cfg = model.config;

    // SL080: sustained demand beyond the best single node with the whole
    // admission layer off. No queue bound, no credits, no shedding: the
    // ingress queue of the overloaded operator grows forever. This is the
    // deployment-tier refinement of SL034 (which covers the no-model CLI
    // path and is silenced when a model is attached).
    if !cfg.overload.admission_enabled() {
        if let Some(topology) = cx.topology {
            let best_node: f64 = topology
                .node_ids()
                .filter_map(|n| topology.node(n).ok())
                .filter(|n| n.up)
                .map(|n| n.cpu_capacity)
                .fold(0.0, f64::max);
            if best_node > 0.0 {
                for svc in &cx.doc.services {
                    let rate: Option<f64> = svc
                        .inputs
                        .iter()
                        .map(|i| cx.props_of(i).and_then(|p| p.rate_hz))
                        .sum::<Option<f64>>();
                    let schemas: Option<Vec<_>> = svc
                        .inputs
                        .iter()
                        .map(|i| cx.props_of(i).and_then(|p| p.schema.clone()))
                        .collect();
                    let (Some(rate), Some(op)) =
                        (rate, schemas.and_then(|s| svc.spec.instantiate(&s).ok()))
                    else {
                        continue;
                    };
                    let demand = rate * op.cost_per_tuple();
                    if demand > best_node {
                        out.push(Diagnostic::new(
                            LintCode::UnboundedQueueGrowth,
                            &svc.name,
                            format!(
                                "service `{}` demands an estimated {demand:.0} \
                                 operator-ops/s against a best node of {best_node:.0} \
                                 with admission control disabled: its ingress queue \
                                 grows without bound at the advertised rates — set \
                                 `overload.queue_capacity` or cull upstream",
                                svc.name
                            ),
                        ));
                    }
                }
            }
        }
    }

    // SL081: predicted peak memory across in-flight queues and blocking
    // window caches vs. the analysis budget. Queue term: peak depth bound ×
    // tuple width. Cache term: a blocking operator retains one period of
    // input before its tick flushes it.
    let mut peak_bytes = 0.0;
    let mut any_known = false;
    for (name, facts) in &graph.ops {
        let Some(width) = facts.in_width_bytes else {
            continue;
        };
        if let Some(bound) = graph.peak_depth_bound(name) {
            peak_bytes += bound * width;
            any_known = true;
        }
        if let (true, Some(rate), Some(period)) = (facts.blocking, facts.in_rate_hz, facts.period_s)
        {
            peak_bytes += graph.burst_factor * rate * period * width;
            any_known = true;
        }
    }
    if any_known && peak_bytes > cx.config.memory_budget_bytes {
        out.push(Diagnostic::global(
            LintCode::PeakMemoryExceedsBudget,
            format!(
                "predicted peak memory is {:.1} MiB (in-flight queues + blocking window \
                 caches at advertised rates, burst factor {:.0}) against a budget of \
                 {:.1} MiB — cull or aggregate earlier, shorten windows, or raise \
                 `memory_budget_bytes` if the budget is wrong",
                peak_bytes / (1024.0 * 1024.0),
                graph.burst_factor,
                cx.config.memory_budget_bytes / (1024.0 * 1024.0)
            ),
        ));
    }

    // SL082: a shedding policy with a queue bound smaller than a blocking
    // producer's per-tick batch. The whole batch lands at one instant, the
    // queue keeps `cap`, and the rest is condemned — every tick, by
    // design, not just under bursts.
    if model.shed_mode() {
        if let Some(cap) = cfg.overload.queue_capacity {
            for (name, facts) in &graph.ops {
                if facts.tick_burst_est > cap as f64 {
                    out.push(Diagnostic::new(
                        LintCode::TickBurstOverflow,
                        name,
                        format!(
                            "service `{name}` receives an estimated {:.0}-tuple batch \
                             per upstream tick but its shedding queue holds {cap}: \
                             roughly {:.0} tuples are condemned on every tick — raise \
                             `queue_capacity` above the batch size or aggregate harder \
                             upstream",
                            facts.tick_burst_est,
                            facts.tick_burst_est - cap as f64
                        ),
                    ));
                }
            }
        }
    }

    // SL083: shedding during a planned burst produces more dead letters
    // than the DLQ retains — the loss accounting the shed policy promises
    // is silently evicted.
    if model.shed_mode() {
        if let Some(registry) = cx.registry {
            let mut shed_est = 0.0;
            for w in model.burst_windows() {
                let Some(ad) = registry.all().find(|ad| ad.id.0 == w.sensor) else {
                    continue;
                };
                shed_est += (w.factor.max(1) as f64 - 1.0) * ad.rate_hz() * w.window.as_secs_f64();
            }
            if shed_est > cfg.dlq_capacity as f64 {
                out.push(Diagnostic::global(
                    LintCode::DlqUndershoot,
                    format!(
                        "the fault plan's bursts shed an estimated {shed_est:.0} tuples \
                         under the configured shedding policy but the dead-letter queue \
                         retains {}: early dead letters are evicted and the loss record \
                         is incomplete — raise `dlq_capacity` or absorb the burst with \
                         a larger queue",
                        cfg.dlq_capacity
                    ),
                ));
            }
        }
    }
}
