//! Dead-code pass (`SL040`–`SL044`): operators whose output can never
//! matter. An operator that reaches neither a sink nor a trigger computes
//! results nobody observes; a trigger-on aimed at an always-active source
//! is a no-op; a virtual property nobody reads downstream wastes a column;
//! and constant predicates (found by `sl-expr` constant folding) make whole
//! branches unconditionally dead or pass-through.

use super::PassCx;
use crate::analysis::{fold_constant, spec_attr_refs, spec_exprs};
use crate::diag::{Diagnostic, LintCode};
use sl_dsn::SourceMode;
use sl_ops::OpSpec;
use sl_stt::Value;
use std::collections::HashSet;

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    let live = live_set(cx);

    for svc in &cx.doc.services {
        let is_trigger = matches!(
            svc.spec,
            OpSpec::TriggerOn { .. } | OpSpec::TriggerOff { .. }
        );

        // SL040: non-trigger operators from which no sink or trigger is
        // reachable (triggers are live by side effect).
        if !is_trigger && !live.contains(svc.name.as_str()) {
            out.push(Diagnostic::new(
                LintCode::DeadEnd,
                &svc.name,
                format!(
                    "operator `{}` reaches no sink and no trigger: its results are \
                     computed and discarded — wire it to a sink or remove it",
                    svc.name
                ),
            ));
        }

        // SL041: activating a source that is already (and remains) active.
        if let OpSpec::TriggerOn { targets, .. } = &svc.spec {
            for target in targets {
                let Some(src) = cx.doc.source(target) else {
                    continue;
                };
                if src.mode == SourceMode::Active && !deactivated(cx, target) {
                    out.push(Diagnostic::new(
                        LintCode::RedundantTrigger,
                        &svc.name,
                        format!(
                            "trigger-on `{}` activates source `{target}`, which is \
                             declared active and never deactivated by any trigger-off: \
                             the activation is a no-op — declare the source gated or \
                             drop the target",
                            svc.name
                        ),
                    ));
                }
            }
        }

        // SL042: virtual properties never used downstream.
        if let OpSpec::VirtualProperty { property, .. } = &svc.spec {
            if !property_used(cx, &svc.name, property) {
                out.push(Diagnostic::new(
                    LintCode::UnusedProperty,
                    &svc.name,
                    format!(
                        "virtual property `{property}` added by `{}` is never referenced \
                         downstream and never reaches a sink — remove the operator or \
                         use the property",
                        svc.name
                    ),
                ));
            }
        }

        // SL043/SL044: constant predicates.
        for (role, source) in spec_exprs(&svc.spec) {
            // Only predicate positions: skip transform/virtual-property
            // value expressions, which may legitimately be constant.
            if !matches!(
                svc.spec,
                OpSpec::Filter { .. }
                    | OpSpec::Join { .. }
                    | OpSpec::TriggerOn { .. }
                    | OpSpec::TriggerOff { .. }
            ) {
                continue;
            }
            match fold_constant(source) {
                Some(Value::Bool(false)) | Some(Value::Null) => {
                    out.push(Diagnostic::new(
                        LintCode::AlwaysFalse,
                        &svc.name,
                        format!(
                            "the {role} of `{}` (`{source}`) is constantly false: nothing \
                             ever passes and everything downstream is dead",
                            svc.name
                        ),
                    ));
                }
                Some(Value::Bool(true)) if matches!(svc.spec, OpSpec::Filter { .. }) => {
                    out.push(Diagnostic::new(
                        LintCode::AlwaysTrue,
                        &svc.name,
                        format!(
                            "the {role} of `{}` (`{source}`) is constantly true: the \
                             filter is a no-op and can be removed",
                            svc.name
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Producers from which a sink or a trigger is reachable (reverse BFS).
fn live_set<'a>(cx: &PassCx<'a>) -> HashSet<&'a str> {
    let inputs_of = |name: &str| -> Vec<&'a str> {
        cx.doc
            .service(name)
            .map(|s| s.inputs.iter().map(String::as_str).collect())
            .or_else(|| {
                cx.doc
                    .sink(name)
                    .map(|s| s.inputs.iter().map(String::as_str).collect())
            })
            .unwrap_or_default()
    };
    let mut stack: Vec<&'a str> = Vec::new();
    for sink in &cx.doc.sinks {
        stack.extend(inputs_of(&sink.name));
    }
    for svc in &cx.doc.services {
        if matches!(
            svc.spec,
            OpSpec::TriggerOn { .. } | OpSpec::TriggerOff { .. }
        ) {
            stack.extend(svc.inputs.iter().map(String::as_str));
        }
    }
    let mut live = HashSet::new();
    while let Some(n) = stack.pop() {
        if live.insert(n) {
            stack.extend(inputs_of(n));
        }
    }
    live
}

/// True when some trigger-off targets `source` (its activation state is
/// actually managed, so re-activating it is meaningful).
fn deactivated(cx: &PassCx<'_>, source: &str) -> bool {
    cx.doc.services.iter().any(|svc| {
        matches!(&svc.spec, OpSpec::TriggerOff { targets, .. } if targets.iter().any(|t| t == source))
    })
}

/// True when `property` (added by `vp_node`) is referenced by a downstream
/// expression or still present in some sink's input schema.
fn property_used(cx: &PassCx<'_>, vp_node: &str, property: &str) -> bool {
    // Names the property may travel under after joins put the stream on the
    // right side of a collision.
    let aliases = [property.to_string(), format!("right_{property}")];

    // Forward BFS over consumers.
    let mut stack: Vec<&str> = vec![vp_node];
    let mut seen: HashSet<&str> = HashSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        for (consumer, _) in cx.consumers.get(n).map(Vec::as_slice).unwrap_or_default() {
            if cx.doc.sink(consumer).is_some() {
                // Exported: the property reaches a sink if it survived. With
                // no schema to consult, assume it did (avoid false positives).
                let exported = match cx.props_of(n).map(|p| p.schema.as_ref()) {
                    Some(Some(s)) => aliases.iter().any(|a| s.contains(a)),
                    _ => true,
                };
                if exported {
                    return true;
                }
                continue;
            }
            let Some(svc) = cx.doc.service(consumer) else {
                continue;
            };
            let referenced = spec_exprs(&svc.spec).iter().any(|(_, src)| {
                sl_expr::parse(src).is_ok_and(|e| {
                    e.referenced_attrs()
                        .iter()
                        .any(|a| aliases.iter().any(|al| al == a))
                })
            }) || spec_attr_refs(&svc.spec)
                .iter()
                .any(|a| aliases.iter().any(|al| al == a));
            if referenced {
                return true;
            }
            // The property survives this operator only if it is still in the
            // output schema (aggregates drop it unless grouped by).
            let survives = cx
                .props_of(consumer)
                .and_then(|p| p.schema.as_ref())
                .is_none_or(|s| aliases.iter().any(|a| s.contains(a)));
            if survives {
                stack.push(consumer.as_str());
            }
        }
    }
    false
}
