//! Mapping of the accumulating validators' errors onto stable lint codes
//! (`SL001`–`SL008`). The structural checks themselves live in
//! `sl_dsn::validate_full` / the schema propagation in `crate::analysis`;
//! this module only attributes and classifies.

use crate::diag::{Diagnostic, LintCode};
use sl_dsn::DsnError;

/// Classify one structural DSN error.
pub fn classify(err: &DsnError) -> Diagnostic {
    match err {
        DsnError::DuplicateName(name) => {
            Diagnostic::new(LintCode::DuplicateName, name, err.to_string())
        }
        DsnError::UnknownInput { consumer, .. } => {
            Diagnostic::new(LintCode::UnknownInput, consumer, err.to_string())
        }
        DsnError::WrongArity { service, .. } => {
            Diagnostic::new(LintCode::WrongArity, service, err.to_string())
        }
        DsnError::Cycle { witness } => Diagnostic::new(LintCode::Cycle, witness, err.to_string()),
        DsnError::UnknownTriggerTarget { service, .. } => {
            Diagnostic::new(LintCode::BadTriggerTarget, service, err.to_string())
        }
        DsnError::UnknownChannelEndpoint(name) => {
            Diagnostic::new(LintCode::BadWiring, name, err.to_string())
        }
        DsnError::Invalid(msg) => {
            let code = if msg.contains("gated source") {
                LintCode::GatedNeverActivated
            } else {
                LintCode::BadWiring
            };
            match backticked(msg) {
                Some(name) => Diagnostic::new(code, name, err.to_string()),
                None => Diagnostic::global(code, err.to_string()),
            }
        }
        DsnError::Parse { .. } => {
            // Parse errors never reach validation; classify defensively.
            Diagnostic::global(LintCode::BadWiring, err.to_string())
        }
    }
}

/// Map every accumulated structural error.
pub fn from_dsn_errors(errors: &[DsnError], out: &mut Vec<Diagnostic>) {
    out.extend(errors.iter().map(classify));
}

/// A schema-resolution failure at one operator (`SL008`). The underlying
/// expression errors name the offending parameter and sub-expression.
pub fn schema_error(service: &str, err: &sl_ops::OpError) -> Diagnostic {
    Diagnostic::new(
        LintCode::SchemaError,
        service,
        format!("service `{service}`: {err}"),
    )
}

/// The first `-delimited name in a message, for node attribution.
fn backticked(msg: &str) -> Option<&str> {
    let start = msg.find('`')? + 1;
    let len = msg[start..].find('`')?;
    Some(&msg[start..start + len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn errors_map_to_stable_codes_with_attribution() {
        let d = classify(&DsnError::DuplicateName("x".into()));
        assert_eq!(d.code, LintCode::DuplicateName);
        assert_eq!(d.node.as_deref(), Some("x"));
        assert_eq!(d.severity, Severity::Error);

        let d = classify(&DsnError::Invalid(
            "gated source `g` is never activated".into(),
        ));
        assert_eq!(d.code, LintCode::GatedNeverActivated);
        assert_eq!(d.node.as_deref(), Some("g"));

        let d = classify(&DsnError::Invalid("sink `s` has no inputs".into()));
        assert_eq!(d.code, LintCode::BadWiring);
    }
}
