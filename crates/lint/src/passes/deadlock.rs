//! Deadlock pass (`SL050`–`SL053`): credit/backpressure stall analysis.
//!
//! `SL050` is pure document analysis (trigger activation liveness) and runs
//! on every lint. `SL051`–`SL053` model the engine's `Block` overflow
//! policy — credit-based flow control that pauses *sensors* when a bounded
//! queue fills (`overload.rs`) — and only run when a [`DeployModel`] is
//! attached.
//!
//! [`DeployModel`]: crate::model::DeployModel

use super::PassCx;
use crate::diag::{Diagnostic, LintCode};
use sl_dsn::SourceMode;
use std::collections::{BTreeSet, HashSet};

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    activation_liveness(cx, out);

    let Some(model) = cx.model else {
        return;
    };

    // SL051: a bounded Block queue smaller than the expected per-tick
    // batch of an upstream blocking producer. Credits throttle *sensors*,
    // not interior operators: a tick releases its whole batch at one
    // instant regardless of queue depth, so the engine absorbs the
    // overflow past the bound (counted as `backpressure/block_overflow`)
    // and the configured capacity is fiction for this edge.
    if model.block_mode() {
        if let (Some(cap), Some(graph)) = (model.config.overload.queue_capacity, cx.graph) {
            for (name, facts) in &graph.ops {
                if facts.tick_burst_est > cap as f64 {
                    out.push(Diagnostic::new(
                        LintCode::IneffectiveBackpressure,
                        name,
                        format!(
                            "service `{name}` sits behind a blocking producer whose tick \
                             releases an estimated {:.0} tuples at once, but the Block \
                             queue holds {cap}: credits throttle sensors, not ticks, so \
                             the bound is overrun on every tick — raise `queue_capacity` \
                             above the batch size or shorten the producer's period",
                            facts.tick_burst_est
                        ),
                    ));
                }
            }
        }
    }

    // SL052: two sources bound to the *same* physical sensors under Block.
    // Revoking a sensor's generation credit to drain one source's queue
    // silences every stream that sensor feeds — the other source starves
    // through no fault of its own consumers.
    if model.block_mode() {
        if let Some(registry) = cx.registry {
            let bindings: Vec<(&str, BTreeSet<u64>)> = cx
                .doc
                .sources
                .iter()
                .map(|s| {
                    let ids = registry.discover(&s.filter).map(|ad| ad.id.0).collect();
                    (s.name.as_str(), ids)
                })
                .collect();
            for (i, (a, ids_a)) in bindings.iter().enumerate() {
                for (b, ids_b) in &bindings[i + 1..] {
                    let shared = ids_a.intersection(ids_b).count();
                    if shared > 0 {
                        out.push(Diagnostic::new(
                            LintCode::SharedCreditStarvation,
                            *a,
                            format!(
                                "sources `{a}` and `{b}` bind {shared} of the same \
                                 sensor(s) under the Block policy: throttling a sensor to \
                                 drain one source's queue starves the other — split the \
                                 filters over disjoint sensors or use a shedding policy",
                            ),
                        ));
                    }
                }
            }
        }
    }

    // SL053: Block promises zero loss, but a global capacity triggers
    // priority preemption that condemns in-flight tuples to the DLQ even
    // under Block. The two knobs contradict each other.
    if matches!(
        model.config.overload.policy,
        sl_engine::OverflowPolicy::Block
    ) && model.config.overload.global_capacity.is_some()
    {
        out.push(Diagnostic::global(
            LintCode::LossyBlockPreemption,
            "the Block policy promises zero loss, but `overload.global_capacity` is set: \
             reaching the global bound preempts in-flight tuples to the dead-letter queue \
             regardless of policy — drop the global capacity or accept a shedding policy"
                .to_string(),
        ));
    }
}

/// SL050: fixpoint liveness over trigger activation. A gated source is only
/// ever woken by a live Trigger-On that targets it; a trigger is live only
/// when all of its transitive inputs are live. Gated sources whose
/// activators can never fire (mutual gating cycles) are dead on arrival —
/// and so is everything downstream of them.
fn activation_liveness(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut live: HashSet<&str> = cx
        .doc
        .sources
        .iter()
        .filter(|s| s.mode == SourceMode::Active)
        .map(|s| s.name.as_str())
        .collect();

    // Documents are validated acyclic over data edges, so this converges;
    // trigger→gated-source activation edges are the only back edges and
    // each iteration can only grow `live`.
    let mut changed = true;
    while changed {
        changed = false;
        for svc in &cx.doc.services {
            let inputs_live =
                !svc.inputs.is_empty() && svc.inputs.iter().all(|i| live.contains(i.as_str()));
            if !inputs_live {
                continue;
            }
            if live.insert(svc.name.as_str()) {
                changed = true;
            }
            if svc.spec.kind() == "trigger_on" {
                if let Some(targets) = svc.spec.trigger_targets() {
                    for t in targets {
                        if live.insert(t.as_str()) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    for src in &cx.doc.sources {
        if src.mode != SourceMode::Gated || live.contains(src.name.as_str()) {
            continue;
        }
        // Only flag sources that *have* an activator somewhere — a gated
        // source nothing targets is a structural problem the validator and
        // dead-code passes own.
        let activators: Vec<&str> = cx
            .doc
            .services
            .iter()
            .filter(|s| {
                s.spec.kind() == "trigger_on"
                    && s.spec
                        .trigger_targets()
                        .is_some_and(|t| t.iter().any(|n| n == &src.name))
            })
            .map(|s| s.name.as_str())
            .collect();
        if !activators.is_empty() {
            out.push(Diagnostic::new(
                LintCode::ActivationDeadlock,
                &src.name,
                format!(
                    "gated source `{}` is only activated by {} — which can never fire \
                     because its own inputs transitively depend on gated sources: the \
                     activation graph has a cycle no trigger can break; start one of the \
                     sources active",
                    src.name,
                    activators
                        .iter()
                        .map(|a| format!("`{a}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
}
