//! Granularity-consistency pass (`SL010`–`SL013`): the finer/coarser
//! lattice over space/time granules (paper §2's STT model) applied to every
//! composition point. Joins of incomparable temporal granules cannot be
//! aligned; aggregation windows that do not nest the input's granules
//! straddle window boundaries; ungrouped aggregations silently coarsen
//! point-granular data to the whole subscribed area.

use super::PassCx;
use crate::diag::{Diagnostic, LintCode};
use sl_ops::OpSpec;
use sl_stt::{SpatialGranularity, TemporalGranularity};

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    for svc in &cx.doc.services {
        match &svc.spec {
            OpSpec::Join { .. } => {
                let (Some(l), Some(r)) = (svc.inputs.first(), svc.inputs.get(1)) else {
                    continue;
                };
                let (Some(lp), Some(rp)) = (cx.props_of(l), cx.props_of(r)) else {
                    continue;
                };
                if !lp.tgran.comparable(rp.tgran) {
                    out.push(Diagnostic::new(
                        LintCode::IncomparableGranularity,
                        &svc.name,
                        format!(
                            "join `{}` composes incomparable temporal granularities: `{l}` \
                             is {} and `{r}` is {}; re-aggregate one side so the granules \
                             nest before joining",
                            svc.name, lp.tgran, rp.tgran
                        ),
                    ));
                } else if lp.tgran != rp.tgran {
                    let meet = lp.tgran.meet(rp.tgran);
                    out.push(Diagnostic::new(
                        LintCode::MixedGranularityJoin,
                        &svc.name,
                        format!(
                            "join `{}` composes streams at different temporal granularities \
                             ({} vs {}); each coarse-side tuple pairs with many fine-side \
                             tuples and the output is {meet}-granular",
                            svc.name, lp.tgran, rp.tgran
                        ),
                    ));
                }
            }
            OpSpec::Aggregate {
                period, group_by, ..
            } => {
                let Some(input) = svc.inputs.first() else {
                    continue;
                };
                let Some(ip) = cx.props_of(input) else {
                    continue;
                };
                let window = TemporalGranularity::Custom(period.as_millis().max(1));
                if !ip.tgran.finer_or_equal(window) {
                    out.push(Diagnostic::new(
                        LintCode::MisalignedAggregation,
                        &svc.name,
                        format!(
                            "aggregation `{}` ticks every {period}, but its input `{input}` \
                             is {}-granular: input granules do not nest inside the window, \
                             so windows straddle granules or stay empty",
                            svc.name, ip.tgran
                        ),
                    ));
                }
                if group_by.is_empty() && ip.sgran == SpatialGranularity::Point {
                    out.push(Diagnostic::new(
                        LintCode::SpatialCollapse,
                        &svc.name,
                        format!(
                            "aggregation `{}` has no grouping key, so it collapses the \
                             point-granular stream `{input}` to a single value per tick; \
                             the emitted location is an arbitrary member's — group by a \
                             station/area attribute to keep spatial granularity",
                            svc.name
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}
