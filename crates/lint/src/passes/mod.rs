//! The lint passes. Each pass is a pure function over [`PassCx`] that
//! appends [`Diagnostic`]s; the pipeline in `lib.rs` runs them in order
//! after the structural mapping and property propagation.

pub mod bounded;
pub mod deadcode;
pub mod deadlock;
pub mod granularity;
pub mod rate;
pub mod recovery;
pub mod resource;
pub mod shard;
pub mod structure;

use crate::analysis::StreamProps;
use crate::diag::Diagnostic;
use crate::model::{DeployGraph, DeployModel};
use crate::LintConfig;
use sl_dsn::DsnDocument;
use sl_netsim::Topology;
use sl_pubsub::SensorRegistry;
use sl_stt::SchemaRef;
use std::collections::{BTreeMap, HashMap};

/// Everything a pass may look at.
pub struct PassCx<'a> {
    /// The document under analysis (the canonical form of the dataflow).
    pub doc: &'a DsnDocument,
    /// Declared source schemas (possibly partial for hand-authored text).
    pub schemas: &'a HashMap<String, SchemaRef>,
    /// Propagated stream properties per producer.
    pub props: &'a BTreeMap<String, StreamProps>,
    /// Services in execution order.
    pub topo_order: &'a [String],
    /// `producer → (consumer, port)` adjacency.
    pub consumers: &'a HashMap<String, Vec<(String, usize)>>,
    /// The deployment target, when known.
    pub topology: Option<&'a Topology>,
    /// The live sensor registry, when known.
    pub registry: Option<&'a SensorRegistry>,
    /// Thresholds.
    pub config: &'a LintConfig,
    /// The deployment model (engine config + fault plan + durability),
    /// when the deployment tier is running.
    pub model: Option<&'a DeployModel<'a>>,
    /// The deployment graph derived from the model, document, and
    /// environment. Present exactly when `model` is.
    pub graph: Option<&'a DeployGraph>,
}

impl PassCx<'_> {
    /// The propagated properties of a producer, if it resolved.
    pub fn props_of(&self, name: &str) -> Option<&StreamProps> {
        self.props.get(name)
    }
}

/// One analysis pass.
pub type PassFn = fn(&PassCx<'_>, &mut Vec<Diagnostic>);

/// The pipeline, in execution order. Structural mapping runs before these
/// (it feeds on the accumulating validators, not on [`PassCx`]).
pub const PIPELINE: &[(&str, PassFn)] = &[
    ("granularity", granularity::run),
    ("bounded", bounded::run),
    ("rate", rate::run),
    ("deadcode", deadcode::run),
    ("deadlock", deadlock::run),
    ("shard", shard::run),
    ("recovery", recovery::run),
    ("resource", resource::run),
];
