//! Rate/volume pass (`SL030`–`SL034`): abstract interpretation of
//! advertised sensor frequencies and schema widths against the target
//! netsim topology, catching placements the network cannot carry *before*
//! deployment (the paper's premise that a dataflow activates only "once it
//! can be soundly activated at network level").

use super::PassCx;
use crate::analysis::width_bytes;
use crate::diag::{Diagnostic, LintCode};
use sl_netsim::{LinkId, LinkSpec, Topology};

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    // SL033: sources whose filter matches nothing in the live registry.
    if let Some(registry) = cx.registry {
        for src in &cx.doc.sources {
            let bindable = registry.discover(&src.filter).filter(|ad| {
                cx.schemas
                    .get(&src.name)
                    .is_none_or(|schema| schema.subsumed_by(&ad.schema))
            });
            if bindable.count() == 0 {
                out.push(Diagnostic::new(
                    LintCode::SilentSource,
                    &src.name,
                    format!(
                        "source `{}` matches no advertised sensor (filter: {}), so the \
                         stream will be silent — broaden the filter or register sensors \
                         before deploying",
                        src.name,
                        sl_dsn::printer::print_filter(&src.filter)
                    ),
                ));
            }
        }
    }

    let links: Vec<LinkSpec> = cx.topology.map(up_links).unwrap_or_default();

    // SL030: channel QoS no link can satisfy.
    if !links.is_empty() {
        for ch in &cx.doc.channels {
            if ch.qos.is_best_effort() {
                continue;
            }
            let satisfiable = links.iter().any(|l| {
                ch.qos
                    .min_bandwidth_bps
                    .is_none_or(|bw| l.bandwidth_bps >= bw)
                    && ch.qos.max_latency.is_none_or(|lat| l.latency <= lat)
            });
            if !satisfiable {
                out.push(Diagnostic {
                    node: Some(format!("{} -> {}", ch.from, ch.to)),
                    ..Diagnostic::global(
                        LintCode::UnsatisfiableQos,
                        format!(
                            "channel {} -> {} requests QoS no link in the target topology \
                             can provide; the engine would fall back to best-effort \
                             delivery — relax the QoS or upgrade the network",
                            ch.from, ch.to
                        ),
                    )
                });
            }
        }
    }

    // SL031: estimated per-edge volume vs. link capacity / QoS reservation.
    let max_bw = links.iter().map(|l| l.bandwidth_bps).max();
    for (from, to, _) in cx.doc.edges() {
        let Some(props) = cx.props_of(&from) else {
            continue;
        };
        let (Some(rate), Some(schema)) = (props.rate_hz, props.schema.as_ref()) else {
            continue;
        };
        let est_bps = rate * width_bytes(schema) * 8.0;
        if let Some(max_bw) = max_bw {
            if est_bps > max_bw as f64 {
                out.push(Diagnostic::new(
                    LintCode::LinkOverload,
                    &from,
                    format!(
                        "edge {from} -> {to} carries an estimated {:.0} kbit/s, more than \
                         the fastest link in the target topology ({:.0} kbit/s): it will \
                         saturate wherever it is placed — cull or aggregate upstream",
                        est_bps / 1000.0,
                        max_bw as f64 / 1000.0
                    ),
                ));
                continue;
            }
        }
        if let Some(reserved) = cx.doc.qos_for(&from, &to).min_bandwidth_bps {
            if est_bps > reserved as f64 {
                out.push(Diagnostic::new(
                    LintCode::LinkOverload,
                    &from,
                    format!(
                        "edge {from} -> {to} reserves {:.0} kbit/s of bandwidth but is \
                         estimated to carry {:.0} kbit/s — raise the reservation or \
                         reduce the stream",
                        reserved as f64 / 1000.0,
                        est_bps / 1000.0
                    ),
                ));
            }
        }
    }

    // SL032: total operator demand vs. total up-node CPU capacity.
    if let Some(topology) = cx.topology {
        let capacity: f64 = topology
            .node_ids()
            .filter_map(|n| topology.node(n).ok())
            .filter(|n| n.up)
            .map(|n| n.cpu_capacity)
            .sum();
        let mut demand = 0.0;
        let mut known = true;
        for svc in &cx.doc.services {
            let rate: Option<f64> = svc
                .inputs
                .iter()
                .map(|i| cx.props_of(i).and_then(|p| p.rate_hz))
                .sum::<Option<f64>>();
            let schemas: Option<Vec<_>> = svc
                .inputs
                .iter()
                .map(|i| cx.props_of(i).and_then(|p| p.schema.clone()))
                .collect();
            match (rate, schemas.and_then(|s| svc.spec.instantiate(&s).ok())) {
                (Some(rate), Some(op)) => demand += rate * op.cost_per_tuple(),
                _ => known = false,
            }
        }
        if known && capacity > 0.0 && demand > capacity {
            out.push(Diagnostic::global(
                LintCode::CpuOverload,
                format!(
                    "the dataflow demands an estimated {demand:.0} operator-ops/s but the \
                     target topology provides {capacity:.0}: placement will overload nodes \
                     — cull upstream or provision more capacity"
                ),
            ));
        }

        // SL034: a single operator whose advertised input rate exceeds the
        // best *single* node's capacity. Such an operator falls behind on
        // every possible placement; without a shedding/backpressure policy
        // its ingress queue grows without bound. Silenced when the session
        // has an overload policy configured — the overshoot is then
        // mitigated (shed or absorbed via credits) at run time, and when a
        // deployment model is attached — the resource pass (SL080) then
        // owns the question with the real admission settings in hand.
        if !cx.config.overload_policy_configured && cx.model.is_none() {
            let best_node: f64 = topology
                .node_ids()
                .filter_map(|n| topology.node(n).ok())
                .filter(|n| n.up)
                .map(|n| n.cpu_capacity)
                .fold(0.0, f64::max);
            if best_node > 0.0 {
                for svc in &cx.doc.services {
                    let rate: Option<f64> = svc
                        .inputs
                        .iter()
                        .map(|i| cx.props_of(i).and_then(|p| p.rate_hz))
                        .sum::<Option<f64>>();
                    let schemas: Option<Vec<_>> = svc
                        .inputs
                        .iter()
                        .map(|i| cx.props_of(i).and_then(|p| p.schema.clone()))
                        .collect();
                    let (Some(rate), Some(op)) =
                        (rate, schemas.and_then(|s| svc.spec.instantiate(&s).ok()))
                    else {
                        continue;
                    };
                    let svc_demand = rate * op.cost_per_tuple();
                    if svc_demand > best_node {
                        out.push(Diagnostic::new(
                            LintCode::UnmitigatedOverload,
                            &svc.name,
                            format!(
                                "service `{}` receives an estimated {svc_demand:.0} \
                                 operator-ops/s but the fastest node provides {best_node:.0}: \
                                 it will fall behind on any placement and no overload policy \
                                 is configured — bound its queue with a shedding or \
                                 backpressure policy, or slow the sensors",
                                svc.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Every up link of the topology.
fn up_links(topology: &Topology) -> Vec<LinkSpec> {
    (0..topology.link_count() as u32)
        .filter_map(|i| topology.link(LinkId(i)).ok())
        .filter(|l| l.up)
        .cloned()
        .collect()
}
