//! Recovery-coverage pass (`SL070`–`SL072`, `SL092`): will the configured
//! checkpoint/retry/breaker machinery actually survive the faults the
//! attached plan schedules, and will the durable store it recovers from
//! stay bounded?
//!
//! The fault checks need a [`DeployModel`] with a `FaultPlan`: absent a
//! plan the deployment faces no modelled faults and silence is correct.
//! `SL092` is the exception — it inspects only the durability half of the
//! model (retention without compaction), so it runs with or without a plan.
//!
//! [`DeployModel`]: crate::model::DeployModel

use super::PassCx;
use crate::diag::{Diagnostic, LintCode};
use sl_stt::Duration;

pub(crate) fn run(cx: &PassCx<'_>, out: &mut Vec<Diagnostic>) {
    let Some(model) = cx.model else {
        return;
    };

    // SL092: retention evicts hot events onto the cold tier, but nothing
    // ever rewrites the sealed segments — the log only grows, and expired
    // cold events are never dropped. Retention without compaction is a
    // slow-motion disk leak on any long-running durable deployment.
    if model.durable && model.config.retention.is_some() && !model.compaction {
        out.push(Diagnostic::global(
            LintCode::CompactionDisabled,
            "the engine is durable with a retention window, but cold-tier \
             compaction is disabled: eviction spills hot events into sealed \
             segments that are never merged or aged out, so the log grows \
             without bound — enable `DurableConfig::compaction` (with \
             `cold_retention` matching the intent of the retention window) \
             or drop the retention setting"
                .to_string(),
        ));
    }

    if model.fault_plan.is_none() {
        return;
    }
    let cfg = model.config;

    // SL070: the plan crashes a node while checkpointing is off — every
    // blocking operator's window cache on that node is unrecoverable, and
    // migration restarts it empty (partial windows silently lost).
    if model.crash_bearing() && !cfg.checkpoint_enabled {
        if let Some(graph) = cx.graph {
            for (name, facts) in &graph.ops {
                if facts.blocking {
                    out.push(Diagnostic::new(
                        LintCode::UncheckpointedState,
                        name,
                        format!(
                            "the fault plan crashes a node while checkpointing is \
                             disabled: if `{name}` is placed there its window cache is \
                             lost and the post-crash {} restarts empty — enable \
                             `checkpoint_enabled` or remove the crash from the plan",
                            facts.kind
                        ),
                    ));
                }
            }
        }
    }

    // SL071: checkpoints exist but only in memory. A crash takes the
    // checkpoint store down with the node it protects against.
    if model.crash_bearing() && cfg.checkpoint_enabled && !model.durable {
        let any_blocking = cx.graph.is_some_and(|g| g.ops.values().any(|f| f.blocking));
        if any_blocking {
            out.push(Diagnostic::global(
                LintCode::VolatileCheckpoints,
                "the fault plan crashes a node and checkpoints are enabled but not \
                 durable: in-memory checkpoints survive engine-simulated crashes only, \
                 not a real process loss — open the engine durable (WAL-backed \
                 checkpoint store) to make recovery meaningful"
                    .to_string(),
            ));
        }
    }

    // SL072: a link flap with breakers on. The breaker opens after
    // `threshold` consecutive failures and then fail-fasts *every* retry
    // for `cooldown`; if the retry policy's remaining backoff budget after
    // the threshold is shorter than the cooldown, all remaining attempts
    // land while the breaker is open and the tuple is guaranteed to
    // dead-letter on the first flap — retries and breaker cancel out.
    if model.flap_bearing() && cfg.overload.breaker_enabled && cfg.retry_enabled {
        let threshold = cfg.overload.breaker_threshold;
        if threshold < cfg.retry.max_attempts {
            let mut remaining = Duration::ZERO;
            for attempt in threshold..cfg.retry.max_attempts {
                remaining = remaining + cfg.retry.backoff(attempt);
            }
            let cooldown = cfg.overload.breaker_cooldown;
            if remaining.as_millis() < cooldown.as_millis() {
                out.push(Diagnostic::global(
                    LintCode::BreakerRetryConflict,
                    format!(
                        "the fault plan flaps a link and breakers are enabled: after \
                         {threshold} failures the breaker opens for {cooldown}, but the \
                         remaining retry backoff budget is only {remaining} — every \
                         remaining attempt fail-fasts against the open breaker and the \
                         tuple dead-letters on the first flap; lengthen the backoff, \
                         raise `breaker_threshold`, or shorten `breaker_cooldown`",
                    ),
                ));
            }
        }
    }
}
