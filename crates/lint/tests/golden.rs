//! Golden tests: every `SL0xx` lint code has (a) a minimal document that
//! triggers it and (b) a near-miss counterexample that stays clean of it.
//! Documents are written in DSN concrete syntax and linted the way the
//! `sl-lint` CLI lints files: source schemas inferred from `has name:type`
//! filter clauses.

#![allow(clippy::disallowed_methods)] // tests may panic freely
#![allow(clippy::field_reassign_with_default)] // goldens mutate one knob at a time

use sl_dsn::parse_document;
use sl_engine::{EngineConfig, OverflowPolicy, ShardKey};
use sl_faults::FaultPlan;
use sl_lint::{
    lint_document, lint_document_with_model, DeployModel, LintCode, LintConfig, LintContext,
    LintReport,
};
use sl_netsim::{NodeSpec, Topology};
use sl_pubsub::{SensorAdvertisement, SensorKind, SensorRegistry};
use sl_stt::{AttrType, Duration, Field, GeoPoint, Schema, SchemaRef, SensorId, Theme};
use std::collections::HashMap;
use std::sync::Arc;

fn infer_schemas(doc: &sl_dsn::DsnDocument) -> HashMap<String, SchemaRef> {
    doc.sources
        .iter()
        .filter(|s| !s.filter.required_attrs.is_empty())
        .map(|s| {
            let fields = s
                .filter
                .required_attrs
                .iter()
                .map(|(n, t)| Field::new(n, *t))
                .collect();
            let schema: SchemaRef = Arc::new(Schema::new(fields).unwrap());
            (s.name.clone(), schema)
        })
        .collect()
}

fn lint_with(dsn: &str, ctx: &LintContext<'_>) -> LintReport {
    let doc = parse_document(dsn).unwrap_or_else(|e| panic!("parse failed: {e}\n{dsn}"));
    lint_document(&doc, &infer_schemas(&doc), ctx)
}

fn lint(dsn: &str) -> LintReport {
    lint_with(dsn, &LintContext::bare())
}

/// A registry with one matching sensor per `(theme, period)` entry.
fn registry(sensors: &[(&str, u64)]) -> SensorRegistry {
    let mut reg = SensorRegistry::new();
    let schema: SchemaRef = Arc::new(
        Schema::new(vec![
            Field::new("temp", AttrType::Float),
            Field::new("rain", AttrType::Float),
        ])
        .unwrap(),
    );
    for (i, (theme, period_ms)) in sensors.iter().enumerate() {
        reg.publish(SensorAdvertisement {
            id: SensorId(i as u64 + 1),
            name: format!("s{i}"),
            kind: SensorKind::Physical,
            schema: schema.clone(),
            theme: Theme::new(theme).unwrap(),
            period: Duration::from_millis(*period_ms),
            location: None,
            node: sl_netsim::NodeId(0),
        })
        .unwrap();
    }
    reg
}

/// Two nodes joined by one link.
fn topo(bandwidth_bps: u64, latency_ms: u64, cpu: f64) -> Topology {
    let mut t = Topology::new();
    let a = t.add_node(NodeSpec::core("core", cpu));
    let b = t.add_node(NodeSpec::edge("edge", cpu));
    t.add_link(a, b, Duration::from_millis(latency_ms), bandwidth_bps)
        .unwrap();
    t
}

const TEMP_SOURCE: &str = "
  source temp {
    filter: theme=weather/temperature & has temp:float;
    mode: active;
  }";

const RAIN_SOURCE: &str = "
  source rain {
    filter: theme=weather/rain & has rain:float;
    mode: active;
  }";

fn doc(body: &str) -> String {
    format!("dsn \"golden\" {{\n{body}\n}}\n")
}

fn assert_fires(code: LintCode, dsn: &str) {
    let report = lint(dsn);
    assert!(
        report.has(code),
        "{code:?} should fire, got: {:?}",
        report.codes()
    );
}

fn assert_quiet(code: LintCode, dsn: &str) {
    let report = lint(dsn);
    assert!(
        !report.has(code),
        "{code:?} should stay quiet, got: {:?}",
        report.codes()
    );
}

// ---------------------------------------------------------------- structure

#[test]
fn sl001_duplicate_name() {
    let dup = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  service hot {{ op: filter; condition: 'temp > 30'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    assert_fires(LintCode::DuplicateName, &dup);

    let distinct = dup.replacen("service hot", "service warm", 1);
    assert_quiet(LintCode::DuplicateName, &distinct);
}

#[test]
fn sl002_unknown_input() {
    let ghost = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: ghost; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    assert_fires(LintCode::UnknownInput, &ghost);
    assert_quiet(
        LintCode::UnknownInput,
        &ghost.replace("inputs: ghost", "inputs: temp"),
    );
}

#[test]
fn sl003_wrong_arity() {
    let two = doc(&format!(
        "{TEMP_SOURCE}{RAIN_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp, rain; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    assert_fires(LintCode::WrongArity, &two);
    assert_quiet(
        LintCode::WrongArity,
        &two.replace("inputs: temp, rain;", "inputs: temp;"),
    );
}

#[test]
fn sl004_cycle() {
    let cyclic = doc(&format!(
        "{TEMP_SOURCE}
  service a {{ op: filter; condition: 'temp > 1'; inputs: b; }}
  service b {{ op: filter; condition: 'temp > 2'; inputs: a; }}
  sink out {{ kind: console; inputs: b; }}"
    ));
    assert_fires(LintCode::Cycle, &cyclic);
    assert_quiet(
        LintCode::Cycle,
        &cyclic.replace("inputs: b;", "inputs: temp;"),
    );
}

#[test]
fn sl005_bad_trigger_target() {
    let bad = doc(&format!(
        "{TEMP_SOURCE}
  service alarm {{
    op: trigger_on; period: 1000; condition: 'temp > 40'; targets: ghost; inputs: temp;
  }}
  service alarm2 {{
    op: trigger_on; period: 1000; condition: 'temp > 40'; targets: rain; inputs: temp;
  }}
  source rain {{ filter: theme=weather/rain & has rain:float; mode: gated; }}
  service wet {{ op: filter; condition: 'rain > 0'; inputs: rain; }}
  sink out {{ kind: console; inputs: temp, wet; }}"
    ));
    assert_fires(LintCode::BadTriggerTarget, &bad);
    assert_quiet(
        LintCode::BadTriggerTarget,
        &bad.replace("targets: ghost;", "targets: rain;"),
    );
}

#[test]
fn sl006_gated_never_activated() {
    let stuck = doc("
  source rain { filter: theme=weather/rain & has rain:float; mode: gated; }
  service wet { op: filter; condition: 'rain > 0'; inputs: rain; }
  sink out { kind: console; inputs: wet; }");
    assert_fires(LintCode::GatedNeverActivated, &stuck);
    assert_quiet(
        LintCode::GatedNeverActivated,
        &stuck.replace("mode: gated", "mode: active"),
    );
}

#[test]
fn sl007_bad_wiring() {
    let bad = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}
  channel temp -> ghost {{ qos: latency<=50; }}"
    ));
    assert_fires(LintCode::BadWiring, &bad);
    assert_quiet(
        LintCode::BadWiring,
        &bad.replace("temp -> ghost", "temp -> hot"),
    );
}

#[test]
fn sl008_schema_error() {
    let broken = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'humidity > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    assert_fires(LintCode::SchemaError, &broken);
    assert_quiet(
        LintCode::SchemaError,
        &broken.replace("humidity > 20", "temp > 20"),
    );
}

#[test]
fn sl009_no_schema() {
    let opaque = doc("
  source temp { filter: theme=weather/temperature; mode: active; }
  sink out { kind: console; inputs: temp; }");
    assert_fires(LintCode::NoSchema, &opaque);
    assert_quiet(
        LintCode::NoSchema,
        &opaque.replace(
            "theme=weather/temperature",
            "theme=weather/temperature & has temp:float",
        ),
    );
}

// -------------------------------------------------------------- granularity

/// Two aggregated streams joined; inner periods are the knob.
fn join_of_aggregates(left_period_ms: u64, right_period_ms: u64) -> String {
    doc(&format!(
        "{TEMP_SOURCE}{RAIN_SOURCE}
  service avg_temp {{
    op: aggregate; period: {left_period_ms}; group_by: temp; func: avg; attr: temp;
    inputs: temp;
  }}
  service avg_rain {{
    op: aggregate; period: {right_period_ms}; group_by: rain; func: avg; attr: rain;
    inputs: rain;
  }}
  service paired {{
    op: join; period: 60000; predicate: 'avg_temp > 0 and avg_rain > 0';
    inputs: avg_temp, avg_rain;
  }}
  sink out {{ kind: console; inputs: paired; }}"
    ))
}

#[test]
fn sl010_incomparable_granularity() {
    // 3 s and 7 s windows: neither divides the other.
    assert_fires(
        LintCode::IncomparableGranularity,
        &join_of_aggregates(3000, 7000),
    );
    // 3 s and 6 s nest.
    assert_quiet(
        LintCode::IncomparableGranularity,
        &join_of_aggregates(3000, 6000),
    );
}

#[test]
fn sl013_mixed_granularity_join() {
    assert_fires(
        LintCode::MixedGranularityJoin,
        &join_of_aggregates(3000, 6000),
    );
    assert_quiet(
        LintCode::MixedGranularityJoin,
        &join_of_aggregates(5000, 5000),
    );
}

#[test]
fn sl011_misaligned_aggregation() {
    let reagg = |inner: u64, outer: u64| {
        doc(&format!(
            "{TEMP_SOURCE}
  service hourly {{
    op: aggregate; period: {inner}; group_by: temp; func: avg; attr: temp;
    inputs: temp;
  }}
  service daily {{
    op: aggregate; period: {outer}; group_by: avg_temp; func: avg; attr: avg_temp;
    inputs: hourly;
  }}
  sink out {{ kind: console; inputs: daily; }}"
        ))
    };
    // 7 s granules re-aggregated into 3 s windows straddle boundaries.
    assert_fires(LintCode::MisalignedAggregation, &reagg(7000, 3000));
    // 1 s granules nest inside 4 s windows.
    assert_quiet(LintCode::MisalignedAggregation, &reagg(1000, 4000));
}

#[test]
fn sl012_spatial_collapse() {
    let collapse = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{ op: aggregate; period: 5000; func: avg; attr: temp; inputs: temp; }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    assert_fires(LintCode::SpatialCollapse, &collapse);
    assert_quiet(
        LintCode::SpatialCollapse,
        &collapse.replace("period: 5000;", "period: 5000; group_by: temp;"),
    );
}

// -------------------------------------------------------------- boundedness

#[test]
fn sl020_window_gap() {
    let gap = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{
    op: aggregate; period: 5000; sliding: 1000; group_by: temp; func: avg; attr: temp;
    inputs: temp;
  }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    assert_fires(LintCode::WindowGap, &gap);
    assert_quiet(
        LintCode::WindowGap,
        &gap.replace("sliding: 1000;", "sliding: 10000;"),
    );
}

#[test]
fn sl021_unconstrained_join() {
    let cross = doc(&format!(
        "{TEMP_SOURCE}{RAIN_SOURCE}
  service paired {{
    op: join; period: 5000; predicate: 'temp > 0'; inputs: temp, rain;
  }}
  sink out {{ kind: console; inputs: paired; }}"
    ));
    assert_fires(LintCode::UnconstrainedJoin, &cross);
    assert_quiet(
        LintCode::UnconstrainedJoin,
        &cross.replace("'temp > 0'", "'temp > 0 and rain > 0'"),
    );
}

#[test]
fn sl022_unbounded_cache() {
    // A 1 kHz sensor cached over a 200 s window: 200k tuples, over budget.
    let reg = registry(&[("weather/temperature", 1)]);
    let ctx = LintContext {
        registry: Some(&reg),
        ..LintContext::default()
    };
    let big = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{ op: aggregate; period: 200000; func: avg; attr: temp; inputs: temp; }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    assert!(lint_with(&big, &ctx).has(LintCode::UnboundedCache));
    let small = big.replace("period: 200000;", "period: 10000;");
    assert!(!lint_with(&small, &ctx).has(LintCode::UnboundedCache));
}

// -------------------------------------------------------------- rate/volume

#[test]
fn sl030_unsatisfiable_qos() {
    let reg = registry(&[("weather/temperature", 1000)]);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}
  channel temp -> hot {{ qos: latency<=1, bandwidth>=1000000000; }}"
    ));
    // Every link: 5 ms latency, 1 Mbit/s.
    let net = topo(1_000_000, 5, 100.0);
    let ctx = LintContext {
        topology: Some(&net),
        registry: Some(&reg),
        ..LintContext::default()
    };
    assert!(lint_with(&dsn, &ctx).has(LintCode::UnsatisfiableQos));

    let relaxed = dsn.replace(
        "latency<=1, bandwidth>=1000000000",
        "latency<=50, bandwidth>=500000",
    );
    assert!(!lint_with(&relaxed, &ctx).has(LintCode::UnsatisfiableQos));
}

#[test]
fn sl031_link_overload() {
    // 1 kHz × (40 + 2×8) bytes × 8 = 448 kbit/s of temperature data.
    let reg = registry(&[("weather/temperature", 1)]);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    let slow = topo(10_000, 5, 1e9);
    let ctx = LintContext {
        topology: Some(&slow),
        registry: Some(&reg),
        ..LintContext::default()
    };
    assert!(lint_with(&dsn, &ctx).has(LintCode::LinkOverload));

    let fast = topo(10_000_000, 5, 1e9);
    let ctx = LintContext {
        topology: Some(&fast),
        registry: Some(&reg),
        ..LintContext::default()
    };
    assert!(!lint_with(&dsn, &ctx).has(LintCode::LinkOverload));
}

#[test]
fn sl032_cpu_overload() {
    let reg = registry(&[("weather/temperature", 1)]);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    let tiny = topo(10_000_000, 5, 0.25);
    let ctx = LintContext {
        topology: Some(&tiny),
        registry: Some(&reg),
        ..LintContext::default()
    };
    assert!(lint_with(&dsn, &ctx).has(LintCode::CpuOverload));

    let beefy = topo(10_000_000, 5, 1e9);
    let ctx = LintContext {
        topology: Some(&beefy),
        registry: Some(&reg),
        ..LintContext::default()
    };
    assert!(!lint_with(&dsn, &ctx).has(LintCode::CpuOverload));
}

#[test]
fn sl033_silent_source() {
    let reg = registry(&[("weather/rain", 1000)]);
    let ctx = LintContext {
        registry: Some(&reg),
        ..LintContext::default()
    };
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  sink out {{ kind: console; inputs: temp; }}"
    ));
    assert!(lint_with(&dsn, &ctx).has(LintCode::SilentSource));

    let reg = registry(&[("weather/temperature", 1000)]);
    let ctx = LintContext {
        registry: Some(&reg),
        ..LintContext::default()
    };
    assert!(!lint_with(&dsn, &ctx).has(LintCode::SilentSource));
}

#[test]
fn sl034_unmitigated_overload() {
    // 1 kHz through a filter: ~1300 operator-ops/s. Two 700-capacity nodes
    // give the *cluster* headroom (SL032 quiet) but no *single* node can
    // host the operator — it falls behind on every placement.
    let reg = registry(&[("weather/temperature", 1)]);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    let narrow = topo(10_000_000, 5, 700.0);
    let ctx = LintContext {
        topology: Some(&narrow),
        registry: Some(&reg),
        ..LintContext::default()
    };
    let report = lint_with(&dsn, &ctx);
    assert!(
        report.has(LintCode::UnmitigatedOverload),
        "{:?}",
        report.codes()
    );
    assert!(!report.has(LintCode::CpuOverload), "{:?}", report.codes());

    // Near miss 1: the session has an overload policy — the overshoot is
    // mitigated at run time, so the warning is silenced.
    let ctx = LintContext {
        topology: Some(&narrow),
        registry: Some(&reg),
        config: LintConfig {
            overload_policy_configured: true,
            ..LintConfig::default()
        },
    };
    assert!(!lint_with(&dsn, &ctx).has(LintCode::UnmitigatedOverload));

    // Near miss 2: a node that keeps up — no overload to mitigate.
    let beefy = topo(10_000_000, 5, 1e9);
    let ctx = LintContext {
        topology: Some(&beefy),
        registry: Some(&reg),
        ..LintContext::default()
    };
    assert!(!lint_with(&dsn, &ctx).has(LintCode::UnmitigatedOverload));
}

// ---------------------------------------------------------------- dead code

#[test]
fn sl040_dead_end() {
    let dangling = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  service orphan {{ op: filter; condition: 'temp > 30'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    assert_fires(LintCode::DeadEnd, &dangling);
    assert_quiet(
        LintCode::DeadEnd,
        &dangling.replace("inputs: hot;", "inputs: hot, orphan;"),
    );
}

#[test]
fn sl041_redundant_trigger() {
    let redundant = doc(&format!(
        "{TEMP_SOURCE}{RAIN_SOURCE}
  service alarm {{
    op: trigger_on; period: 1000; condition: 'temp > 40'; targets: rain; inputs: temp;
  }}
  service wet {{ op: filter; condition: 'rain > 0'; inputs: rain; }}
  sink out {{ kind: console; inputs: wet; }}"
    ));
    assert_fires(LintCode::RedundantTrigger, &redundant);
    // A gated target actually needs the activation.
    assert_quiet(
        LintCode::RedundantTrigger,
        &redundant.replace(
            "filter: theme=weather/rain & has rain:float;\n    mode: active;",
            "filter: theme=weather/rain & has rain:float;\n    mode: gated;",
        ),
    );
}

#[test]
fn sl042_unused_property() {
    let unused = doc(&format!(
        "{TEMP_SOURCE}
  service risk {{ op: virtual_property; property: risk; spec: 'temp * 2'; inputs: temp; }}
  service avg {{
    op: aggregate; period: 5000; group_by: temp; func: avg; attr: temp; inputs: risk;
  }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    assert_fires(LintCode::UnusedProperty, &unused);
    // Grouping by the property keeps (and uses) it.
    assert_quiet(
        LintCode::UnusedProperty,
        &unused.replace("group_by: temp;", "group_by: risk;"),
    );
}

#[test]
fn sl043_always_false() {
    let dead = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: '1 > 2'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    assert_fires(LintCode::AlwaysFalse, &dead);
    assert_quiet(
        LintCode::AlwaysFalse,
        &dead.replace("'1 > 2'", "'temp > 2'"),
    );
}

#[test]
fn sl044_always_true() {
    let noop = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: '2 > 1'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    assert_fires(LintCode::AlwaysTrue, &noop);
    assert_quiet(LintCode::AlwaysTrue, &noop.replace("'2 > 1'", "'temp > 1'"));
}

// --------------------------------------------------- deployment tier helpers

fn lint_deploy(dsn: &str, ctx: &LintContext<'_>, model: &DeployModel<'_>) -> LintReport {
    let doc = parse_document(dsn).unwrap_or_else(|e| panic!("parse failed: {e}\n{dsn}"));
    lint_document_with_model(&doc, &infer_schemas(&doc), ctx, Some(model))
}

/// A model with no fault plan and no durability over `config`.
fn model(config: &EngineConfig) -> DeployModel<'_> {
    DeployModel {
        config,
        fault_plan: None,
        durable: false,
        compaction: false,
    }
}

fn block_cfg(cap: usize) -> EngineConfig {
    let mut c = EngineConfig::default();
    c.overload.queue_capacity = Some(cap);
    c.overload.policy = OverflowPolicy::Block;
    c
}

fn shed_cfg(cap: usize) -> EngineConfig {
    let mut c = EngineConfig::default();
    c.overload.queue_capacity = Some(cap);
    c.overload.policy = OverflowPolicy::ShedOldest;
    c
}

fn reg_ctx(reg: &SensorRegistry) -> LintContext<'_> {
    LintContext {
        registry: Some(reg),
        ..LintContext::default()
    }
}

/// A 1 kHz grouped aggregate whose tick releases ~8 group rows at once
/// into a downstream filter — the tick-burst fixture for SL051/SL082.
fn tick_burst_doc() -> String {
    doc(&format!(
        "{TEMP_SOURCE}
  service avg {{
    op: aggregate; period: 10000; group_by: temp; func: avg; attr: temp; inputs: temp;
  }}
  service post {{ op: filter; condition: 'avg_temp > 0'; inputs: avg; }}
  sink out {{ kind: console; inputs: post; }}"
    ))
}

// ------------------------------------------------------------ SL05x deadlock

#[test]
fn sl050_activation_deadlock() {
    // Two gated sources, each woken only by a trigger fed by the other:
    // neither trigger can ever observe a tuple, so neither source wakes.
    let stuck = doc("
  source a { filter: theme=weather/temperature & has temp:float; mode: gated; }
  source b { filter: theme=weather/rain & has rain:float; mode: gated; }
  service ta {
    op: trigger_on; period: 1000; condition: 'temp > 40'; targets: b; inputs: a;
  }
  service tb {
    op: trigger_on; period: 1000; condition: 'rain > 40'; targets: a; inputs: b;
  }
  sink out { kind: console; inputs: a, b; }");
    assert_fires(LintCode::ActivationDeadlock, &stuck);
    // Starting one source active breaks the cycle: a feeds ta, ta wakes b.
    assert_quiet(
        LintCode::ActivationDeadlock,
        &stuck.replacen("mode: gated;", "mode: active;", 1),
    );
}

#[test]
fn sl051_ineffective_backpressure() {
    let reg = registry(&[("weather/temperature", 1)]);
    let ctx = reg_ctx(&reg);
    // ~8 group rows per tick against a Block queue of 4: credits throttle
    // sensors, not the producer's tick, so the bound is overrun every tick.
    let tiny = block_cfg(4);
    let report = lint_deploy(&tick_burst_doc(), &ctx, &model(&tiny));
    assert!(
        report.has(LintCode::IneffectiveBackpressure),
        "{:?}",
        report.codes()
    );
    // A queue that fits the batch absorbs the tick.
    let roomy = block_cfg(1024);
    let report = lint_deploy(&tick_burst_doc(), &ctx, &model(&roomy));
    assert!(!report.has(LintCode::IneffectiveBackpressure));
}

#[test]
fn sl052_shared_credit_starvation() {
    let reg = registry(&[("weather/temperature", 1000), ("weather/rain", 1000)]);
    let ctx = reg_ctx(&reg);
    let shared = doc(&format!(
        "{TEMP_SOURCE}
  source temp2 {{ filter: theme=weather/temperature & has temp:float; mode: active; }}
  sink out {{ kind: console; inputs: temp, temp2; }}"
    ));
    let cfg = block_cfg(64);
    let report = lint_deploy(&shared, &ctx, &model(&cfg));
    assert!(
        report.has(LintCode::SharedCreditStarvation),
        "{:?}",
        report.codes()
    );
    // Disjoint sensors: throttling one source touches nothing the other uses.
    let disjoint = shared.replace(
        "source temp2 { filter: theme=weather/temperature & has temp:float;",
        "source temp2 { filter: theme=weather/rain & has rain:float;",
    );
    let report = lint_deploy(&disjoint, &ctx, &model(&cfg));
    assert!(!report.has(LintCode::SharedCreditStarvation));
}

#[test]
fn sl053_lossy_block_preemption() {
    let plain = doc(&format!(
        "{TEMP_SOURCE}
  sink out {{ kind: console; inputs: temp; }}"
    ));
    let mut cfg = block_cfg(64);
    cfg.overload.global_capacity = Some(100);
    let report = lint_deploy(&plain, &LintContext::bare(), &model(&cfg));
    assert!(
        report.has(LintCode::LossyBlockPreemption),
        "{:?}",
        report.codes()
    );
    // A shedding policy is honest about loss; no contradiction.
    let mut cfg = shed_cfg(64);
    cfg.overload.global_capacity = Some(100);
    let report = lint_deploy(&plain, &LintContext::bare(), &model(&cfg));
    assert!(!report.has(LintCode::LossyBlockPreemption));
}

// --------------------------------------------------------------- SL06x shard

#[test]
fn sl060_fruitless_parallelism() {
    let only_blocking = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{
    op: aggregate; period: 5000; group_by: temp; func: avg; attr: temp; inputs: temp;
  }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    let mut cfg = EngineConfig::default();
    cfg.parallelism = 4;
    let report = lint_deploy(&only_blocking, &LintContext::bare(), &model(&cfg));
    assert!(
        report.has(LintCode::FruitlessParallelism),
        "{:?}",
        report.codes()
    );
    // One shardable stage gives the pool something to batch.
    let with_filter = only_blocking.replace(
        "inputs: temp;\n  }",
        "inputs: temp;\n  }\n  service hot { op: filter; condition: 'temp > 20'; inputs: temp; }",
    ) + "";
    let with_filter = with_filter.replace("inputs: avg;", "inputs: avg, hot;");
    let report = lint_deploy(&with_filter, &LintContext::bare(), &model(&cfg));
    assert!(!report.has(LintCode::FruitlessParallelism));
}

#[test]
fn sl061_order_sensitive_merge() {
    let cull_after_join = doc(&format!(
        "{TEMP_SOURCE}{RAIN_SOURCE}
  service paired {{
    op: join; period: 5000; predicate: 'temp > 0 and rain > 0'; inputs: temp, rain;
  }}
  service thin {{ op: cull_time; interval: 0..100000000; rate: 2; inputs: paired; }}
  sink out {{ kind: console; inputs: thin; }}"
    ));
    let mut cfg = EngineConfig::default();
    cfg.parallelism = 2;
    let report = lint_deploy(&cull_after_join, &LintContext::bare(), &model(&cfg));
    assert!(
        report.has(LintCode::OrderSensitiveMerge),
        "{:?}",
        report.codes()
    );
    // Sequential execution keeps one deterministic interleaving.
    cfg.parallelism = 1;
    let report = lint_deploy(&cull_after_join, &LintContext::bare(), &model(&cfg));
    assert!(!report.has(LintCode::OrderSensitiveMerge));
}

#[test]
fn sl062_space_shard_without_location() {
    // The shared `registry` helper advertises no sensor positions.
    let reg = registry(&[("weather/temperature", 1000)]);
    let ctx = reg_ctx(&reg);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    let mut cfg = EngineConfig::default();
    cfg.parallelism = 2;
    cfg.shard_key = ShardKey::Space;
    let report = lint_deploy(&dsn, &ctx, &model(&cfg));
    assert!(
        report.has(LintCode::SpaceShardWithoutLocation),
        "{:?}",
        report.codes()
    );
    // Located sensors partition spatially as intended.
    let mut located = SensorRegistry::new();
    let schema: SchemaRef = Arc::new(
        Schema::new(vec![
            Field::new("temp", AttrType::Float),
            Field::new("rain", AttrType::Float),
        ])
        .unwrap(),
    );
    located
        .publish(SensorAdvertisement {
            id: SensorId(1),
            name: "s0".into(),
            kind: SensorKind::Physical,
            schema,
            theme: Theme::new("weather/temperature").unwrap(),
            period: Duration::from_millis(1000),
            location: Some(GeoPoint::new_unchecked(34.69, 135.50)),
            node: sl_netsim::NodeId(0),
        })
        .unwrap();
    let ctx = reg_ctx(&located);
    let report = lint_deploy(&dsn, &ctx, &model(&cfg));
    assert!(!report.has(LintCode::SpaceShardWithoutLocation));
}

#[test]
fn sl063_shard_skew() {
    let one = registry(&[("weather/temperature", 1000)]);
    let ctx = reg_ctx(&one);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    let mut cfg = EngineConfig::default();
    cfg.parallelism = 8;
    cfg.shard_key = ShardKey::Sensor;
    let report = lint_deploy(&dsn, &ctx, &model(&cfg));
    assert!(report.has(LintCode::ShardSkew), "{:?}", report.codes());
    // Eight distinct sensors feed eight workers.
    let eight = registry(&[("weather/temperature", 1000); 8]);
    let ctx = reg_ctx(&eight);
    let report = lint_deploy(&dsn, &ctx, &model(&cfg));
    assert!(!report.has(LintCode::ShardSkew));
}

// ------------------------------------------------------------ SL07x recovery

#[test]
fn sl070_uncheckpointed_state() {
    let windowed = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{
    op: aggregate; period: 5000; group_by: temp; func: avg; attr: temp; inputs: temp;
  }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    let plan = FaultPlan::new().node_crash(1, Duration::from_secs(5));
    let mut cfg = EngineConfig::default();
    cfg.checkpoint_enabled = false;
    let m = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&windowed, &LintContext::bare(), &m);
    assert!(
        report.has(LintCode::UncheckpointedState),
        "{:?}",
        report.codes()
    );
    // Checkpoints back on: window caches survive the crash.
    let cfg = EngineConfig::default();
    let m = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&windowed, &LintContext::bare(), &m);
    assert!(!report.has(LintCode::UncheckpointedState));
}

#[test]
fn sl071_volatile_checkpoints() {
    let windowed = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{
    op: aggregate; period: 5000; group_by: temp; func: avg; attr: temp; inputs: temp;
  }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    let plan = FaultPlan::new().node_crash(1, Duration::from_secs(5));
    let cfg = EngineConfig::default(); // checkpoint_enabled: true
    let volatile = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&windowed, &LintContext::bare(), &volatile);
    assert!(
        report.has(LintCode::VolatileCheckpoints),
        "{:?}",
        report.codes()
    );
    let durable = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: true,
        compaction: false,
    };
    let report = lint_deploy(&windowed, &LintContext::bare(), &durable);
    assert!(!report.has(LintCode::VolatileCheckpoints));
}

#[test]
fn sl072_breaker_retry_conflict() {
    let plain = doc(&format!(
        "{TEMP_SOURCE}
  sink out {{ kind: console; inputs: temp; }}"
    ));
    let plan = FaultPlan::new().link_flap(0, Duration::from_secs(5), Duration::from_secs(2));
    // Default retry: backoffs 0.5,1,2,4,8,10 s. The breaker opens after 3
    // failures; the remaining budget (4+8+10 = 22 s) is dwarfed by a 60 s
    // cooldown, so attempts 4..6 all fail fast and the tuple dead-letters.
    let mut cfg = EngineConfig::default();
    cfg.overload.breaker_enabled = true;
    cfg.overload.breaker_cooldown = Duration::from_secs(60);
    let m = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&plain, &LintContext::bare(), &m);
    assert!(
        report.has(LintCode::BreakerRetryConflict),
        "{:?}",
        report.codes()
    );
    // The default 5 s cooldown ends inside the 22 s remaining budget: the
    // half-open probe gets a real attempt before retries are exhausted.
    cfg.overload.breaker_cooldown = Duration::from_secs(5);
    let m = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&plain, &LintContext::bare(), &m);
    assert!(!report.has(LintCode::BreakerRetryConflict));
}

#[test]
fn sl092_compaction_disabled() {
    let plain = doc(&format!(
        "{TEMP_SOURCE}
  sink out {{ kind: console; inputs: temp; }}"
    ));
    // Durable with a retention window but no compaction: eviction spills
    // onto a cold tier that only ever grows.
    let mut cfg = EngineConfig::default();
    cfg.retention = Some(Duration::from_secs(600));
    let m = DeployModel {
        config: &cfg,
        fault_plan: None,
        durable: true,
        compaction: false,
    };
    let report = lint_deploy(&plain, &LintContext::bare(), &m);
    assert!(
        report.has(LintCode::CompactionDisabled),
        "{:?}",
        report.codes()
    );
    // Near miss 1: compaction on — the cold tier is maintained.
    let m = DeployModel {
        config: &cfg,
        fault_plan: None,
        durable: true,
        compaction: true,
    };
    let report = lint_deploy(&plain, &LintContext::bare(), &m);
    assert!(!report.has(LintCode::CompactionDisabled));
    // Near miss 2: not durable — eviction discards, nothing accumulates.
    let m = DeployModel {
        config: &cfg,
        fault_plan: None,
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&plain, &LintContext::bare(), &m);
    assert!(!report.has(LintCode::CompactionDisabled));
    // Near miss 3: durable but no retention — nothing is ever evicted to
    // the cold tier, so an unmaintained log is a choice, not a leak.
    let cfg = EngineConfig::default();
    let m = DeployModel {
        config: &cfg,
        fault_plan: None,
        durable: true,
        compaction: false,
    };
    let report = lint_deploy(&plain, &LintContext::bare(), &m);
    assert!(!report.has(LintCode::CompactionDisabled));
}

// ------------------------------------------------------------ SL08x resource

#[test]
fn sl080_unbounded_queue_growth() {
    // The SL034 scenario with a deployment model attached: the model owns
    // the admission question, so SL080 speaks and SL034 stays quiet.
    let reg = registry(&[("weather/temperature", 1)]);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    let narrow = topo(10_000_000, 5, 700.0);
    let ctx = LintContext {
        topology: Some(&narrow),
        registry: Some(&reg),
        ..LintContext::default()
    };
    let cfg = EngineConfig::default(); // admission disabled
    let report = lint_deploy(&dsn, &ctx, &model(&cfg));
    assert!(
        report.has(LintCode::UnboundedQueueGrowth),
        "{:?}",
        report.codes()
    );
    assert!(
        !report.has(LintCode::UnmitigatedOverload),
        "SL034 must defer to SL080 when a model is attached: {:?}",
        report.codes()
    );
    // Bounding the queue converts unbounded growth into managed overload.
    let bounded = block_cfg(64);
    let ctx = LintContext {
        topology: Some(&narrow),
        registry: Some(&reg),
        config: LintConfig::for_engine(&bounded),
    };
    let report = lint_deploy(&dsn, &ctx, &model(&bounded));
    assert!(!report.has(LintCode::UnboundedQueueGrowth));
}

#[test]
fn sl081_peak_memory_exceeds_budget() {
    // 1 kHz cached over a 60 s window ≈ 60k tuples × 56 B ≈ 3.4 MiB.
    let reg = registry(&[("weather/temperature", 1)]);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{
    op: aggregate; period: 60000; group_by: temp; func: avg; attr: temp; inputs: temp;
  }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    let cfg = EngineConfig::default();
    let strict = LintContext {
        registry: Some(&reg),
        config: LintConfig {
            memory_budget_bytes: 1024.0 * 1024.0,
            ..LintConfig::default()
        },
        ..LintContext::default()
    };
    let report = lint_deploy(&dsn, &strict, &model(&cfg));
    assert!(
        report.has(LintCode::PeakMemoryExceedsBudget),
        "{:?}",
        report.codes()
    );
    // The default 256 MiB budget holds it comfortably.
    let relaxed = LintContext {
        registry: Some(&reg),
        ..LintContext::default()
    };
    let report = lint_deploy(&dsn, &relaxed, &model(&cfg));
    assert!(!report.has(LintCode::PeakMemoryExceedsBudget));
}

#[test]
fn sl082_tick_burst_overflow() {
    let reg = registry(&[("weather/temperature", 1)]);
    let ctx = reg_ctx(&reg);
    // Same fixture as SL051, but shedding: the overflow is condemned, not
    // absorbed, so the loss happens every tick by construction.
    let tiny = shed_cfg(4);
    let report = lint_deploy(&tick_burst_doc(), &ctx, &model(&tiny));
    assert!(
        report.has(LintCode::TickBurstOverflow),
        "{:?}",
        report.codes()
    );
    let roomy = shed_cfg(1024);
    let report = lint_deploy(&tick_burst_doc(), &ctx, &model(&roomy));
    assert!(!report.has(LintCode::TickBurstOverflow));
}

#[test]
fn sl083_dlq_undershoot() {
    let reg = registry(&[("weather/temperature", 1)]);
    let ctx = reg_ctx(&reg);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: 'temp > 20'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    ));
    // A 10× burst for 60 s on a 1 kHz sensor sheds ~540k tuples; the
    // default DLQ keeps 256 of them.
    let plan = FaultPlan::new().burst(1, Duration::from_secs(1), Duration::from_secs(60), 10);
    let cfg = shed_cfg(64);
    let m = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&dsn, &ctx, &m);
    assert!(report.has(LintCode::DlqUndershoot), "{:?}", report.codes());
    // A DLQ sized for the burst keeps the full loss record.
    let mut cfg = shed_cfg(64);
    cfg.dlq_capacity = 1_000_000;
    let m = DeployModel {
        config: &cfg,
        fault_plan: Some(&plan),
        durable: false,
        compaction: false,
    };
    let report = lint_deploy(&dsn, &ctx, &m);
    assert!(!report.has(LintCode::DlqUndershoot));
}

// ----------------------------------------------------------------- plumbing

#[test]
fn every_code_has_golden_coverage() {
    // Master list vs. the cases above: if a code is added to `LintCode::ALL`
    // without a golden pair, this test names it.
    let covered = [
        LintCode::DuplicateName,
        LintCode::UnknownInput,
        LintCode::WrongArity,
        LintCode::Cycle,
        LintCode::BadTriggerTarget,
        LintCode::GatedNeverActivated,
        LintCode::BadWiring,
        LintCode::SchemaError,
        LintCode::NoSchema,
        LintCode::IncomparableGranularity,
        LintCode::MisalignedAggregation,
        LintCode::SpatialCollapse,
        LintCode::MixedGranularityJoin,
        LintCode::WindowGap,
        LintCode::UnconstrainedJoin,
        LintCode::UnboundedCache,
        LintCode::UnsatisfiableQos,
        LintCode::LinkOverload,
        LintCode::CpuOverload,
        LintCode::SilentSource,
        LintCode::UnmitigatedOverload,
        LintCode::DeadEnd,
        LintCode::RedundantTrigger,
        LintCode::UnusedProperty,
        LintCode::AlwaysFalse,
        LintCode::AlwaysTrue,
        LintCode::ActivationDeadlock,
        LintCode::IneffectiveBackpressure,
        LintCode::SharedCreditStarvation,
        LintCode::LossyBlockPreemption,
        LintCode::FruitlessParallelism,
        LintCode::OrderSensitiveMerge,
        LintCode::SpaceShardWithoutLocation,
        LintCode::ShardSkew,
        LintCode::UncheckpointedState,
        LintCode::VolatileCheckpoints,
        LintCode::BreakerRetryConflict,
        LintCode::UnboundedQueueGrowth,
        LintCode::PeakMemoryExceedsBudget,
        LintCode::TickBurstOverflow,
        LintCode::DlqUndershoot,
        LintCode::UnboundedViewGrowth,
        LintCode::UnboundedSubscriberQueue,
        LintCode::CompactionDisabled,
    ];
    for code in LintCode::ALL {
        assert!(covered.contains(code), "{code:?} has no golden test");
    }
}

#[test]
fn diagnostics_carry_dsn_lines() {
    let report = lint(&doc(&format!(
        "{TEMP_SOURCE}
  service hot {{ op: filter; condition: '1 > 2'; inputs: temp; }}
  sink out {{ kind: console; inputs: hot; }}"
    )));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::AlwaysFalse)
        .expect("SL043 fired");
    assert_eq!(d.node.as_deref(), Some("hot"));
    assert!(
        d.dsn_line.is_some(),
        "diagnostic should map back to a DSN line"
    );
}

#[test]
fn config_threshold_is_respected() {
    let reg = registry(&[("weather/temperature", 1)]);
    let dsn = doc(&format!(
        "{TEMP_SOURCE}
  service avg {{ op: aggregate; period: 10000; func: avg; attr: temp; inputs: temp; }}
  sink out {{ kind: console; inputs: avg; }}"
    ));
    // 10 s × 1 kHz = 10k tuples: fine at the default budget, over a 5k one.
    let strict = LintContext {
        registry: Some(&reg),
        config: LintConfig {
            cache_budget_tuples: 5_000.0,
            ..LintConfig::default()
        },
        ..LintContext::default()
    };
    assert!(lint_with(&dsn, &strict).has(LintCode::UnboundedCache));
}

// ---------------------------------------------------------------------
// SL09x — continuous queries (the run-time tier: facts about live
// registrations, not documents)
// ---------------------------------------------------------------------

#[test]
fn sl090_unbounded_view_growth() {
    use sl_lint::{lint_cq, CqModel, CqViewFacts};
    let unbounded = CqModel {
        views: vec![CqViewFacts {
            name: "dashboard".into(),
            time_bounded: false,
        }],
        ..CqModel::default()
    };
    let report = lint_cq(&unbounded);
    assert!(
        report.has(LintCode::UnboundedViewGrowth),
        "{:?}",
        report.codes()
    );
    // Near miss 1: the same view under a configured retention window — the
    // eviction horizon retracts old contributions, so memory is bounded.
    let retained = CqModel {
        retention_configured: true,
        ..unbounded.clone()
    };
    assert!(!lint_cq(&retained).has(LintCode::UnboundedViewGrowth));
    // Near miss 2: no retention, but the standing query bounds its own
    // time range — the cell set cannot grow past the window.
    let bounded = CqModel {
        views: vec![CqViewFacts {
            name: "dashboard".into(),
            time_bounded: true,
        }],
        ..CqModel::default()
    };
    assert!(!lint_cq(&bounded).has(LintCode::UnboundedViewGrowth));
}

#[test]
fn sl091_unbounded_subscriber_queue_under_admission() {
    use sl_lint::{lint_cq, CqModel, CqSubFacts};
    let model = CqModel {
        subscriptions: vec![CqSubFacts {
            name: "slow-consumer".into(),
            bounded: false,
        }],
        admission_enabled: true,
        ..CqModel::default()
    };
    let report = lint_cq(&model);
    assert!(
        report.has(LintCode::UnboundedSubscriberQueue),
        "{:?}",
        report.codes()
    );
    // Near miss 1: same subscription, admission control off — nothing
    // upstream promises bounded memory, so the queue is merely the
    // historical default, not a contradiction.
    let no_admission = CqModel {
        admission_enabled: false,
        ..model.clone()
    };
    assert!(!lint_cq(&no_admission).has(LintCode::UnboundedSubscriberQueue));
    // Near miss 2: admission on, but the queue is bounded.
    let bounded = CqModel {
        subscriptions: vec![CqSubFacts {
            name: "slow-consumer".into(),
            bounded: true,
        }],
        admission_enabled: true,
        ..CqModel::default()
    };
    assert!(!lint_cq(&bounded).has(LintCode::UnboundedSubscriberQueue));
}
